//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API used by this workspace (`Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_with_input`, `Bencher::iter`, the `criterion_group!`
//! / `criterion_main!` macros).
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched.  This stand-in performs a simple
//! mean-of-N timing loop and prints one line per benchmark — enough to run
//! `cargo bench` offline and compare hot paths, without criterion's
//! statistics, plots or regression tracking.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: u64,
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up iteration.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.last_mean = Some(start.elapsed() / self.samples.max(1) as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmarks `body` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_mean: None,
        };
        body(&mut bencher, input);
        self.report(&id.to_string(), bencher.last_mean);
        self
    }

    /// Benchmarks `body` without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_mean: None,
        };
        body(&mut bencher);
        self.report(&id.to_string(), bencher.last_mean);
        self
    }

    /// Flushes the group (kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, mean: Option<Duration>) {
        match mean {
            Some(mean) => println!("bench: {}/{id} ... {mean:?}/iter", self.name),
            None => println!("bench: {}/{id} ... no measurement", self.name),
        }
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks `body` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", body);
        self
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_benchmarks() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("add", 2), &2u64, |b, &x| b.iter(|| x + 1));
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
