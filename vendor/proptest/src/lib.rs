//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! used by this workspace: `proptest!`, `Strategy` + `prop_map`, range and
//! `Just` strategies, `prop_oneof!`, `collection::vec`, `any::<bool>()`,
//! `prop_assert*!` and `prop_assume!`.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched.  This implementation generates random
//! cases deterministically (seeded per test name) but performs **no
//! shrinking** — a failing case panics with the generated inputs visible in
//! the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Test-case driver types.

    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Configuration of a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` on rejection: the case is skipped.
    #[derive(Debug)]
    pub struct Rejected;

    /// The deterministic RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seeds the RNG from a test name, so each test has a stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            TestRng(StdRng::seed_from_u64(h.finish()))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::*;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated strategy trait object.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.0.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct ArbitraryStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy of a type.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as a `vec` length specification.
    pub trait IntoSizeRange {
        /// Lower and upper bound (half-open) of the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max {
                self.min
            } else {
                rng.0.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each embedded test body against many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config($cfg) $($rest)* }
    };
    (@with_config($cfg:expr)
     $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // prop_assume! rejections skip the case via this closure.
                    #[allow(clippy::redundant_closure_call)]
                    let _outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1i64..10, v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_map_and_assume(choice in prop_oneof![Just(1u8), Just(2u8)],
                                doubled in (0i64..4).prop_map(|x| x * 2),
                                flag in any::<bool>()) {
            prop_assume!(choice != 0);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_eq!(doubled % 2, 0);
            let _ = flag;
        }
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = crate::test_runner::TestRng::from_name("fixed");
        let strat = crate::collection::vec(-3i64..3, 4usize);
        for _ in 0..10 {
            assert_eq!(
                crate::strategy::Strategy::generate(&strat, &mut rng).len(),
                4
            );
        }
    }
}
