//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`StdRng`, `SeedableRng`, `Rng::gen_range`,
//! `Rng::gen`, `seq::SliceRandom`).
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched; this crate keeps the workspace self-contained.
//! The generator is **not** the real `StdRng` (ChaCha12) — it is a
//! xoshiro256++ generator seeded through SplitMix64 — but it satisfies the
//! properties the workspace relies on: deterministic for a given seed,
//! uniform enough for randomized search orderings and test-case generation.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A seedable random number generator (the subset of `rand::RngCore` the
/// workspace needs).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Types that can be sampled from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation (the subset of `rand::Rng` used
/// here).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a value from the standard distribution (`[0, 1)` for `f64`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Random sequence operations.

    use super::{Rng, RngCore};

    /// Slice shuffling and element selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly at random, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(0..100u8);
            assert!(u < 100);
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 5];
        let items = [0usize, 1, 2, 3, 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
