//! Cross-crate property tests on the layout → address-map → cache path:
//! whatever layout the optimizer chooses must linearize into an injective
//! address map, and better static locality must never translate into a
//! slower simulated execution on stride-dominated single-nest programs.

use constraint_layout::prelude::*;
use mlo_layout::AddressMap;
use mlo_linalg::IntVec;
use proptest::prelude::*;
use std::collections::HashSet;

fn arbitrary_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::row_major(2)),
        Just(Layout::column_major(2)),
        Just(Layout::diagonal()),
        Just(Layout::anti_diagonal()),
        // A few less common but valid hyperplane layouts from the paper's
        // discussion: (1 -2), (2 -1), (1 2).
        Just(Layout::from_vector(vec![1, -2])),
        Just(Layout::from_vector(vec![2, -1])),
        Just(Layout::from_vector(vec![1, 2])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn address_maps_are_injective_and_bounded(
        rows in 2i64..12,
        cols in 2i64..12,
        layout in arbitrary_layout(),
    ) {
        let array = mlo_ir::ArrayDecl::new(ArrayId::new(0), "A", vec![rows, cols], 4);
        let map = AddressMap::new(&array, &layout).expect("independent hyperplanes linearize");
        let mut seen = HashSet::new();
        for i in 0..rows {
            for j in 0..cols {
                let offset = map.element_offset(&IntVec::from(vec![i, j]));
                prop_assert!(offset >= 0);
                prop_assert!(offset < map.span_elements());
                prop_assert!(seen.insert(offset), "duplicate offset for ({i},{j}) under {layout}");
            }
        }
        // The padding introduced by skewed layouts is bounded by the
        // bounding-box construction: at most (rows+cols) times the array.
        prop_assert!(map.span_elements() <= (rows + cols) * rows * cols);
    }

    #[test]
    fn layouts_that_match_the_traversal_never_lose(
        n in 8i64..40,
        column_traversal in any::<bool>(),
    ) {
        // One nest sweeping an n x n array either row-wise or column-wise;
        // the matching canonical layout must never be slower than the
        // mismatched one on the paper's machine.
        let mut builder = ProgramBuilder::new("sweep");
        let a = builder.array("A", vec![n, n], 4);
        builder.nest("sweep", vec![("i", 0, n), ("j", 0, n)], |nest| {
            let access = if column_traversal {
                AccessBuilder::new(2, 2).row(0, [0, 1]).row(1, [1, 0]).build()
            } else {
                AccessBuilder::new(2, 2).row(0, [1, 0]).row(1, [0, 1]).build()
            };
            nest.read(a, access);
        });
        let program = builder.build();
        let matching = if column_traversal { Layout::column_major(2) } else { Layout::row_major(2) };
        let mismatched = if column_traversal { Layout::row_major(2) } else { Layout::column_major(2) };
        let simulator = Simulator::new(MachineConfig::date05()).without_restructuring();
        let mut good = LayoutAssignment::new();
        good.set(a, matching);
        let mut bad = LayoutAssignment::new();
        bad.set(a, mismatched);
        let good_report = simulator.simulate(&program, &good).expect("simulates");
        let bad_report = simulator.simulate(&program, &bad).expect("simulates");
        prop_assert!(good_report.total_cycles <= bad_report.total_cycles);
        prop_assert!(good_report.l1_data.misses <= bad_report.l1_data.misses);
    }

    #[test]
    fn optimizer_assignments_always_linearize(
        seed in 0u64..200,
        arrays in 3usize..8,
        nests in 2usize..6,
    ) {
        let spec = RandomProgramSpec {
            arrays,
            nests,
            extent: 16,
            reads_per_nest: 2,
            seed,
        };
        let program = constraint_layout::benchmarks::random_program(&spec);
        let outcome = Engine::new()
            .optimize(&program, &OptimizeRequest::strategy("enhanced"))
            .expect("random-program requests use the fallback policy");
        for array in program.arrays() {
            let layout = outcome.assignment.layout_of(array.id()).expect("complete");
            let map = AddressMap::new(array, layout).expect("chosen layouts must linearize");
            prop_assert!(map.span_elements() >= array.element_count());
        }
        // And the whole thing survives the simulator.
        let report = Simulator::new(MachineConfig::tiny())
            .simulate(&program, &outcome.assignment)
            .expect("random programs simulate");
        prop_assert!(report.total_cycles > 0);
    }
}
