//! Property-based cross-checks of the constraint solvers against a brute
//! force oracle, on small random networks.

use constraint_layout::csp::random::RandomNetworkSpec;
use constraint_layout::csp::{Assignment, ConstraintNetwork, Scheme, SearchEngine, VarId};
use proptest::prelude::*;

/// Exhaustively decides satisfiability of a small network.
fn brute_force_satisfiable(network: &ConstraintNetwork<usize>) -> bool {
    let variables: Vec<VarId> = network.variables().collect();
    let mut assignment = Assignment::new(variables.len());
    fn recurse(
        network: &ConstraintNetwork<usize>,
        variables: &[VarId],
        depth: usize,
        assignment: &mut Assignment,
    ) -> bool {
        if depth == variables.len() {
            return network.is_solution(assignment).unwrap_or(false);
        }
        let var = variables[depth];
        for value in 0..network.domain(var).len() {
            assignment.assign(var, value);
            // Early pruning keeps the oracle fast without changing its
            // answer: conflicts_with only looks at the *other* assigned
            // variables, so checking after the assignment is correct.
            let mut checks = 0;
            if network
                .conflicts_with(assignment, var, value, &mut checks)
                .is_empty()
                && recurse(network, variables, depth + 1, assignment)
            {
                return true;
            }
            assignment.unassign(var);
        }
        false
    }
    recurse(network, &variables, 0, &mut assignment)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn solvers_agree_with_the_brute_force_oracle(
        variables in 2usize..6,
        domain in 1usize..4,
        density in 0.2f64..1.0,
        tightness in 0.0f64..0.9,
        seed in 0u64..500,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let network = spec.generate();
        let expected = brute_force_satisfiable(&network);
        for scheme in [Scheme::Base, Scheme::Enhanced, Scheme::ForwardChecking, Scheme::FullPropagation] {
            let result = SearchEngine::with_scheme(scheme).solve(&network);
            prop_assert_eq!(
                result.is_satisfiable(),
                expected,
                "scheme {} disagrees with the oracle on {:?}",
                scheme,
                spec
            );
            // Whatever solution is returned must actually satisfy the network.
            if let Some(solution) = result.solution {
                let mut assignment = Assignment::new(network.variable_count());
                for v in network.variables() {
                    assignment.assign(v, solution.value_index(v));
                }
                prop_assert_eq!(network.is_solution(&assignment), Ok(true));
            }
        }
    }

    #[test]
    fn planted_networks_are_always_solved(
        variables in 2usize..10,
        domain in 2usize..5,
        density in 0.2f64..1.0,
        tightness in 0.0f64..0.8,
        seed in 0u64..500,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let (network, planted) = constraint_layout::csp::random::satisfiable_network(&spec);
        // The planted assignment is a witness, so every scheme must succeed.
        let mut witness = Assignment::new(network.variable_count());
        for (i, &value) in planted.iter().enumerate() {
            witness.assign(VarId::new(i), value);
        }
        prop_assert_eq!(network.is_solution(&witness), Ok(true));
        for scheme in [Scheme::Base, Scheme::Enhanced, Scheme::ForwardChecking] {
            let result = SearchEngine::with_scheme(scheme).solve(&network);
            prop_assert!(result.is_satisfiable(), "{} failed on a planted network", scheme);
        }
    }
}
