//! Cross-crate integration tests: the full pipeline from program IR through
//! constraint solving to cache simulation, on the paper's running example
//! and on the reconstructed benchmarks.

use constraint_layout::prelude::*;
use mlo_core::OptimizerOptions;
use mlo_layout::quality::{assignment_score, ideal_score};

/// Builds the Figure 2 program of the paper.
fn figure2_program(n: i64) -> Program {
    let mut builder = ProgramBuilder::new("figure2");
    let q1 = builder.array("Q1", vec![2 * n, n], 4);
    let q2 = builder.array("Q2", vec![2 * n, n], 4);
    builder.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
        nest.read(q1, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [0, 1]).build());
        nest.read(q2, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [1, 0]).build());
    });
    builder.build()
}

#[test]
fn figure2_all_schemes_reach_ideal_locality_and_beat_row_major() {
    let program = figure2_program(64);
    let simulator = Simulator::new(MachineConfig::date05());
    let baseline = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &LayoutAssignment::all_row_major(&program))
        .expect("baseline simulates");
    for scheme in [
        OptimizerScheme::Heuristic,
        OptimizerScheme::Base,
        OptimizerScheme::Enhanced,
        OptimizerScheme::ForwardChecking,
        OptimizerScheme::FullPropagation,
        OptimizerScheme::Weighted,
    ] {
        let outcome = Optimizer::new(scheme).optimize(&program);
        assert_eq!(
            assignment_score(&program, &outcome.assignment),
            ideal_score(&program),
            "{scheme} did not reach the ideal locality score"
        );
        let report = simulator
            .simulate(&program, &outcome.assignment)
            .expect("optimized layouts simulate");
        assert!(
            report.total_cycles < baseline.total_cycles,
            "{scheme}: optimized ({}) not faster than row-major baseline ({})",
            report.total_cycles,
            baseline.total_cycles
        );
        assert!(report.l1_data.miss_rate() < baseline.l1_data.miss_rate());
    }
}

#[test]
fn figure2_solution_matches_the_paper() {
    // The enhanced scheme must find Q1 = diagonal, Q2 = column-major (the
    // derivation of Section 2) or the interchanged pair — and with the
    // deterministic enhanced orderings it finds the original-order pair.
    let program = figure2_program(32);
    let outcome = Optimizer::new(OptimizerScheme::Enhanced).optimize(&program);
    let q1 = outcome.assignment.layout_of(ArrayId::new(0)).unwrap();
    let q2 = outcome.assignment.layout_of(ArrayId::new(1)).unwrap();
    assert!(
        (q1 == &Layout::diagonal() && q2 == &Layout::column_major(2))
            || (q1 == &Layout::column_major(2) && q2 == &Layout::diagonal())
    );
    assert_eq!(outcome.satisfiable, Some(true));
    assert!(!outcome.fell_back_to_heuristic);
}

#[test]
fn every_benchmark_runs_through_every_scheme() {
    // The base scheme's random-order chronological backtracking can take
    // minutes on the larger benchmark networks in debug builds (that is the
    // very point of Table 2), so this debug-mode test exercises it only on
    // the smallest network; the release harness runs the full matrix.
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let schemes: &[OptimizerScheme] = if benchmark == Benchmark::MxM {
            &[
                OptimizerScheme::Heuristic,
                OptimizerScheme::Base,
                OptimizerScheme::Enhanced,
            ]
        } else {
            &[OptimizerScheme::Heuristic, OptimizerScheme::Enhanced]
        };
        for &scheme in schemes {
            let outcome = Optimizer::with_options(OptimizerOptions {
                scheme,
                candidates: benchmark.candidate_options(),
                ..OptimizerOptions::default()
            })
            .optimize(&program);
            // Assignments are always complete, whatever happened during the
            // search.
            for array in program.arrays() {
                assert!(
                    outcome.assignment.contains(array.id()),
                    "{benchmark}/{scheme}: array {} missing a layout",
                    array.name()
                );
            }
            // Constraint schemes never do worse than the heuristic in the
            // static locality score: when the network is unsatisfiable they
            // fall back to exactly the heuristic assignment.
            if scheme != OptimizerScheme::Heuristic {
                let heuristic = Optimizer::new(OptimizerScheme::Heuristic).optimize(&program);
                assert!(
                    assignment_score(&program, &outcome.assignment)
                        >= assignment_score(&program, &heuristic.assignment),
                    "{benchmark}/{scheme} lost to the heuristic"
                );
            }
        }
    }
}

#[test]
fn pipeline_benchmarks_have_satisfiable_networks_and_mxm_does_not() {
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let outcome = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::Enhanced,
            candidates: benchmark.candidate_options(),
            ..OptimizerOptions::default()
        })
        .optimize(&program);
        match benchmark {
            Benchmark::MxM => {
                // No loop order gives all three matrices of a matrix product
                // spatial locality at once, so the hard network is
                // unsatisfiable and the optimizer falls back (which is why
                // the paper's Table 3 shows identical times for all three
                // schemes on MxM).
                assert_eq!(outcome.satisfiable, Some(false), "MxM should be unsatisfiable");
                assert!(outcome.fell_back_to_heuristic);
            }
            _ => {
                assert_eq!(
                    outcome.satisfiable,
                    Some(true),
                    "{benchmark} should be satisfiable"
                );
                assert!(!outcome.fell_back_to_heuristic);
                // A constraint-network solution realizes full static
                // locality on the pipeline benchmarks.
                assert_eq!(
                    assignment_score(&program, &outcome.assignment),
                    ideal_score(&program),
                    "{benchmark}: solution does not reach the ideal score"
                );
            }
        }
    }
}

#[test]
fn base_and_enhanced_agree_on_satisfiability() {
    // One unsatisfiable network (MxM) and one satisfiable one (the paper's
    // Figure 2): both schemes must agree in both directions.  The larger
    // benchmarks are covered by the release harness — the base scheme's
    // random search on them is exactly the multi-minute column of Table 2.
    let cases: Vec<(String, Program, mlo_layout::CandidateOptions)> = vec![
        (
            "MxM".to_string(),
            Benchmark::MxM.program(),
            Benchmark::MxM.candidate_options(),
        ),
        (
            "figure2".to_string(),
            figure2_program(16),
            mlo_layout::CandidateOptions::default(),
        ),
    ];
    for (name, program, candidates) in cases {
        let run = |scheme| {
            Optimizer::with_options(OptimizerOptions {
                scheme,
                candidates,
                seed: 99,
                ..OptimizerOptions::default()
            })
            .optimize(&program)
            .satisfiable
        };
        assert_eq!(
            run(OptimizerScheme::Base),
            run(OptimizerScheme::Enhanced),
            "{name}: base and enhanced disagree on satisfiability"
        );
    }
}
