//! Cross-crate integration tests: the full pipeline from program IR through
//! constraint solving to cache simulation, on the paper's running example
//! and on the reconstructed benchmarks — driven through the session-based
//! engine API and its typed request surface.

use constraint_layout::prelude::*;
use mlo_core::error::OptimizeError;
use mlo_core::strategy::{SchemeStrategy, StrategyContext, StrategyOutcome};
use mlo_layout::quality::{assignment_score, ideal_score};
use std::sync::Arc;

/// Builds the Figure 2 program of the paper.
fn figure2_program(n: i64) -> Program {
    let mut builder = ProgramBuilder::new("figure2");
    let q1 = builder.array("Q1", vec![2 * n, n], 4);
    let q2 = builder.array("Q2", vec![2 * n, n], 4);
    builder.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
        nest.read(
            q1,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
        );
        nest.read(
            q2,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [1, 0])
                .build(),
        );
    });
    builder.build()
}

#[test]
fn figure2_all_strategies_reach_ideal_locality_and_beat_row_major() {
    let program = figure2_program(64);
    let simulator = Simulator::new(MachineConfig::date05());
    let baseline = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &LayoutAssignment::all_row_major(&program))
        .expect("baseline simulates");
    let session = Engine::new().session();
    for strategy in [
        "heuristic",
        "base",
        "enhanced",
        "forward-checking",
        "full-propagation",
        "weighted",
    ] {
        let outcome = session
            .optimize(&program, &OptimizeRequest::strategy(strategy))
            .expect("figure 2 requests succeed");
        assert_eq!(
            assignment_score(&program, &outcome.assignment),
            ideal_score(&program),
            "{strategy} did not reach the ideal locality score"
        );
        let report = simulator
            .simulate(&program, &outcome.assignment)
            .expect("optimized layouts simulate");
        assert!(
            report.total_cycles < baseline.total_cycles,
            "{strategy}: optimized ({}) not faster than row-major baseline ({})",
            report.total_cycles,
            baseline.total_cycles
        );
        assert!(report.l1_data.miss_rate() < baseline.l1_data.miss_rate());
    }
    // One program, many strategies: the session built the network once.
    assert_eq!(session.prepared_programs(), 1);
}

#[test]
fn figure2_solution_matches_the_paper() {
    // The enhanced strategy must find Q1 = diagonal, Q2 = column-major (the
    // derivation of Section 2) or the interchanged pair — and with the
    // deterministic enhanced orderings it finds the original-order pair.
    let program = figure2_program(32);
    let outcome = Engine::new()
        .optimize(&program, &OptimizeRequest::strategy("enhanced"))
        .expect("figure 2 is satisfiable");
    let q1 = outcome.assignment.layout_of(ArrayId::new(0)).unwrap();
    let q2 = outcome.assignment.layout_of(ArrayId::new(1)).unwrap();
    assert!(
        (q1 == &Layout::diagonal() && q2 == &Layout::column_major(2))
            || (q1 == &Layout::column_major(2) && q2 == &Layout::diagonal())
    );
    assert_eq!(outcome.satisfiable, Some(true));
    assert!(!outcome.fell_back());
}

#[test]
fn every_benchmark_runs_through_every_strategy() {
    // The base scheme's random-order chronological backtracking can take
    // minutes on the larger benchmark networks in debug builds (that is the
    // very point of Table 2), so this debug-mode test exercises it only on
    // the smallest network; the release harness runs the full matrix.
    let session = Engine::new().session();
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let strategies: &[&str] = if benchmark == Benchmark::MxM {
            &["heuristic", "base", "enhanced"]
        } else {
            &["heuristic", "enhanced"]
        };
        let heuristic = session
            .optimize(
                &program,
                &OptimizeRequest::strategy("heuristic").candidates(benchmark.candidate_options()),
            )
            .expect("heuristic requests always succeed");
        for &strategy in strategies {
            let outcome = session
                .optimize(
                    &program,
                    &OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options()),
                )
                .expect("benchmark requests use the fallback policy");
            // Assignments are always complete, whatever happened during the
            // search.
            for array in program.arrays() {
                assert!(
                    outcome.assignment.contains(array.id()),
                    "{benchmark}/{strategy}: array {} missing a layout",
                    array.name()
                );
            }
            // Constraint strategies never do worse than the heuristic in
            // the static locality score: when the network is unsatisfiable
            // they fall back to exactly the heuristic assignment.
            if strategy != "heuristic" {
                assert!(
                    assignment_score(&program, &outcome.assignment)
                        >= assignment_score(&program, &heuristic.assignment),
                    "{benchmark}/{strategy} lost to the heuristic"
                );
            }
        }
    }
}

#[test]
fn pipeline_benchmarks_have_satisfiable_networks_and_mxm_does_not() {
    let session = Engine::new().session();
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let outcome = session
            .optimize(
                &program,
                &OptimizeRequest::strategy("enhanced").candidates(benchmark.candidate_options()),
            )
            .expect("enhanced requests use the fallback policy");
        match benchmark {
            Benchmark::MxM => {
                // No loop order gives all three matrices of a matrix product
                // spatial locality at once, so the hard network is
                // unsatisfiable and the engine falls back with a typed
                // reason (which is why the paper's Table 3 shows identical
                // times for all three schemes on MxM).
                assert_eq!(
                    outcome.satisfiable,
                    Some(false),
                    "MxM should be unsatisfiable"
                );
                assert_eq!(
                    outcome.fallback,
                    Fallback::Heuristic(FallbackReason::Unsatisfiable)
                );
            }
            _ => {
                assert_eq!(
                    outcome.satisfiable,
                    Some(true),
                    "{benchmark} should be satisfiable"
                );
                assert!(!outcome.fell_back());
                // A constraint-network solution realizes full static
                // locality on the pipeline benchmarks.
                assert_eq!(
                    assignment_score(&program, &outcome.assignment),
                    ideal_score(&program),
                    "{benchmark}: solution does not reach the ideal score"
                );
            }
        }
    }
}

#[test]
fn base_and_enhanced_agree_on_satisfiability() {
    // One unsatisfiable network (MxM) and one satisfiable one (the paper's
    // Figure 2): both strategies must agree in both directions.  The larger
    // benchmarks are covered by the release harness — the base scheme's
    // random search on them is exactly the multi-minute column of Table 2.
    let session = Engine::new().session();
    let cases: Vec<(String, Program, CandidateOptions)> = vec![
        (
            "MxM".to_string(),
            Benchmark::MxM.program(),
            Benchmark::MxM.candidate_options(),
        ),
        (
            "figure2".to_string(),
            figure2_program(16),
            CandidateOptions::default(),
        ),
    ];
    for (name, program, candidates) in cases {
        let run = |strategy: &str| {
            session
                .optimize(
                    &program,
                    &OptimizeRequest::strategy(strategy)
                        .candidates(candidates)
                        .seed(99),
                )
                .expect("requests use the fallback policy")
                .satisfiable
        };
        assert_eq!(
            run("base"),
            run("enhanced"),
            "{name}: base and enhanced disagree on satisfiability"
        );
    }
}

/// A user-defined strategy: try the enhanced scheme under a small node
/// budget, escalate to full propagation when the budget runs out.
#[derive(Debug)]
struct EscalatingStrategy;

impl mlo_core::LayoutStrategy for EscalatingStrategy {
    fn name(&self) -> &str {
        "escalating"
    }

    fn description(&self) -> &str {
        "enhanced first, full propagation on budget exhaustion"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        match SchemeStrategy::enhanced().determine(ctx)? {
            StrategyOutcome::Exhausted { .. } => SchemeStrategy::full_propagation().determine(ctx),
            done => Ok(done),
        }
    }
}

#[test]
fn registry_strategies_and_a_custom_one_solve_figure2() {
    // Iterate the *registry* (not a hard-coded list): all nine built-ins
    // plus one user-defined strategy must produce complete assignments, and
    // every strategy that claims a proof must reach the ideal score.
    let engine = Engine::builder()
        .strategy(Arc::new(EscalatingStrategy))
        .build();
    let names = engine.registry().names();
    assert_eq!(
        names,
        vec![
            "heuristic",
            "base",
            "enhanced",
            "forward-checking",
            "full-propagation",
            "weighted",
            "local-search",
            "portfolio",
            "portfolio-steal",
            "escalating",
        ],
        "nine built-ins plus the custom strategy, in registration order"
    );
    let session = engine.session();
    let program = figure2_program(16);
    for name in &names {
        let outcome = session
            .optimize(&program, &OptimizeRequest::strategy(name.as_str()))
            .unwrap_or_else(|error| panic!("{name} failed on figure 2: {error}"));
        assert_eq!(outcome.strategy, *name);
        for array in program.arrays() {
            assert!(
                outcome.assignment.contains(array.id()),
                "{name} left {} without a layout",
                array.name()
            );
        }
        assert!(
            !outcome.fell_back(),
            "{name} fell back on a satisfiable network"
        );
        assert_eq!(
            assignment_score(&program, &outcome.assignment),
            ideal_score(&program),
            "{name} missed the ideal score"
        );
    }
    assert_eq!(session.prepared_programs(), 1);
}

#[test]
fn batch_results_match_sequential_results() {
    // The full (benchmark × strategy) matrix through optimize_many must be
    // job-for-job identical to sequential optimize calls on the same
    // session — same assignments, same satisfiability, same fallback.
    let engine = Engine::new();
    let batch_session = engine.session();
    let sequential_session = engine.session();
    let benchmarks = [Benchmark::MxM, Benchmark::MedIm04, Benchmark::Shape];
    let programs: Vec<Program> = benchmarks.iter().map(|b| b.program()).collect();
    let mut jobs: Vec<(&Program, OptimizeRequest)> = Vec::new();
    for (benchmark, program) in benchmarks.iter().zip(&programs) {
        for strategy in ["heuristic", "enhanced", "local-search"] {
            jobs.push((
                program,
                OptimizeRequest::strategy(strategy)
                    .candidates(benchmark.candidate_options())
                    .seed(1),
            ));
        }
    }
    let batch = batch_session.optimize_many(&jobs);
    assert_eq!(batch.len(), jobs.len());
    for ((program, request), batched) in jobs.iter().zip(batch) {
        let sequential = sequential_session
            .optimize(program, request)
            .expect("sequential requests succeed");
        let batched = batched.expect("batch requests succeed");
        assert_eq!(batched.assignment, sequential.assignment);
        assert_eq!(batched.satisfiable, sequential.satisfiable);
        assert_eq!(batched.fallback, sequential.fallback);
        assert_eq!(batched.search_stats, sequential.search_stats);
    }
    // Both sessions prepared one entry per benchmark.
    assert_eq!(batch_session.prepared_programs(), 3);
    assert_eq!(sequential_session.prepared_programs(), 3);
}

#[test]
fn typed_and_string_strategy_requests_agree() {
    // The 0.3 typed surface and the string-parsing compatibility path must
    // resolve to the identical strategy and produce the identical report.
    let program = figure2_program(16);
    let typed = Engine::new()
        .optimize(&program, &OptimizeRequest::strategy(StrategyId::Enhanced))
        .expect("figure 2 is satisfiable");
    let stringly = Engine::new()
        .optimize(&program, &OptimizeRequest::strategy("enhanced"))
        .expect("figure 2 is satisfiable");
    assert_eq!(typed.assignment, stringly.assignment);
    assert_eq!(typed.satisfiable, stringly.satisfiable);
    assert_eq!(typed.strategy, StrategyId::Enhanced.as_str());
    // The deprecated budget setters keep forwarding into SearchBudget.
    #[allow(deprecated)]
    let forwarded = OptimizeRequest::strategy("enhanced").node_limit(7);
    assert_eq!(forwarded.budget.nodes, Some(7));
}
