//! Building blocks shared by the benchmark programs: canonical 2-D access
//! patterns and pipeline-stage helpers.
//!
//! The pipelines are designed so that
//!
//! * a **global solution exists** (assigning every image and coefficient
//!   array the column-major layout, with each nest interchanged, satisfies
//!   every derived constraint), so the constraint networks the benchmarks
//!   induce are satisfiable just as the paper's were;
//! * the **original code** (row-major layouts, original loop order) has poor
//!   spatial locality in the "revealer" and "diagonal" stages;
//! * the **greedy heuristic** is lured into fixing the shared coefficient
//!   arrays row-major by the early tie stages (where either loop order is
//!   locally equally good) and then pays for it in every revealer stage —
//!   the global constraint-network solution avoids this, reproducing the
//!   paper's ordering *original > heuristic > constraint-network*.

use mlo_ir::{AccessBuilder, AffineAccess, ArrayId, NestId, ProgramBuilder};

/// The stylized 2-D access patterns the benchmark kernels are composed of.
///
/// All patterns are expressed for a 2-deep `(i, j)` nest with `j` innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `A[i][j]` — streams along rows (prefers row-major; column-major after
    /// interchange).
    RowWise,
    /// `A[j][i]` — streams along columns (prefers column-major; row-major
    /// after interchange).
    ColumnWise,
    /// `A[i+j][j]` — the skewed access of the paper's Figure 2 (prefers the
    /// diagonal layout; column-major after interchange).
    DiagonalSkew,
    /// `A[i+j][i]` — the second access of Figure 2 (prefers column-major;
    /// diagonal after interchange).
    AntiDiagonalSkew,
    /// `A[i][j-1]` — a shifted row-wise access (same preference as
    /// [`Pattern::RowWise`]).
    ShiftedRow,
    /// `A[i][0]` — a row-indexed lookup that does not move with the
    /// innermost loop (temporal reuse, no layout preference).
    RowLookup,
}

impl Pattern {
    /// The affine access of this pattern in a 2-deep nest.
    pub fn access(self) -> AffineAccess {
        match self {
            Pattern::RowWise => AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
            Pattern::ColumnWise => AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
            Pattern::DiagonalSkew => AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
            Pattern::AntiDiagonalSkew => AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [1, 0])
                .build(),
            Pattern::ShiftedRow => AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .offset(1, -1)
                .build(),
            Pattern::RowLookup => AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 0])
                .build(),
        }
    }
}

/// Describes one pipeline stage: a 2-deep nest that reads a set of arrays
/// (each with its own pattern) and writes one array.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage name (becomes the nest name).
    pub name: String,
    /// Arrays read and their access patterns.
    pub reads: Vec<(ArrayId, Pattern)>,
    /// The array written and its access pattern.
    pub write: (ArrayId, Pattern),
    /// Extra non-memory instructions per iteration.
    pub compute: u32,
}

/// Adds a square `n × n` pipeline-stage nest to the program being built and
/// returns its id.
pub fn add_stage(builder: &mut ProgramBuilder, n: i64, spec: &StageSpec) -> NestId {
    let reads = spec.reads.clone();
    let write = spec.write;
    let compute = spec.compute;
    builder.nest(spec.name.clone(), vec![("i", 0, n), ("j", 0, n)], |nest| {
        for (array, pattern) in &reads {
            nest.read(*array, pattern.access());
        }
        nest.write(write.0, write.1.access());
        nest.compute(compute);
    })
}

/// The role a pipeline stage plays (see the module documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Reads the previous image row-wise, writes the next one row-wise;
    /// reads the shared coefficient array row-wise.  Either loop order is
    /// locally perfect, which is the trap the greedy heuristic falls into.
    Tie,
    /// Reads the previous image and the shared coefficients with the
    /// anti-diagonal skew (column-major preference) and writes the next
    /// image column-wise.
    Revealer,
    /// Reads the previous image with the diagonal skew and writes the next
    /// image row-wise.
    Diagonal,
}

impl StageKind {
    /// The rotation used by [`add_pipeline`]: stage `k` gets
    /// `StageKind::of(k)`.
    pub fn of(k: usize) -> StageKind {
        match k % 3 {
            0 => StageKind::Tie,
            1 => StageKind::Revealer,
            _ => StageKind::Diagonal,
        }
    }
}

/// Builds a chained image-processing pipeline of `stages` nests over
/// `stages + 1` square `n × n` images, following the Tie / Revealer /
/// Diagonal rotation, with `shared` coefficient arrays read by the tie and
/// revealer stages.
///
/// Returns the ids of the image arrays (the coefficient arrays are owned by
/// the caller so they can be shared between pipelines).
pub fn add_pipeline(
    builder: &mut ProgramBuilder,
    prefix: &str,
    stages: usize,
    n: i64,
    element_size: u32,
    shared: &[ArrayId],
) -> Vec<ArrayId> {
    let images: Vec<ArrayId> = (0..=stages)
        .map(|k| builder.array(format!("{prefix}_img{k}"), vec![n, n], element_size))
        .collect();
    for k in 0..stages {
        let shared_array = if shared.is_empty() {
            None
        } else {
            Some(shared[k % shared.len()])
        };
        let (mut reads, write_pattern) = match StageKind::of(k) {
            StageKind::Tie => {
                let mut reads = vec![(images[k], Pattern::RowWise)];
                // Only the first tie stage of the pipeline reads the shared
                // coefficients row-wise: that is the early, locally-tied
                // decision that locks the greedy heuristic in.
                if k == 0 {
                    if let Some(f) = shared_array {
                        reads.push((f, Pattern::RowWise));
                    }
                }
                (reads, Pattern::RowWise)
            }
            StageKind::Revealer => {
                let mut reads = vec![(images[k], Pattern::AntiDiagonalSkew)];
                if let Some(f) = shared_array {
                    reads.push((f, Pattern::AntiDiagonalSkew));
                }
                (reads, Pattern::ColumnWise)
            }
            StageKind::Diagonal => (vec![(images[k], Pattern::DiagonalSkew)], Pattern::RowWise),
        };
        reads.shrink_to_fit();
        let spec = StageSpec {
            name: format!("{prefix}_stage{k}"),
            reads,
            write: (images[k + 1], write_pattern),
            compute: 4,
        };
        add_stage(builder, n, &spec);
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::LoopTransform;
    use mlo_layout::{locality::preferred_layout, Layout};

    #[test]
    fn patterns_have_the_expected_layout_preferences() {
        let id = LoopTransform::identity(2);
        let interchange = LoopTransform::permutation(&[1, 0]);
        assert_eq!(
            preferred_layout(&Pattern::RowWise.access(), &id),
            Some(Layout::row_major(2))
        );
        assert_eq!(
            preferred_layout(&Pattern::RowWise.access(), &interchange),
            Some(Layout::column_major(2))
        );
        assert_eq!(
            preferred_layout(&Pattern::ColumnWise.access(), &id),
            Some(Layout::column_major(2))
        );
        assert_eq!(
            preferred_layout(&Pattern::DiagonalSkew.access(), &id),
            Some(Layout::diagonal())
        );
        assert_eq!(
            preferred_layout(&Pattern::DiagonalSkew.access(), &interchange),
            Some(Layout::column_major(2))
        );
        assert_eq!(
            preferred_layout(&Pattern::AntiDiagonalSkew.access(), &id),
            Some(Layout::column_major(2))
        );
        assert_eq!(
            preferred_layout(&Pattern::AntiDiagonalSkew.access(), &interchange),
            Some(Layout::diagonal())
        );
        assert_eq!(
            preferred_layout(&Pattern::ShiftedRow.access(), &id),
            Some(Layout::row_major(2))
        );
        assert_eq!(preferred_layout(&Pattern::RowLookup.access(), &id), None);
    }

    #[test]
    fn stage_kind_rotation() {
        assert_eq!(StageKind::of(0), StageKind::Tie);
        assert_eq!(StageKind::of(1), StageKind::Revealer);
        assert_eq!(StageKind::of(2), StageKind::Diagonal);
        assert_eq!(StageKind::of(3), StageKind::Tie);
    }

    #[test]
    fn pipeline_builder_wires_stages_together() {
        let mut b = ProgramBuilder::new("pipe");
        let shared = vec![b.array("coef", vec![16, 16], 4)];
        let images = add_pipeline(&mut b, "t", 4, 16, 4, &shared);
        let p = b.build();
        assert_eq!(images.len(), 5);
        assert_eq!(p.nests().len(), 4);
        // Every interior image is referenced by two nests (written then read).
        for (k, &image) in images.iter().enumerate().take(4).skip(1) {
            assert_eq!(p.nests_referencing(image).len(), 2, "image {k}");
        }
        // The shared coefficient array is read by the first tie stage and by
        // the revealer stage.
        assert_eq!(p.nests_referencing(shared[0]).len(), 2);
    }

    #[test]
    fn pipeline_network_is_satisfiable_with_all_column_major() {
        // The module documentation claims the all-column-major assignment
        // satisfies every constraint derived from a pipeline; verify it.
        use mlo_csp::{Assignment, VarId};
        use mlo_layout::{build_network, CandidateOptions};
        let mut b = ProgramBuilder::new("pipe");
        let shared = vec![b.array("coef", vec![16, 16], 4)];
        add_pipeline(&mut b, "t", 7, 16, 4, &shared);
        let p = b.build();
        let ln = build_network(
            &p,
            &CandidateOptions {
                include_diagonals: true,
                ..CandidateOptions::default()
            },
        );
        let net = ln.network();
        let mut asg = Assignment::new(net.variable_count());
        for v in 0..net.variable_count() {
            let var = VarId::new(v);
            let idx = net
                .domain(var)
                .index_of(&Layout::column_major(2))
                .expect("column-major is a candidate for every 2-D array");
            asg.assign(var, idx);
        }
        assert_eq!(net.is_solution(&asg), Ok(true));
    }

    #[test]
    fn add_stage_sets_compute_cost() {
        let mut b = ProgramBuilder::new("s");
        let a = b.array("A", vec![8, 8], 4);
        let o = b.array("O", vec![8, 8], 4);
        let spec = StageSpec {
            name: "only".into(),
            reads: vec![(a, Pattern::RowWise)],
            write: (o, Pattern::RowWise),
            compute: 9,
        };
        add_stage(&mut b, 8, &spec);
        let p = b.build();
        assert_eq!(p.nests()[0].compute_per_iteration(), 9);
        assert_eq!(p.nests()[0].references().len(), 2);
    }
}
