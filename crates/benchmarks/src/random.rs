//! Random affine programs for stress tests and scaling studies.

use crate::generators::{add_stage, Pattern, StageSpec};
use mlo_ir::{ArrayId, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random program generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomProgramSpec {
    /// Number of 2-D arrays.
    pub arrays: usize,
    /// Number of loop nests.
    pub nests: usize,
    /// Square extent of every array (`n × n`).
    pub extent: i64,
    /// Reads per nest (each from a randomly chosen array and pattern).
    pub reads_per_nest: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomProgramSpec {
    fn default() -> Self {
        RandomProgramSpec {
            arrays: 12,
            nests: 10,
            extent: 32,
            reads_per_nest: 2,
            seed: 7,
        }
    }
}

/// Generates a random program: every nest reads a few random arrays with
/// random patterns and writes another random array row- or column-wise.
///
/// Unlike the curated benchmarks, these networks are *not* guaranteed to be
/// satisfiable — which is exactly what the optimizer's fallback path and the
/// scaling benchmarks need to exercise.
pub fn random_program(spec: &RandomProgramSpec) -> Program {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new(format!("random_{}", spec.seed));
    let arrays: Vec<ArrayId> = (0..spec.arrays.max(2))
        .map(|i| b.array(format!("R{i}"), vec![spec.extent, spec.extent], 4))
        .collect();
    let read_patterns = [
        Pattern::RowWise,
        Pattern::ColumnWise,
        Pattern::DiagonalSkew,
        Pattern::AntiDiagonalSkew,
        Pattern::ShiftedRow,
        Pattern::RowLookup,
    ];
    let write_patterns = [Pattern::RowWise, Pattern::ColumnWise, Pattern::DiagonalSkew];
    for k in 0..spec.nests {
        let mut reads = Vec::new();
        for _ in 0..spec.reads_per_nest.max(1) {
            let array = arrays[rng.gen_range(0..arrays.len())];
            let pattern = read_patterns[rng.gen_range(0..read_patterns.len())];
            reads.push((array, pattern));
        }
        let write_array = arrays[rng.gen_range(0..arrays.len())];
        let write_pattern = write_patterns[rng.gen_range(0..write_patterns.len())];
        add_stage(
            &mut b,
            spec.extent,
            &StageSpec {
                name: format!("nest{k}"),
                reads,
                write: (write_array, write_pattern),
                compute: rng.gen_range(2..8),
            },
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_layout::{build_network, CandidateOptions};

    #[test]
    fn generation_is_reproducible() {
        let spec = RandomProgramSpec::default();
        let a = random_program(&spec);
        let b = random_program(&spec);
        assert_eq!(a, b);
        assert_eq!(a.arrays().len(), spec.arrays);
        assert_eq!(a.nests().len(), spec.nests);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(&RandomProgramSpec::default());
        let b = random_program(&RandomProgramSpec {
            seed: 99,
            ..RandomProgramSpec::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn random_programs_build_constraint_networks() {
        let p = random_program(&RandomProgramSpec {
            arrays: 8,
            nests: 6,
            extent: 16,
            reads_per_nest: 2,
            seed: 3,
        });
        let ln = build_network(&p, &CandidateOptions::default());
        assert_eq!(ln.network().variable_count(), 8);
        // Networks derived from multi-nest programs normally have constraints.
        assert!(ln.network().constraint_count() > 0);
    }
}
