//! The five benchmarks of the paper's Table 1 and the published numbers the
//! reproduction compares against.

use crate::generators::{add_pipeline, add_stage, Pattern, StageSpec};
use mlo_ir::{AccessBuilder, Program, ProgramBuilder};
use mlo_layout::CandidateOptions;

/// The published Table 1 / Table 2 / Table 3 rows for one benchmark, used by
/// `EXPERIMENTS.md` and the harness to report paper-vs-measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Table 1: total search-space ("domain") size.
    pub domain_size: usize,
    /// Table 1: total data size in kilobytes.
    pub data_kb: f64,
    /// Table 2: heuristic solution time in seconds (500 MHz Sparc).
    pub heuristic_solution_secs: f64,
    /// Table 2: base-scheme solution time in seconds.
    pub base_solution_secs: f64,
    /// Table 2: enhanced-scheme solution time in seconds.
    pub enhanced_solution_secs: f64,
    /// Table 3: original execution time in seconds (SimpleScalar model).
    pub original_exec_secs: f64,
    /// Table 3: heuristic-optimized execution time in seconds.
    pub heuristic_exec_secs: f64,
    /// Table 3: base-scheme execution time in seconds.
    pub base_exec_secs: f64,
    /// Table 3: enhanced-scheme execution time in seconds.
    pub enhanced_exec_secs: f64,
}

/// The five array-intensive embedded benchmarks of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Medical image reconstruction.
    MedIm04,
    /// Triple matrix multiplication.
    MxM,
    /// Radar imaging.
    Radar,
    /// Pattern recognition and shape analysis.
    Shape,
    /// Visual tracking control.
    Track,
}

impl Benchmark {
    /// All five benchmarks, in Table 1 order.
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::MedIm04,
            Benchmark::MxM,
            Benchmark::Radar,
            Benchmark::Shape,
            Benchmark::Track,
        ]
    }

    /// The benchmark's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::MedIm04 => "Med-Im04",
            Benchmark::MxM => "MxM",
            Benchmark::Radar => "Radar",
            Benchmark::Shape => "Shape",
            Benchmark::Track => "Track",
        }
    }

    /// The candidate-enumeration options used for this benchmark when
    /// building its constraint network (chosen so the resulting domain sizes
    /// land near Table 1).
    pub fn candidate_options(&self) -> CandidateOptions {
        CandidateOptions {
            include_canonical: true,
            include_diagonals: true,
            max_transforms_per_nest: 8,
        }
    }

    /// Table 1: published domain size.
    pub fn paper_domain_size(&self) -> usize {
        self.paper_row().domain_size
    }

    /// Table 1: published data size in kilobytes.
    pub fn paper_data_kb(&self) -> f64 {
        self.paper_row().data_kb
    }

    /// All published numbers for this benchmark.
    pub fn paper_row(&self) -> PaperRow {
        match self {
            Benchmark::MedIm04 => PaperRow {
                domain_size: 258,
                data_kb: 825.55,
                heuristic_solution_secs: 7.14,
                base_solution_secs: 97.34,
                enhanced_solution_secs: 12.22,
                original_exec_secs: 204.27,
                heuristic_exec_secs: 128.14,
                base_exec_secs: 82.55,
                enhanced_exec_secs: 81.07,
            },
            Benchmark::MxM => PaperRow {
                domain_size: 34,
                data_kb: 1173.56,
                heuristic_solution_secs: 5.18,
                base_solution_secs: 36.62,
                enhanced_solution_secs: 9.24,
                original_exec_secs: 69.31,
                heuristic_exec_secs: 28.33,
                base_exec_secs: 28.33,
                enhanced_exec_secs: 28.33,
            },
            Benchmark::Radar => PaperRow {
                domain_size: 422,
                data_kb: 905.28,
                heuristic_solution_secs: 11.33,
                base_solution_secs: 129.51,
                enhanced_solution_secs: 53.81,
                original_exec_secs: 192.44,
                heuristic_exec_secs: 110.78,
                base_exec_secs: 83.92,
                enhanced_exec_secs: 85.15,
            },
            Benchmark::Shape => PaperRow {
                domain_size: 656,
                data_kb: 1284.06,
                heuristic_solution_secs: 16.52,
                base_solution_secs: 197.17,
                enhanced_solution_secs: 82.06,
                original_exec_secs: 233.58,
                heuristic_exec_secs: 140.30,
                base_exec_secs: 106.45,
                enhanced_exec_secs: 106.45,
            },
            Benchmark::Track => PaperRow {
                domain_size: 388,
                data_kb: 744.80,
                heuristic_solution_secs: 10.09,
                base_solution_secs: 155.02,
                enhanced_solution_secs: 68.50,
                original_exec_secs: 231.00,
                heuristic_exec_secs: 127.61,
                base_exec_secs: 97.28,
                enhanced_exec_secs: 95.30,
            },
        }
    }

    /// Builds the benchmark's program IR.
    pub fn program(&self) -> Program {
        match self {
            Benchmark::MedIm04 => med_im04(),
            Benchmark::MxM => mxm(),
            Benchmark::Radar => radar(),
            Benchmark::Shape => shape(),
            Benchmark::Track => track(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Medical image reconstruction: a long filtered-backprojection-style
/// pipeline over 64×64 single-precision images plus shared weight tables.
fn med_im04() -> Program {
    let mut b = ProgramBuilder::new("Med-Im04");
    let n = 64;
    let shared: Vec<_> = (0..4)
        .map(|s| b.array(format!("weights{s}"), vec![n, n], 4))
        .collect();
    add_pipeline(&mut b, "recon", 49, n, 4, &shared);
    b.build()
}

/// Triple matrix multiplication `E = (A × B) × D` with a final scaling pass,
/// over 256×256 single-precision matrices.
fn mxm() -> Program {
    let mut b = ProgramBuilder::new("MxM");
    let n: i64 = 256;
    let a = b.array("A", vec![n, n], 4);
    let bm = b.array("B", vec![n, n], 4);
    let c = b.array("C", vec![n, n], 4);
    let d = b.array("D", vec![n, n], 4);
    let e = b.array("E", vec![n, n], 4);
    let scale = b.array("Scale", vec![64, 64], 4);
    let bias = b.array("Bias", vec![64, 64], 4);

    // C = 0; E = 0 (2-deep initialization sweeps).
    b.nest("init_c", vec![("i", 0, n), ("j", 0, n)], |nest| {
        nest.write(c, Pattern::RowWise.access());
    });
    b.nest("init_e", vec![("i", 0, n), ("j", 0, n)], |nest| {
        nest.write(e, Pattern::RowWise.access());
    });
    // C += A * B  (classic i, j, k nest).
    b.nest("mm1", vec![("i", 0, n), ("j", 0, n), ("k", 0, n)], |nest| {
        nest.read(
            a,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 0, 1])
                .build(),
        );
        nest.read(
            bm,
            AccessBuilder::new(2, 3)
                .row(0, [0, 0, 1])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.read(
            c,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.write(
            c,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.compute(6);
    });
    // E += C * D.
    b.nest("mm2", vec![("i", 0, n), ("j", 0, n), ("k", 0, n)], |nest| {
        nest.read(
            c,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 0, 1])
                .build(),
        );
        nest.read(
            d,
            AccessBuilder::new(2, 3)
                .row(0, [0, 0, 1])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.read(
            e,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.write(
            e,
            AccessBuilder::new(2, 3)
                .row(0, [1, 0, 0])
                .row(1, [0, 1, 0])
                .build(),
        );
        nest.compute(6);
    });
    // Final fix-up over a 64×64 tile of E using small coefficient tables.
    b.nest("scale", vec![("i", 0, 64), ("j", 0, 64)], |nest| {
        nest.read(e, Pattern::RowWise.access());
        nest.read(scale, Pattern::RowWise.access());
        nest.read(bias, Pattern::RowWise.access());
        nest.write(e, Pattern::RowWise.access());
        nest.compute(4);
    });
    b.build()
}

/// Radar imaging: two processing chains (range compression and azimuth
/// compression) over 50×50 tiles with shared reference-function tables.
fn radar() -> Program {
    let mut b = ProgramBuilder::new("Radar");
    let n = 50;
    let shared: Vec<_> = (0..6)
        .map(|s| b.array(format!("reffn{s}"), vec![n, n], 4))
        .collect();
    add_pipeline(&mut b, "range", 40, n, 4, &shared[..3]);
    add_pipeline(&mut b, "azimuth", 40, n, 4, &shared[3..]);
    b.build()
}

/// Pattern recognition and shape analysis: three feature-extraction chains
/// over 48×48 tiles plus shared template arrays and a reduction stage.
fn shape() -> Program {
    let mut b = ProgramBuilder::new("Shape");
    let n = 48;
    let shared: Vec<_> = (0..5)
        .map(|s| b.array(format!("template{s}"), vec![n, n], 4))
        .collect();
    let c1 = add_pipeline(&mut b, "moments", 44, n, 4, &shared[..2]);
    let c2 = add_pipeline(&mut b, "contour", 44, n, 4, &shared[2..4]);
    let c3 = add_pipeline(&mut b, "classify", 43, n, 4, &shared[4..]);
    // A final stage combines the three chain outputs.
    let verdict = b.array("verdict", vec![n, n], 4);
    add_stage(
        &mut b,
        n,
        &StageSpec {
            name: "combine".into(),
            reads: vec![
                (*c1.last().expect("chain has images"), Pattern::RowWise),
                (*c2.last().expect("chain has images"), Pattern::DiagonalSkew),
                (*c3.last().expect("chain has images"), Pattern::RowWise),
            ],
            write: (verdict, Pattern::RowWise),
            compute: 8,
        },
    );
    b.build()
}

/// Visual tracking control: two chains (feature tracking and motion
/// estimation) over 48×48 tiles with shared camera-model tables.
fn track() -> Program {
    let mut b = ProgramBuilder::new("Track");
    let n = 48;
    let shared: Vec<_> = (0..6)
        .map(|s| b.array(format!("camera{s}"), vec![n, n], 4))
        .collect();
    add_pipeline(&mut b, "feature", 38, n, 4, &shared[..3]);
    add_pipeline(&mut b, "motion", 38, n, 4, &shared[3..]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(Benchmark::MedIm04.name(), "Med-Im04");
        assert_eq!(Benchmark::Track.to_string(), "Track");
        assert_eq!(Benchmark::all().len(), 5);
    }

    #[test]
    fn mxm_structure() {
        let p = Benchmark::MxM.program();
        assert_eq!(p.arrays().len(), 7);
        assert_eq!(p.nests().len(), 5);
        // The two triple loops dominate the cost ranking.
        let ranked = mlo_ir::rank_nests_by_cost(&p);
        let mm_ids: Vec<usize> = ranked[..2].iter().map(|n| n.index()).collect();
        assert!(mm_ids.contains(&2) && mm_ids.contains(&3));
    }

    #[test]
    fn pipeline_benchmarks_share_their_coefficient_arrays() {
        for b in [
            Benchmark::MedIm04,
            Benchmark::Radar,
            Benchmark::Shape,
            Benchmark::Track,
        ] {
            let p = b.program();
            let max_sharing = p
                .arrays()
                .iter()
                .map(|a| p.nests_referencing(a.id()).len())
                .max()
                .unwrap_or(0);
            assert!(
                max_sharing >= 3,
                "{}: expected a hub array referenced by at least 3 nests",
                b.name()
            );
        }
    }

    #[test]
    fn paper_rows_match_table1_values() {
        assert_eq!(Benchmark::MedIm04.paper_domain_size(), 258);
        assert_eq!(Benchmark::Shape.paper_domain_size(), 656);
        assert!((Benchmark::MxM.paper_data_kb() - 1173.56).abs() < 1e-9);
        assert!((Benchmark::Track.paper_row().enhanced_exec_secs - 95.30).abs() < 1e-9);
    }
}
