//! The five array-intensive embedded benchmarks of the paper's Table 1,
//! rebuilt as synthetic affine kernels, plus random program generators.
//!
//! The original benchmark codes (Med-Im04, MxM, Radar, Shape, Track) are
//! proprietary embedded applications; the paper only publishes their
//! domain-level descriptions, the total search-space size ("Domain Size",
//! i.e. the sum of the per-array candidate-layout counts) and the total data
//! size.  Following the substitution rule documented in `DESIGN.md`, each
//! benchmark is reconstructed as a pipeline of affine loop nests that
//!
//! * matches the stated application domain (image reconstruction, triple
//!   matrix multiplication, radar imaging, shape analysis, visual tracking),
//! * approximately matches the published data footprint, and
//! * produces a layout constraint network of roughly the published size,
//!   with genuine inter-nest layout conflicts (different nests prefer
//!   different layouts for shared arrays), which is the phenomenon the
//!   constraint-network approach is designed to resolve.
//!
//! # Example
//!
//! ```
//! use mlo_benchmarks::Benchmark;
//! let program = Benchmark::MxM.program();
//! assert_eq!(program.name(), "MxM");
//! assert!(program.nests().len() >= 3);
//! assert!(Benchmark::MxM.paper_domain_size() == 34);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod random;
pub mod suite;

pub use random::{random_program, RandomProgramSpec};
pub use suite::{Benchmark, PaperRow};

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_layout::candidates::total_domain_size;

    #[test]
    fn all_benchmarks_build_and_have_arrays_and_nests() {
        for b in Benchmark::all() {
            let p = b.program();
            assert!(!p.arrays().is_empty(), "{} has no arrays", b.name());
            assert!(!p.nests().is_empty(), "{} has no nests", b.name());
            assert_eq!(p.name(), b.name());
        }
    }

    #[test]
    fn data_sizes_are_in_the_published_ballpark() {
        // Within 30% of Table 1's data size.
        for b in Benchmark::all() {
            let p = b.program();
            let kb = p.total_data_kb();
            let target = b.paper_data_kb();
            assert!(
                kb > target * 0.7 && kb < target * 1.3,
                "{}: data size {kb:.1} KB too far from published {target:.1} KB",
                b.name()
            );
        }
    }

    #[test]
    fn domain_sizes_are_in_the_published_ballpark() {
        // Within 40% of Table 1's domain size, using the same candidate
        // options the optimizer defaults to for these benchmarks.
        for b in Benchmark::all() {
            let p = b.program();
            let opts = b.candidate_options();
            let measured = total_domain_size(&p, &opts) as f64;
            let target = b.paper_domain_size() as f64;
            assert!(
                measured > target * 0.6 && measured < target * 1.4,
                "{}: domain size {measured} too far from published {target}",
                b.name()
            );
        }
    }

    #[test]
    fn benchmarks_have_layout_conflicts_to_resolve() {
        // At least one array must be referenced by two or more nests —
        // otherwise the constraint network would be trivial.
        for b in Benchmark::all() {
            let p = b.program();
            let shared = p
                .arrays()
                .iter()
                .filter(|a| p.nests_referencing(a.id()).len() >= 2)
                .count();
            assert!(shared >= 1, "{} has no shared arrays", b.name());
        }
    }

    #[test]
    fn paper_rows_are_recorded_for_every_benchmark() {
        for b in Benchmark::all() {
            let row = b.paper_row();
            assert!(row.heuristic_solution_secs > 0.0);
            assert!(row.base_solution_secs > row.enhanced_solution_secs);
            assert!(row.original_exec_secs > row.heuristic_exec_secs);
            assert!(row.heuristic_exec_secs >= row.base_exec_secs.min(row.enhanced_exec_secs));
        }
    }

    #[test]
    fn candidate_options_include_diagonals_for_image_codes() {
        assert!(Benchmark::MedIm04.candidate_options().include_diagonals);
    }
}
