//! The request front-end: intake → admission → coalesce → worker pool →
//! stream.
//!
//! [`MloService`] accepts optimization requests without blocking the
//! caller: `submit` performs admission control (bounded intake depth,
//! per-tenant concurrency budgets), coalesces identical
//! `(program, request)` pairs onto one in-flight solve, queues the work on
//! the session's [`WorkerPool`](mlo_csp::WorkerPool) and hands back a
//! [`ResponseHandle`].  The handle waits for, polls, streams
//! (incumbent-by-incumbent, via [`IncumbentWatch`]) or cancels the solve;
//! cancellation is cooperative and interest-counted, so a coalesced solve
//! only aborts once *every* handle attached to it has cancelled.

use crate::dispatch::{AdaptiveDispatch, DispatchRow};
use mlo_core::{
    FallbackReason, OptimizeError, OptimizeReport, OptimizeRequest, Session, SolveHooks, StrategyId,
};
use mlo_csp::{fault, lock_or_recover, CancelToken, IncumbentObserver};
use mlo_ir::Program;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, Weak};
use std::time::{Duration, Instant};

/// The shared outcome of one served request.
///
/// Coalesced handles clone the same `Arc`, so duplicates of an in-flight
/// request observe pointer-identical results.
pub type SharedResult = Arc<Result<OptimizeReport, ServiceError>>;

/// Static service policy: intake bound and tenant budgets.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    queue_limit: usize,
    default_tenant_budget: Option<usize>,
    tenant_budgets: HashMap<String, usize>,
    absorb_every: Option<u64>,
    watchdog_grace: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_limit: 64,
            default_tenant_budget: None,
            tenant_budgets: HashMap::new(),
            absorb_every: None,
            watchdog_grace: None,
        }
    }
}

impl ServiceConfig {
    /// The default policy: intake bounded at 64, no tenant budgets, no
    /// automatic dispatch absorption.
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// Bounds the intake queue: submissions beyond `limit` concurrently
    /// queued-or-running solves are shed with [`ServiceError::QueueFull`].
    /// `0` removes the bound.
    pub fn queue_limit(mut self, limit: usize) -> Self {
        self.queue_limit = limit;
        self
    }

    /// Caps every tenant without an explicit budget at `limit` concurrent
    /// solves (coalesced duplicates are free — they add no work).
    pub fn default_tenant_budget(mut self, limit: usize) -> Self {
        self.default_tenant_budget = Some(limit);
        self
    }

    /// Caps one named tenant at `limit` concurrent solves.
    pub fn tenant_budget(mut self, tenant: impl Into<String>, limit: usize) -> Self {
        self.tenant_budgets.insert(tenant.into(), limit);
        self
    }

    /// Absorbs the attached dispatcher's side recording buffer
    /// automatically after every `every` completed solves (default: off;
    /// `0` also disables).  Absorption points are counted on the
    /// *completion* counter, so with sequential submissions the table
    /// grows at deterministic points — the Nth, 2Nth, … completions fold
    /// everything recorded so far into the reference table.
    pub fn absorb_every(mut self, every: u64) -> Self {
        self.absorb_every = (every > 0).then_some(every);
        self
    }

    /// Arms the deadline watchdog: a solve whose request carries a
    /// deadline is cooperatively cancelled once it has run for `grace`
    /// times that deadline without completing (e.g. `1.5` = 50% slack for
    /// the strategy's own deadline handling to kick in first).  Values
    /// below `1.0` are clamped to `1.0`; default: off — the watchdog is
    /// opt-in because it turns an overrunning solve into a `Cancelled`
    /// fallback, which requests relying on exact `DeadlineExceeded`
    /// semantics may not want.
    pub fn watchdog_grace(mut self, grace: f64) -> Self {
        self.watchdog_grace = Some(grace.max(1.0));
        self
    }

    /// The configured watchdog grace factor, when the watchdog is armed.
    pub fn watchdog_grace_value(&self) -> Option<f64> {
        self.watchdog_grace
    }

    /// The configured automatic-absorption period, when one is set.
    pub fn absorb_every_value(&self) -> Option<u64> {
        self.absorb_every
    }

    /// The configured intake bound (`0` = unbounded).
    pub fn queue_limit_value(&self) -> usize {
        self.queue_limit
    }

    /// The concurrency budget for `tenant`, when one applies.
    pub fn budget_for(&self, tenant: &str) -> Option<usize> {
        self.tenant_budgets
            .get(tenant)
            .copied()
            .or(self.default_tenant_budget)
    }
}

/// Why the service could not serve a request.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control shed the request: the intake queue was full.
    QueueFull {
        /// Queued-or-running solves at submission time.
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The tenant's concurrency budget was exhausted.
    TenantBudgetExhausted {
        /// The over-budget tenant.
        tenant: String,
        /// The tenant's solves in flight at submission time.
        in_flight: usize,
        /// The tenant's budget.
        limit: usize,
    },
    /// Every handle cancelled before the solve started; the request was
    /// drained from the queue without running.
    Cancelled,
    /// The underlying solve failed.
    Solve(OptimizeError),
    /// A fault-injection trigger fired at a service failpoint (tests
    /// only — see [`mlo_csp::fault`]; never produced in production runs).
    Injected {
        /// The failpoint that fired.
        site: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { depth, limit } => {
                write!(f, "intake queue full ({depth} in flight, limit {limit})")
            }
            ServiceError::TenantBudgetExhausted {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` budget exhausted ({in_flight} in flight, budget {limit})"
            ),
            ServiceError::Cancelled => write!(f, "request cancelled before it started"),
            ServiceError::Solve(error) => write!(f, "solve failed: {error}"),
            ServiceError::Injected { site } => {
                write!(f, "injected service fault at failpoint `{site}`")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(error) => Some(error),
            _ => None,
        }
    }
}

/// A monotonic snapshot of service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (coalesced hits included).
    pub submitted: u64,
    /// Requests that coalesced onto an already-in-flight solve.
    pub coalesced: u64,
    /// Requests shed by the intake bound.
    pub shed: u64,
    /// Requests rejected by a tenant budget.
    pub rejected: u64,
    /// Solves that ran to completion (cancel-drained ones included).
    pub completed: u64,
    /// Solves cancelled cooperatively (drained before running, or aborted
    /// mid-search).
    pub cancelled: u64,
    /// Strategy panics contained by the resilience layer (each one was
    /// converted into a typed error or a fallback re-dispatch, never a
    /// hung waiter).
    pub panicked: u64,
    /// Requests served by a *different* strategy than asked for, because
    /// the retry/fallback ladder descended past a faulting rung.
    pub degraded: u64,
    /// Solves the deadline watchdog cancelled for overrunning their
    /// deadline by more than the configured grace factor.
    pub watchdog_cancelled: u64,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    degraded: AtomicU64,
    watchdog_cancelled: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            watchdog_cancelled: self.watchdog_cancelled.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct WatchState {
    version: u64,
    weight: Option<f64>,
}

/// A watch channel streaming incumbent updates from a running solve.
///
/// Fed by the solver's
/// [`IncumbentObserver`] whenever the
/// branch-and-bound establishes a strictly better bound.  Only attached
/// when the request was submitted with [`MloService::submit_streaming`];
/// plain submissions run the exact unhooked solve path.
#[derive(Debug, Clone, Default)]
pub struct IncumbentWatch {
    inner: Arc<WatchChannel>,
}

#[derive(Debug, Default)]
struct WatchChannel {
    state: Mutex<WatchState>,
    changed: Condvar,
}

impl IncumbentWatch {
    /// The latest published `(version, weight)` pair.  Version `0` means
    /// nothing has been published; versions only increase.
    pub fn latest(&self) -> (u64, Option<f64>) {
        let state = lock_or_recover(&self.inner.state);
        (state.version, state.weight)
    }

    /// Blocks until a version greater than `seen` is published or the
    /// timeout passes, and returns the latest pair either way.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> (u64, Option<f64>) {
        let mut state = lock_or_recover(&self.inner.state);
        let deadline = Instant::now() + timeout;
        while state.version <= seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timed_out) = self
                .inner
                .changed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timed_out.timed_out() {
                break;
            }
        }
        (state.version, state.weight)
    }

    fn publish(&self, weight: f64) {
        let mut state = lock_or_recover(&self.inner.state);
        state.version += 1;
        state.weight = Some(weight);
        self.inner.changed.notify_all();
    }
}

/// Shared completion state for one (possibly coalesced) solve.
#[derive(Debug)]
struct ResponseSlot {
    result: Mutex<Option<SharedResult>>,
    ready: Condvar,
    cancel: CancelToken,
    /// Handles still interested in the outcome; the token fires when this
    /// reaches zero.
    interest: AtomicUsize,
    watch: IncumbentWatch,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            cancel: CancelToken::new(),
            interest: AtomicUsize::new(0),
            watch: IncumbentWatch::default(),
        }
    }

    /// Publishes the outcome unless one is already set (first writer
    /// wins): the normal completion path and the pool's last-resort panic
    /// observer can both try, and waiters must never see the result
    /// change under them.
    fn publish(&self, outcome: SharedResult) {
        let mut guard = lock_or_recover(&self.result);
        if guard.is_none() {
            *guard = Some(outcome);
        }
        self.ready.notify_all();
    }

    fn release_interest(&self) {
        if self.interest.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.cancel.cancel();
        }
    }
}

/// A caller's handle on one submitted request.
///
/// Dropping (or explicitly [`cancel`](ResponseHandle::cancel)ling) every
/// handle attached to a solve fires its cooperative cancellation token;
/// queued solves then drain without running and in-flight ones abort at
/// their next poll point.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
    coalesced: bool,
    released: AtomicBool,
}

impl ResponseHandle {
    fn attach(slot: Arc<ResponseSlot>, coalesced: bool) -> Self {
        slot.interest.fetch_add(1, Ordering::AcqRel);
        ResponseHandle {
            slot,
            coalesced,
            released: AtomicBool::new(false),
        }
    }

    /// Whether this submission coalesced onto an already-in-flight solve.
    pub fn is_coalesced(&self) -> bool {
        self.coalesced
    }

    /// The result, when already available.
    pub fn try_result(&self) -> Option<SharedResult> {
        lock_or_recover(&self.slot.result).clone()
    }

    /// Blocks until the solve completes.
    pub fn wait(&self) -> SharedResult {
        let mut guard = lock_or_recover(&self.slot.result);
        loop {
            if let Some(result) = guard.as_ref() {
                return Arc::clone(result);
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the solve completes or the timeout passes.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SharedResult> {
        let deadline = Instant::now() + timeout;
        let mut guard = lock_or_recover(&self.slot.result);
        loop {
            if let Some(result) = guard.as_ref() {
                return Some(Arc::clone(result));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .slot
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = next;
        }
    }

    /// Withdraws this handle's interest.  The solve's cancellation token
    /// fires once every attached handle has cancelled (or dropped), so a
    /// coalesced solve keeps running while anyone still wants the result.
    pub fn cancel(&self) {
        if !self.released.swap(true, Ordering::AcqRel) {
            self.slot.release_interest();
        }
    }

    /// The incumbent stream for this solve.  Only fed when the request was
    /// submitted with [`MloService::submit_streaming`].
    pub fn watch(&self) -> IncumbentWatch {
        self.slot.watch.clone()
    }
}

impl Clone for ResponseHandle {
    fn clone(&self) -> Self {
        ResponseHandle::attach(Arc::clone(&self.slot), self.coalesced)
    }
}

impl Drop for ResponseHandle {
    fn drop(&mut self) {
        self.cancel();
    }
}

/// How often the watchdog thread re-checks for work when no deadline is
/// armed (it also bounds how long the thread lingers after its service
/// drops).
const WATCHDOG_IDLE_POLL: Duration = Duration::from_millis(50);

/// One armed deadline: the watchdog fires `cancel` (and records it in
/// `fired`) if the entry is still registered past `deadline`.
#[derive(Debug)]
struct WatchdogEntry {
    id: u64,
    deadline: Instant,
    cancel: CancelToken,
    fired: Arc<AtomicBool>,
}

/// Shared state between solves and the (lazily spawned) watchdog thread.
#[derive(Debug, Default)]
struct WatchdogState {
    entries: Mutex<Vec<WatchdogEntry>>,
    changed: Condvar,
    next_id: AtomicU64,
    thread: OnceLock<()>,
}

/// Deregisters the entry on drop, so a solve that completes in time never
/// gets a late cancellation.
#[derive(Debug)]
struct WatchdogGuard {
    state: Arc<WatchdogState>,
    id: u64,
    fired: Arc<AtomicBool>,
}

impl WatchdogGuard {
    fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        lock_or_recover(&self.state.entries).retain(|entry| entry.id != self.id);
        self.state.changed.notify_all();
    }
}

fn watchdog_register(
    state: &Arc<WatchdogState>,
    deadline: Instant,
    cancel: CancelToken,
) -> WatchdogGuard {
    state.thread.get_or_init(|| {
        let weak = Arc::downgrade(state);
        std::thread::Builder::new()
            .name("mlo-watchdog".into())
            .spawn(move || watchdog_loop(weak))
            .expect("failed to spawn the watchdog thread");
    });
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let fired = Arc::new(AtomicBool::new(false));
    lock_or_recover(&state.entries).push(WatchdogEntry {
        id,
        deadline,
        cancel,
        fired: Arc::clone(&fired),
    });
    state.changed.notify_all();
    WatchdogGuard {
        state: Arc::clone(state),
        id,
        fired,
    }
}

/// The watchdog thread: holds only a `Weak` between iterations so it
/// exits (within one idle poll) once the owning service drops.
fn watchdog_loop(weak: Weak<WatchdogState>) {
    loop {
        let Some(state) = weak.upgrade() else { return };
        let mut entries = lock_or_recover(&state.entries);
        let now = Instant::now();
        entries.retain(|entry| {
            if entry.deadline <= now {
                entry.fired.store(true, Ordering::Release);
                entry.cancel.cancel();
                false
            } else {
                true
            }
        });
        let timeout = entries
            .iter()
            .map(|entry| entry.deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(WATCHDOG_IDLE_POLL);
        drop(
            state
                .changed
                .wait_timeout(entries, timeout)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }
}

/// The request front-end over a [`Session`].
///
/// ```
/// use mlo_core::{Engine, OptimizeRequest};
/// use mlo_service::{MloService, ServiceConfig};
/// use mlo_benchmarks::Benchmark;
///
/// let service = MloService::new(Engine::new().session(), ServiceConfig::new());
/// let program = Benchmark::MxM.program();
/// let handle = service
///     .submit(&program, &OptimizeRequest::strategy("enhanced"))
///     .unwrap();
/// let result = handle.wait();
/// assert!(result.as_ref().as_ref().unwrap().assignment.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MloService {
    core: Arc<ServiceCore>,
}

#[derive(Debug)]
struct ServiceCore {
    session: Session,
    config: ServiceConfig,
    /// Queued-or-running solves (coalesced duplicates excluded).
    depth: AtomicUsize,
    /// In-flight solves by request identity, for coalescing.
    inflight: Mutex<HashMap<String, Weak<ResponseSlot>>>,
    /// Per-tenant in-flight counts.
    tenants: Mutex<HashMap<String, usize>>,
    counters: Counters,
    dispatch: Option<Arc<AdaptiveDispatch>>,
    /// Armed deadlines, present only when the config enables the
    /// watchdog.
    watchdog: Option<Arc<WatchdogState>>,
}

/// Idempotent completion bookkeeping for one admitted solve.
///
/// Shared between the normal run path and the pool's last-resort panic
/// observer: whichever side finishes the job releases the admission
/// resources (queue depth, tenant budget, in-flight map entry) exactly
/// once, guarded by `done`.
struct Cleanup {
    key: String,
    tenant: Option<String>,
    done: AtomicBool,
}

/// One queued unit of work, moved onto the pool.
struct Job {
    slot: Arc<ResponseSlot>,
    program: Program,
    request: OptimizeRequest,
    streaming: bool,
    cleanup: Arc<Cleanup>,
}

/// One rung of the retry/fallback ladder either completed (with a report
/// or a typed error, both of which end the ladder) or panicked (which
/// descends to the next rung).
enum Rung {
    Done(Box<Result<OptimizeReport, OptimizeError>>),
    Panicked(OptimizeError),
}

impl MloService {
    /// A service over the given session and policy, without adaptive
    /// dispatch.
    pub fn new(session: Session, config: ServiceConfig) -> Self {
        let config_watchdog = config
            .watchdog_grace
            .is_some()
            .then(|| Arc::new(WatchdogState::default()));
        MloService {
            core: Arc::new(ServiceCore {
                session,
                config,
                depth: AtomicUsize::new(0),
                inflight: Mutex::new(HashMap::new()),
                tenants: Mutex::new(HashMap::new()),
                counters: Counters::default(),
                dispatch: None,
                watchdog: config_watchdog,
            }),
        }
    }

    /// Attaches an adaptive dispatcher: [`MloService::submit_adaptive`]
    /// picks strategies from its table, and every completed solve records
    /// a `(features, strategy, outcome)` row into its side buffer.
    ///
    /// Must be called before the service is cloned or shared.
    pub fn with_dispatch(mut self, dispatch: AdaptiveDispatch) -> Self {
        let core = Arc::get_mut(&mut self.core)
            .expect("with_dispatch must be called before the service is shared");
        core.dispatch = Some(Arc::new(dispatch));
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.core.session
    }

    /// The service policy.
    pub fn config(&self) -> &ServiceConfig {
        &self.core.config
    }

    /// The attached dispatcher, when one was configured.
    pub fn dispatch(&self) -> Option<&AdaptiveDispatch> {
        self.core.dispatch.as_deref()
    }

    /// Current queued-or-running solve count (coalesced duplicates add
    /// nothing).
    pub fn queue_depth(&self) -> usize {
        self.core.depth.load(Ordering::Acquire)
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.core.counters.snapshot()
    }

    /// Submits a request; returns immediately with a handle (or a shed /
    /// budget rejection).  The solve itself runs the exact same path as
    /// [`Session::optimize`] — no hooks beyond the cancellation token are
    /// attached, so reports are bit-identical to a direct session call.
    pub fn submit(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<ResponseHandle, ServiceError> {
        self.core.submit(program, request, None, false)
    }

    /// [`MloService::submit`] with the work charged against `tenant`'s
    /// concurrency budget.
    pub fn submit_for_tenant(
        &self,
        tenant: &str,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<ResponseHandle, ServiceError> {
        self.core.submit(program, request, Some(tenant), false)
    }

    /// [`MloService::submit`] with incumbent streaming: the handle's
    /// [`watch`](ResponseHandle::watch) receives every strictly-improving
    /// bound the weighted search establishes.
    ///
    /// Streaming requests never coalesce with plain ones (a plain solve
    /// has no observer attached), but do coalesce with each other.
    pub fn submit_streaming(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<ResponseHandle, ServiceError> {
        self.core.submit(program, request, None, true)
    }

    /// The strategy the attached dispatcher would pick for this instance
    /// (`None` without a dispatcher).
    pub fn pick_strategy(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Option<StrategyId> {
        let dispatch = self.core.dispatch.as_ref()?;
        let features = self.core.session.features(program, &request.candidates);
        Some(dispatch.pick(&features))
    }

    /// Submits with the request's strategy replaced by the dispatcher's
    /// pick (a plain [`MloService::submit`] when no dispatcher is
    /// attached).  Selection happens *before* the search starts and reads
    /// only the frozen dispatch table, so it never perturbs determinism.
    pub fn submit_adaptive(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<ResponseHandle, ServiceError> {
        match self.pick_strategy(program, request) {
            Some(strategy) => {
                let mut adapted = request.clone();
                adapted.set_strategy(strategy);
                self.submit(program, &adapted)
            }
            None => self.submit(program, request),
        }
    }

    /// Synchronous convenience: submit and wait.
    pub fn optimize(&self, program: &Program, request: &OptimizeRequest) -> SharedResult {
        match self.submit(program, request) {
            Ok(handle) => handle.wait(),
            Err(error) => Arc::new(Err(error)),
        }
    }
}

impl ServiceCore {
    fn submit(
        self: &Arc<Self>,
        program: &Program,
        request: &OptimizeRequest,
        tenant: Option<&str>,
        streaming: bool,
    ) -> Result<ResponseHandle, ServiceError> {
        mlo_csp::fail_point!("service.intake", |fault: mlo_csp::FaultError| {
            Err(ServiceError::Injected { site: fault.site })
        });

        let key = format!(
            "{}\u{1f}{request:?}\u{1f}{program:?}",
            if streaming { "stream" } else { "plain" }
        );

        // The map lock spans lookup and insertion so coalesce-or-create is
        // atomic with respect to concurrent submitters.
        let mut inflight = lock_or_recover(&self.inflight);

        if let Some(slot) = inflight.get(&key).and_then(Weak::upgrade) {
            // A fully-cancelled slot is still draining; give the new
            // submitter a fresh solve instead of the cancelled outcome.
            if !slot.cancel.is_cancelled() {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                return Ok(ResponseHandle::attach(slot, true));
            }
        }

        let depth = self.depth.load(Ordering::Acquire);
        let limit = self.config.queue_limit;
        if limit > 0 && depth >= limit {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::QueueFull { depth, limit });
        }

        if let Some(tenant) = tenant {
            if let Some(budget) = self.config.budget_for(tenant) {
                let mut tenants = lock_or_recover(&self.tenants);
                let in_flight = tenants.get(tenant).copied().unwrap_or(0);
                if in_flight >= budget {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::TenantBudgetExhausted {
                        tenant: tenant.to_string(),
                        in_flight,
                        limit: budget,
                    });
                }
                *tenants.entry(tenant.to_string()).or_insert(0) += 1;
            }
        }

        self.depth.fetch_add(1, Ordering::AcqRel);
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);

        let slot = Arc::new(ResponseSlot::new());
        let handle = ResponseHandle::attach(Arc::clone(&slot), false);
        inflight.insert(key.clone(), Arc::downgrade(&slot));
        drop(inflight);

        let cleanup = Arc::new(Cleanup {
            key,
            tenant: tenant.map(str::to_string),
            done: AtomicBool::new(false),
        });
        let job = Job {
            slot: Arc::clone(&slot),
            program: program.clone(),
            request: request.clone(),
            streaming,
            cleanup: Arc::clone(&cleanup),
        };
        let core = Arc::clone(self);
        let observer_core = Arc::clone(self);
        let strategy = request.strategy.to_string();
        // The observer is the last line of defense: `run` contains rung
        // panics itself, so this only fires when the run path *itself*
        // dies (e.g. an injected `pool.job` or `service.publish` panic).
        // It still releases the admission bookkeeping and fills the slot,
        // so no waiter ever hangs on a panicked solve.
        self.session.worker_pool().execute_observed(
            move || core.run(job),
            move |panic| {
                observer_core.finish(&cleanup);
                observer_core
                    .counters
                    .panicked
                    .fetch_add(1, Ordering::Relaxed);
                slot.publish(Arc::new(Err(ServiceError::Solve(
                    OptimizeError::StrategyPanicked {
                        strategy,
                        message: panic.message,
                        failpoint: panic.failpoint,
                    },
                ))));
            },
        );
        Ok(handle)
    }

    fn run(&self, job: Job) {
        let Job {
            slot,
            program,
            request,
            streaming,
            cleanup,
        } = job;
        let outcome: SharedResult = if slot.cancel.is_cancelled() {
            // Every handle cancelled while we were queued: drain without
            // solving.
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            Arc::new(Err(ServiceError::Cancelled))
        } else {
            Arc::new(self.serve(&slot, &program, &request, streaming))
        };

        // All bookkeeping strictly precedes publication, so a caller that
        // observed completion also observes the refunded queue depth,
        // tenant budget and counters.  (Late submitters hitting the map
        // entry in this window start a fresh solve, which is fine.)
        self.finish(&cleanup);
        mlo_csp::fail_point!("service.publish");
        slot.publish(outcome);
    }

    /// Serves one admitted request through the retry/fallback ladder.
    ///
    /// Rung 0 runs the request *untouched*, so fault-free service results
    /// stay bit-identical to a direct [`Session::optimize`] call.  Only
    /// when a rung panics (contained per rung via `catch_unwind`) does the
    /// ladder descend — to `enhanced`, then `heuristic` — re-dispatching
    /// with whatever wall-clock deadline remains; typed errors
    /// (unsatisfiable, budget exhausted, injected engine faults) end the
    /// ladder unchanged.  Reports served by a lower rung are marked
    /// [`degraded`](OptimizeReport::degraded).  When a dispatcher is
    /// attached, its per-strategy circuit breakers veto non-final rungs
    /// whose strategy keeps faulting; the final rung always runs so the
    /// request still gets an answer.
    fn serve(
        &self,
        slot: &ResponseSlot,
        program: &Program,
        request: &OptimizeRequest,
        streaming: bool,
    ) -> Result<OptimizeReport, ServiceError> {
        let start = Instant::now();
        let original_deadline = request.budget.deadline;
        let mut rungs = vec![request.strategy.clone()];
        for fallback in [StrategyId::Enhanced, StrategyId::Heuristic] {
            if !rungs.contains(&fallback) {
                rungs.push(fallback);
            }
        }

        let mut last_panic: Option<OptimizeError> = None;
        for (index, strategy) in rungs.iter().enumerate() {
            let degraded = index > 0;
            let last_rung = index + 1 == rungs.len();
            if let Some(dispatch) = &self.dispatch {
                if !last_rung && !dispatch.breaker_allows(strategy) {
                    continue;
                }
            }

            let mut attempt;
            let attempt_request = if degraded {
                attempt = request.clone();
                attempt.set_strategy(strategy.clone());
                if let Some(deadline) = original_deadline {
                    // The ladder shares the caller's deadline: a fallback
                    // rung only gets whatever wall clock the faulting
                    // rungs above it left over.
                    attempt.budget_mut().deadline = Some(deadline.saturating_sub(start.elapsed()));
                }
                &attempt
            } else {
                request
            };

            let (rung, watchdog_fired) = self.run_rung(slot, program, attempt_request, streaming);
            if watchdog_fired {
                self.counters
                    .watchdog_cancelled
                    .fetch_add(1, Ordering::Relaxed);
            }
            match rung {
                Rung::Done(result) => {
                    let mut result = *result;
                    if let Some(dispatch) = &self.dispatch {
                        if watchdog_fired {
                            dispatch.report_fault(strategy);
                        } else {
                            dispatch.report_success(strategy);
                        }
                    }
                    if let Ok(report) = &mut result {
                        if degraded {
                            report.degraded = true;
                            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        if report.fallback.reason() == Some(FallbackReason::Cancelled) {
                            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(dispatch) = &self.dispatch {
                            let features = self.session.features(program, &request.candidates);
                            dispatch.record(DispatchRow {
                                features: features.as_array(),
                                strategy: strategy.clone(),
                                solution_ms: report.solution_time.as_secs_f64() * 1e3,
                                solved: !report.fell_back(),
                            });
                        }
                    }
                    return result.map_err(ServiceError::Solve);
                }
                Rung::Panicked(error) => {
                    self.counters.panicked.fetch_add(1, Ordering::Relaxed);
                    if let Some(dispatch) = &self.dispatch {
                        dispatch.report_fault(strategy);
                    }
                    last_panic = Some(error);
                }
            }
        }

        // Every rung panicked (or was vetoed): surface the last panic as a
        // typed error rather than inventing a result.
        Err(ServiceError::Solve(last_panic.unwrap_or_else(|| {
            OptimizeError::Strategy {
                strategy: request.strategy.to_string(),
                message: "retry ladder exhausted without a runnable strategy".into(),
            }
        })))
    }

    /// Runs one ladder rung with panic containment and (when armed) a
    /// watchdog deadline.  Returns the rung outcome plus whether the
    /// watchdog cancelled this rung.
    fn run_rung(
        &self,
        slot: &ResponseSlot,
        program: &Program,
        request: &OptimizeRequest,
        streaming: bool,
    ) -> (Rung, bool) {
        // Transient dispatch faults (the `service.dispatch` failpoint)
        // retry with exponential backoff before counting as a failure.
        const DISPATCH_ATTEMPTS: u32 = 3;
        let mut backoff = Duration::from_millis(1);
        for attempt in 0..DISPATCH_ATTEMPTS {
            match fault::hit("service.dispatch") {
                None => break,
                Some(fault) if attempt + 1 == DISPATCH_ATTEMPTS => {
                    return (
                        Rung::Done(Box::new(Err(OptimizeError::Strategy {
                            strategy: request.strategy.to_string(),
                            message: format!(
                                "dispatch failed after {DISPATCH_ATTEMPTS} attempts: {fault}"
                            ),
                        }))),
                        false,
                    );
                }
                Some(_) => {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }

        let mut hooks = SolveHooks::cancellable(slot.cancel.clone());
        if streaming {
            let watch = slot.watch.clone();
            hooks.incumbent = Some(IncumbentObserver::new(move |weight| {
                watch.publish(weight);
            }));
        }

        let watchdog = match (
            &self.watchdog,
            self.config.watchdog_grace,
            request.budget.deadline,
        ) {
            (Some(state), Some(grace), Some(deadline)) => Some(watchdog_register(
                state,
                Instant::now() + deadline.mul_f64(grace),
                slot.cancel.clone(),
            )),
            _ => None,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.session.optimize_with_hooks(program, request, &hooks)
        }));
        let fired = watchdog.as_ref().is_some_and(WatchdogGuard::fired);
        drop(watchdog);

        match result {
            Ok(result) => (Rung::Done(Box::new(result)), fired),
            Err(payload) => (
                Rung::Panicked(OptimizeError::StrategyPanicked {
                    strategy: request.strategy.to_string(),
                    message: fault::panic_message(&*payload),
                    failpoint: fault::take_last_triggered(),
                }),
                fired,
            ),
        }
    }

    /// Releases one solve's admission resources exactly once (idempotent
    /// via the cleanup's `done` flag, because both the run path and the
    /// pool's panic observer call it).
    fn finish(&self, cleanup: &Cleanup) {
        if cleanup.done.swap(true, Ordering::AcqRel) {
            return;
        }
        lock_or_recover(&self.inflight).remove(&cleanup.key);
        if let Some(tenant) = &cleanup.tenant {
            let mut tenants = lock_or_recover(&self.tenants);
            if let Some(count) = tenants.get_mut(tenant) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    tenants.remove(tenant);
                }
            }
        }
        self.depth.fetch_sub(1, Ordering::AcqRel);
        let completed = self.counters.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let (Some(dispatch), Some(every)) = (&self.dispatch, self.config.absorb_every) {
            // Deterministic absorb points: the Nth, 2Nth, … completions
            // fold the side buffer into the reference table.
            if completed.is_multiple_of(every) {
                dispatch.absorb_recorded();
            }
        }
    }
}
