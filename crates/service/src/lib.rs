//! Async-style request front-end over `mlo-core` sessions.
//!
//! The crate adds a serving layer on top of
//! [`Session`](mlo_core::Session) without changing what a solve computes:
//!
//! ```text
//!  submit(program, request)
//!     │  admission        bounded intake depth + per-tenant budgets
//!     │  coalesce         identical in-flight (program, request) pairs
//!     │                   share one solve (pointer-identical results)
//!     ▼
//!  Session::worker_pool()                 (mlo-csp work-stealing pool)
//!     │  solve            Session::optimize_with_hooks — cancellation
//!     │                   token always, incumbent observer only when
//!     │                   streaming was requested
//!     ▼
//!  ResponseHandle         wait / try_result / wait_timeout / cancel
//!  IncumbentWatch         versioned stream of improving bounds
//! ```
//!
//! Submission never blocks on the solve: callers get a
//! [`ResponseHandle`] immediately (or an admission error) and the work
//! runs on the session's worker pool.  There is no async runtime in the
//! workspace, so "async" here means handle-based completion over
//! plain threads, mutexes and condvars.
//!
//! On top sits [`AdaptiveDispatch`]: per-instance
//! [`InstanceFeatures`](mlo_core::InstanceFeatures) select a strategy by
//! nearest recorded neighbor from a frozen table
//! ([`DispatchTable::seed`] ships one replayed from the bench corpus),
//! and every completed solve records a `(features, strategy, outcome)`
//! row for later absorption.  Because selection happens before the search
//! and reads only frozen state, the served solve remains bit-identical to
//! a direct [`Session::optimize`](mlo_core::Session::optimize) call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
// `ServiceError::Solve` carries `OptimizeError` by value, which embeds
// `Option<SearchStats>` and has outgrown clippy's 128-byte Err threshold.
// Every `Err` here is built once on the cold rejection/failure path and
// moved straight into a response slot, so the large-variant cost is
// immaterial; boxing it would push `Box` deref patterns into every
// caller that matches on the solve error.
#[allow(clippy::result_large_err)]
pub mod front;

pub use dispatch::{
    AdaptiveDispatch, BreakerConfig, BreakerMetadata, BreakerState, DispatchParseError,
    DispatchRow, DispatchTable,
};
pub use front::{
    IncumbentWatch, MloService, ResponseHandle, ServiceConfig, ServiceError, ServiceStats,
    SharedResult,
};
