//! Adaptive strategy dispatch: nearest-recorded-neighbor strategy picks.
//!
//! The dispatcher keeps a table of `(features, strategy, outcome)` rows —
//! one per completed solve — and picks the strategy of the *nearest
//! recorded neighbor* (normalized Euclidean distance over
//! [`InstanceFeatures`]) for new instances.  Selection happens **before**
//! the search starts and reads only a frozen reference table, so picks are
//! deterministic: the same table and the same instance give the same pick
//! regardless of worker counts, concurrency or the order in which other
//! solves complete.  Rows recorded by live traffic accumulate in a side
//! buffer and only influence picks after an
//! [`AdaptiveDispatch::absorb_recorded`] call — explicit, or automatic at
//! the deterministic completion points `ServiceConfig::absorb_every`
//! configures.
//!
//! Tables persist as a small hand-rolled JSON document (the workspace
//! vendors no serde); [`DispatchTable::seed`] loads the committed table
//! replayed from the perf-gate bench corpus.

use mlo_core::{InstanceFeatures, StrategyId};
use std::fmt;
use std::sync::{Mutex, RwLock};

/// One recorded solve: the instance's features, the strategy that ran and
/// what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchRow {
    /// The instance features, in [`InstanceFeatures::as_array`] order.
    pub features: [f64; 4],
    /// The strategy that served the solve.
    pub strategy: StrategyId,
    /// Wall-clock solve time in milliseconds.
    pub solution_ms: f64,
    /// Whether the strategy produced its own solution (no fallback).
    pub solved: bool,
}

/// A frozen, order-preserving table of recorded solves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchTable {
    rows: Vec<DispatchRow>,
}

/// Why a persisted dispatch table failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchParseError(String);

impl fmt::Display for DispatchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dispatch table parse error: {}", self.0)
    }
}

impl std::error::Error for DispatchParseError {}

impl DispatchTable {
    /// An empty table.
    pub fn new() -> Self {
        DispatchTable::default()
    }

    /// A table over the given rows.
    pub fn from_rows(rows: Vec<DispatchRow>) -> Self {
        DispatchTable { rows }
    }

    /// The committed seed table, replayed from the perf-gate bench corpus
    /// (regenerate with the `dispatch_seed` bench binary).
    pub fn seed() -> Self {
        DispatchTable::from_json(include_str!("../data/seed_dispatch.json"))
            .expect("the committed seed table parses")
    }

    /// The rows, in recording order.
    pub fn rows(&self) -> &[DispatchRow] {
        &self.rows
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    pub fn push(&mut self, row: DispatchRow) {
        self.rows.push(row);
    }

    /// Picks the strategy of the nearest recorded neighbor, `None` on an
    /// empty table.  Deterministic tie-break: smallest distance, then the
    /// canonical strategy rank ([`StrategyId::BUILTIN`] order, customs
    /// after), then the earliest row.
    pub fn pick(&self, features: &InstanceFeatures) -> Option<StrategyId> {
        let target = features.as_array();
        let scale = self.feature_scale();
        self.rows
            .iter()
            .enumerate()
            .map(|(index, row)| {
                let distance = normalized_distance(&row.features, &target, &scale);
                (distance.to_bits(), strategy_rank(&row.strategy), index, row)
            })
            .min_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)))
            .map(|(_, _, _, row)| row.strategy.clone())
    }

    /// Per-dimension normalization scale: the largest absolute value seen
    /// in each feature column (1.0 for all-zero columns, so the division is
    /// always defined).
    fn feature_scale(&self) -> [f64; 4] {
        let mut scale = [0.0f64; 4];
        for row in &self.rows {
            for (slot, value) in scale.iter_mut().zip(row.features) {
                *slot = slot.max(value.abs());
            }
        }
        for slot in &mut scale {
            if *slot <= 0.0 {
                *slot = 1.0;
            }
        }
        scale
    }

    /// Serializes the table as the persisted JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"rows\": [\n");
        for (index, row) in self.rows.iter().enumerate() {
            out.push_str("    {\"features\": [");
            for (fi, feature) in row.features.iter().enumerate() {
                if fi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format_f64(*feature));
            }
            out.push_str("], \"strategy\": \"");
            out.push_str(row.strategy.as_str());
            out.push_str("\", \"solution_ms\": ");
            out.push_str(&format_f64(row.solution_ms));
            out.push_str(", \"solved\": ");
            out.push_str(if row.solved { "true" } else { "false" });
            out.push('}');
            if index + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a persisted table.
    pub fn from_json(text: &str) -> Result<Self, DispatchParseError> {
        let value = json::parse(text).map_err(DispatchParseError)?;
        let rows_value = value
            .get("rows")
            .ok_or_else(|| DispatchParseError("missing \"rows\"".to_string()))?;
        let entries = rows_value
            .as_array()
            .ok_or_else(|| DispatchParseError("\"rows\" is not an array".to_string()))?;
        let mut rows = Vec::with_capacity(entries.len());
        for (index, entry) in entries.iter().enumerate() {
            rows.push(
                parse_row(entry)
                    .map_err(|message| DispatchParseError(format!("row {index}: {message}")))?,
            );
        }
        Ok(DispatchTable { rows })
    }
}

fn parse_row(entry: &json::Value) -> Result<DispatchRow, String> {
    let features_value = entry
        .get("features")
        .and_then(json::Value::as_array)
        .ok_or("missing \"features\" array")?;
    if features_value.len() != 4 {
        return Err(format!("expected 4 features, got {}", features_value.len()));
    }
    let mut features = [0.0f64; 4];
    for (slot, value) in features.iter_mut().zip(features_value) {
        *slot = value.as_f64().ok_or("non-numeric feature")?;
    }
    let strategy = entry
        .get("strategy")
        .and_then(json::Value::as_str)
        .ok_or("missing \"strategy\" string")?;
    let solution_ms = entry
        .get("solution_ms")
        .and_then(json::Value::as_f64)
        .ok_or("missing \"solution_ms\" number")?;
    let solved = entry
        .get("solved")
        .and_then(json::Value::as_bool)
        .ok_or("missing \"solved\" bool")?;
    Ok(DispatchRow {
        features,
        strategy: StrategyId::from(strategy),
        solution_ms,
        solved,
    })
}

/// `{:?}`-style float rendering that always round-trips and never emits a
/// bare integer (so the document stays unambiguous).
fn format_f64(value: f64) -> String {
    let text = format!("{value:?}");
    if text.contains(['.', 'e', 'E', 'n', 'i']) {
        text
    } else {
        format!("{text}.0")
    }
}

fn normalized_distance(a: &[f64; 4], b: &[f64; 4], scale: &[f64; 4]) -> f64 {
    a.iter()
        .zip(b)
        .zip(scale)
        .map(|((x, y), s)| {
            let d = (x - y) / s;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Canonical tie-break rank: built-ins in registry order, customs after
/// (alphabetical by name via the usize::MAX bucket falling through to row
/// order — customs of equal distance resolve by earliest row).
fn strategy_rank(strategy: &StrategyId) -> usize {
    StrategyId::BUILTIN
        .iter()
        .position(|id| id == strategy)
        .unwrap_or(usize::MAX)
}

/// The adaptive dispatcher: a frozen reference table picks; live traffic
/// records into a side buffer that only affects picks once absorbed.
#[derive(Debug)]
pub struct AdaptiveDispatch {
    /// Behind a read-write lock so absorption can run from a shared
    /// reference (the service's automatic `absorb_every` hook); picks take
    /// the uncontended read path.
    table: RwLock<DispatchTable>,
    recorded: Mutex<Vec<DispatchRow>>,
    /// Strategy used when the reference table is empty.
    fallback: StrategyId,
}

impl AdaptiveDispatch {
    /// A dispatcher over the given reference table.
    pub fn new(table: DispatchTable) -> Self {
        AdaptiveDispatch {
            table: RwLock::new(table),
            recorded: Mutex::new(Vec::new()),
            fallback: StrategyId::Enhanced,
        }
    }

    /// A dispatcher over the committed seed table.
    pub fn seeded() -> Self {
        AdaptiveDispatch::new(DispatchTable::seed())
    }

    /// Overrides the strategy used when the reference table is empty
    /// (default: `enhanced`).
    pub fn fallback(mut self, strategy: StrategyId) -> Self {
        self.fallback = strategy;
        self
    }

    /// A snapshot of the reference table picks read (absorbed rows
    /// included, side buffer excluded).
    pub fn table(&self) -> DispatchTable {
        self.table.read().expect("dispatch table poisoned").clone()
    }

    /// Picks a strategy for the given instance — deterministic for a fixed
    /// reference table.
    pub fn pick(&self, features: &InstanceFeatures) -> StrategyId {
        self.table
            .read()
            .expect("dispatch table poisoned")
            .pick(features)
            .unwrap_or_else(|| self.fallback.clone())
    }

    /// Records one completed solve into the side buffer (never consulted
    /// by [`AdaptiveDispatch::pick`] until absorbed).
    pub fn record(&self, row: DispatchRow) {
        self.recorded
            .lock()
            .expect("dispatch recording buffer poisoned")
            .push(row);
    }

    /// Number of rows waiting in the side buffer.
    pub fn recorded_rows(&self) -> usize {
        self.recorded
            .lock()
            .expect("dispatch recording buffer poisoned")
            .len()
    }

    /// Moves the side buffer into the reference table — the point at which
    /// live traffic starts influencing picks.  Called explicitly by the
    /// owner, or automatically by the service at the completion points
    /// `ServiceConfig::absorb_every` configures.
    pub fn absorb_recorded(&self) -> usize {
        let mut buffer = self
            .recorded
            .lock()
            .expect("dispatch recording buffer poisoned");
        let absorbed = buffer.len();
        self.table
            .write()
            .expect("dispatch table poisoned")
            .rows
            .append(&mut buffer);
        absorbed
    }

    /// Serializes the reference table (absorbed rows included, side buffer
    /// excluded).
    pub fn to_json(&self) -> String {
        self.table
            .read()
            .expect("dispatch table poisoned")
            .to_json()
    }
}

/// A minimal JSON-subset reader (objects, arrays, strings, numbers, bools,
/// null) — enough to round-trip dispatch tables without a serde
/// dependency.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string (escapes resolved).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields
                    .iter()
                    .find(|(name, _)| name == key)
                    .map(|(_, value)| value),
                _ => None,
            }
        }

        /// The array items, when this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The number, when this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(value) => Some(*value),
                _ => None,
            }
        }

        /// The string, when this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(value) => Some(value),
                _ => None,
            }
        }

        /// The bool, when this is a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(value) => Some(*value),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, wanted: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&wanted) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", wanted as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while let Some(&byte) = bytes.get(*pos) {
            *pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                other => {
                    // Multi-byte UTF-8 sequences pass through byte by byte.
                    let mut buffer = vec![other];
                    while std::str::from_utf8(&buffer).is_err() {
                        let next = bytes.get(*pos).copied().ok_or("truncated UTF-8")?;
                        buffer.push(next);
                        *pos += 1;
                        if buffer.len() > 4 {
                            return Err("invalid UTF-8 in string".to_string());
                        }
                    }
                    out.push_str(std::str::from_utf8(&buffer).expect("checked above"));
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(features: [f64; 4], strategy: StrategyId) -> DispatchRow {
        DispatchRow {
            features,
            strategy,
            solution_ms: 1.0,
            solved: true,
        }
    }

    #[test]
    fn json_round_trips() {
        let table = DispatchTable::from_rows(vec![
            row([8.0, 0.5, 3.25, 1.0], StrategyId::Enhanced),
            row([40.0, 0.1, 9.5, 2.75], StrategyId::PortfolioSteal),
            DispatchRow {
                features: [1.0, 0.0, 2.0, 1.0],
                strategy: StrategyId::custom("escalating"),
                solution_ms: 0.125,
                solved: false,
            },
        ]);
        let reparsed = DispatchTable::from_json(&table.to_json()).unwrap();
        assert_eq!(reparsed, table);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(DispatchTable::from_json("{}").is_err());
        assert!(DispatchTable::from_json("{\"rows\": 3}").is_err());
        assert!(DispatchTable::from_json("{\"rows\": [{\"features\": [1]}]}").is_err());
        assert!(DispatchTable::from_json("not json").is_err());
    }

    #[test]
    fn nearest_neighbor_is_deterministic_with_rank_tie_break() {
        let features = |v: f64| InstanceFeatures {
            variables: v,
            density: 0.5,
            mean_domain: 3.0,
            weight_skew: 1.0,
        };
        let table = DispatchTable::from_rows(vec![
            row([10.0, 0.5, 3.0, 1.0], StrategyId::Portfolio),
            row([10.0, 0.5, 3.0, 1.0], StrategyId::Enhanced), // same distance, lower rank
            row([100.0, 0.5, 3.0, 1.0], StrategyId::Weighted),
        ]);
        // Equidistant rows resolve by canonical strategy rank.
        assert_eq!(table.pick(&features(10.0)), Some(StrategyId::Enhanced));
        // A clearly nearer neighbor wins regardless of rank.
        assert_eq!(table.pick(&features(100.0)), Some(StrategyId::Weighted));
        // Repeat picks are identical.
        for _ in 0..10 {
            assert_eq!(table.pick(&features(10.0)), Some(StrategyId::Enhanced));
        }
        assert_eq!(DispatchTable::new().pick(&features(1.0)), None);
    }

    #[test]
    fn recording_buffer_only_affects_picks_after_absorb() {
        let features = InstanceFeatures {
            variables: 7.0,
            density: 0.3,
            mean_domain: 4.0,
            weight_skew: 1.5,
        };
        let dispatch = AdaptiveDispatch::new(DispatchTable::from_rows(vec![row(
            [7.0, 0.3, 4.0, 1.5],
            StrategyId::Base,
        )]));
        assert_eq!(dispatch.pick(&features), StrategyId::Base);
        // An exactly-matching recorded row with a lower-ranked strategy
        // must not change picks until absorbed.
        dispatch.record(row([7.0, 0.3, 4.0, 1.5], StrategyId::Heuristic));
        assert_eq!(dispatch.pick(&features), StrategyId::Base);
        assert_eq!(dispatch.recorded_rows(), 1);
        assert_eq!(dispatch.absorb_recorded(), 1);
        assert_eq!(dispatch.recorded_rows(), 0);
        // heuristic ranks before base in the canonical order.
        assert_eq!(dispatch.pick(&features), StrategyId::Heuristic);
    }

    #[test]
    fn empty_table_uses_the_fallback() {
        let dispatch = AdaptiveDispatch::new(DispatchTable::new());
        let features = InstanceFeatures {
            variables: 1.0,
            density: 0.0,
            mean_domain: 1.0,
            weight_skew: 1.0,
        };
        assert_eq!(dispatch.pick(&features), StrategyId::Enhanced);
        let custom = AdaptiveDispatch::new(DispatchTable::new()).fallback(StrategyId::Portfolio);
        assert_eq!(custom.pick(&features), StrategyId::Portfolio);
    }
}
