//! Adaptive strategy dispatch: nearest-recorded-neighbor strategy picks.
//!
//! The dispatcher keeps a table of `(features, strategy, outcome)` rows —
//! one per completed solve — and picks the strategy of the *nearest
//! recorded neighbor* (normalized Euclidean distance over
//! [`InstanceFeatures`]) for new instances.  Selection happens **before**
//! the search starts and reads only a frozen reference table, so picks are
//! deterministic: the same table and the same instance give the same pick
//! regardless of worker counts, concurrency or the order in which other
//! solves complete.  Rows recorded by live traffic accumulate in a side
//! buffer and only influence picks after an
//! [`AdaptiveDispatch::absorb_recorded`] call — explicit, or automatic at
//! the deterministic completion points `ServiceConfig::absorb_every`
//! configures.
//!
//! Tables persist as a small hand-rolled JSON document (the workspace
//! vendors no serde); [`DispatchTable::seed`] loads the committed table
//! replayed from the perf-gate bench corpus.

use mlo_core::{InstanceFeatures, StrategyId};
use mlo_csp::{lock_or_recover, read_or_recover, write_or_recover};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, RwLock};

/// Thresholds of the per-strategy circuit breakers (see
/// [`AdaptiveDispatch::breaker_allows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults that open a strategy's breaker.
    pub threshold: u32,
    /// Denied dispatches an open breaker absorbs before letting one
    /// half-open probe through.  Counting *denials* instead of wall-clock
    /// time keeps the state machine deterministic under test.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: 8,
        }
    }
}

/// The deterministic per-strategy circuit-breaker state machine.
///
/// `Closed -(threshold consecutive faults)-> Open -(cooldown denials)->
/// HalfOpen -(probe success)-> Closed | -(probe fault)-> Open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatches flow; `failures` consecutive faults recorded so far.
    Closed {
        /// Consecutive faults since the last success.
        failures: u32,
    },
    /// Dispatches are denied; `denials` of them absorbed so far.
    Open {
        /// Denials since the breaker opened.
        denials: u32,
    },
    /// One probe dispatch is in flight; everything else is denied until
    /// the probe reports.
    HalfOpen,
}

/// Breaker bookkeeping persisted alongside a dispatch table: thresholds
/// plus per-strategy consecutive-failure counts (all zero in the committed
/// seed).  Never consulted by [`DispatchTable::pick`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerMetadata {
    /// The thresholds breakers start from.
    pub config: BreakerConfig,
    /// Initial consecutive-failure count per strategy, in table order.
    pub failures: Vec<(StrategyId, u32)>,
}

impl BreakerMetadata {
    /// Metadata with default thresholds and a zero failure count for every
    /// strategy named by `strategies` (the committed-seed shape).
    pub fn zeroed(strategies: impl IntoIterator<Item = StrategyId>) -> Self {
        BreakerMetadata {
            config: BreakerConfig::default(),
            failures: strategies.into_iter().map(|id| (id, 0)).collect(),
        }
    }
}

/// One recorded solve: the instance's features, the strategy that ran and
/// what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchRow {
    /// The instance features, in [`InstanceFeatures::as_array`] order.
    pub features: [f64; 4],
    /// The strategy that served the solve.
    pub strategy: StrategyId,
    /// Wall-clock solve time in milliseconds.
    pub solution_ms: f64,
    /// Whether the strategy produced its own solution (no fallback).
    pub solved: bool,
}

/// A frozen, order-preserving table of recorded solves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DispatchTable {
    rows: Vec<DispatchRow>,
    /// Optional persisted circuit-breaker bookkeeping.  Picks never read
    /// it; [`AdaptiveDispatch::new`] seeds its breakers from it.
    breaker: Option<BreakerMetadata>,
}

/// Why a persisted dispatch table failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchParseError(String);

impl fmt::Display for DispatchParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dispatch table parse error: {}", self.0)
    }
}

impl std::error::Error for DispatchParseError {}

impl DispatchTable {
    /// An empty table.
    pub fn new() -> Self {
        DispatchTable::default()
    }

    /// A table over the given rows.
    pub fn from_rows(rows: Vec<DispatchRow>) -> Self {
        DispatchTable {
            rows,
            breaker: None,
        }
    }

    /// Attaches persisted breaker metadata (thresholds + initial failure
    /// counts) to the table.  Picks are unaffected.
    pub fn with_breaker(mut self, metadata: BreakerMetadata) -> Self {
        self.breaker = Some(metadata);
        self
    }

    /// The persisted breaker metadata, when the table carries any.
    pub fn breaker(&self) -> Option<&BreakerMetadata> {
        self.breaker.as_ref()
    }

    /// The committed seed table, replayed from the perf-gate bench corpus
    /// (regenerate with the `dispatch_seed` bench binary).
    pub fn seed() -> Self {
        DispatchTable::from_json(include_str!("../data/seed_dispatch.json"))
            .expect("the committed seed table parses")
    }

    /// The rows, in recording order.
    pub fn rows(&self) -> &[DispatchRow] {
        &self.rows
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    pub fn push(&mut self, row: DispatchRow) {
        self.rows.push(row);
    }

    /// Picks the strategy of the nearest recorded neighbor, `None` on an
    /// empty table.  Deterministic tie-break: smallest distance, then the
    /// canonical strategy rank ([`StrategyId::BUILTIN`] order, customs
    /// after), then the earliest row.
    pub fn pick(&self, features: &InstanceFeatures) -> Option<StrategyId> {
        let target = features.as_array();
        let scale = self.feature_scale();
        self.rows
            .iter()
            .enumerate()
            .map(|(index, row)| {
                let distance = normalized_distance(&row.features, &target, &scale);
                (distance.to_bits(), strategy_rank(&row.strategy), index, row)
            })
            .min_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)))
            .map(|(_, _, _, row)| row.strategy.clone())
    }

    /// Per-dimension normalization scale: the largest absolute value seen
    /// in each feature column (1.0 for all-zero columns, so the division is
    /// always defined).
    fn feature_scale(&self) -> [f64; 4] {
        let mut scale = [0.0f64; 4];
        for row in &self.rows {
            for (slot, value) in scale.iter_mut().zip(row.features) {
                *slot = slot.max(value.abs());
            }
        }
        for slot in &mut scale {
            if *slot <= 0.0 {
                *slot = 1.0;
            }
        }
        scale
    }

    /// Serializes the table as the persisted JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"rows\": [\n");
        for (index, row) in self.rows.iter().enumerate() {
            out.push_str("    {\"features\": [");
            for (fi, feature) in row.features.iter().enumerate() {
                if fi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format_f64(*feature));
            }
            out.push_str("], \"strategy\": \"");
            out.push_str(row.strategy.as_str());
            out.push_str("\", \"solution_ms\": ");
            out.push_str(&format_f64(row.solution_ms));
            out.push_str(", \"solved\": ");
            out.push_str(if row.solved { "true" } else { "false" });
            out.push('}');
            if index + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        match &self.breaker {
            None => out.push_str("  ]\n}\n"),
            Some(metadata) => {
                out.push_str("  ],\n  \"breaker\": {\"threshold\": ");
                out.push_str(&metadata.config.threshold.to_string());
                out.push_str(", \"cooldown\": ");
                out.push_str(&metadata.config.cooldown.to_string());
                out.push_str(", \"failures\": {");
                for (index, (strategy, count)) in metadata.failures.iter().enumerate() {
                    if index > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(strategy.as_str());
                    out.push_str("\": ");
                    out.push_str(&count.to_string());
                }
                out.push_str("}}\n}\n");
            }
        }
        out
    }

    /// Parses a persisted table.
    pub fn from_json(text: &str) -> Result<Self, DispatchParseError> {
        let value = json::parse(text).map_err(DispatchParseError)?;
        let rows_value = value
            .get("rows")
            .ok_or_else(|| DispatchParseError("missing \"rows\"".to_string()))?;
        let entries = rows_value
            .as_array()
            .ok_or_else(|| DispatchParseError("\"rows\" is not an array".to_string()))?;
        let mut rows = Vec::with_capacity(entries.len());
        for (index, entry) in entries.iter().enumerate() {
            rows.push(
                parse_row(entry)
                    .map_err(|message| DispatchParseError(format!("row {index}: {message}")))?,
            );
        }
        let breaker = value.get("breaker").map(parse_breaker).transpose()?;
        Ok(DispatchTable { rows, breaker })
    }
}

fn parse_breaker(entry: &json::Value) -> Result<BreakerMetadata, DispatchParseError> {
    let int_field = |key: &str| {
        entry
            .get(key)
            .and_then(json::Value::as_f64)
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as u32)
            .ok_or_else(|| DispatchParseError(format!("breaker: missing \"{key}\" count")))
    };
    let config = BreakerConfig {
        threshold: int_field("threshold")?,
        cooldown: int_field("cooldown")?,
    };
    let failures_value = entry
        .get("failures")
        .ok_or_else(|| DispatchParseError("breaker: missing \"failures\"".to_string()))?;
    let json::Value::Obj(fields) = failures_value else {
        return Err(DispatchParseError(
            "breaker: \"failures\" is not an object".to_string(),
        ));
    };
    let mut failures = Vec::with_capacity(fields.len());
    for (strategy, count) in fields {
        let count = count
            .as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .ok_or_else(|| {
                DispatchParseError(format!("breaker: bad failure count for \"{strategy}\""))
            })?;
        failures.push((StrategyId::from(strategy.as_str()), count as u32));
    }
    Ok(BreakerMetadata { config, failures })
}

fn parse_row(entry: &json::Value) -> Result<DispatchRow, String> {
    let features_value = entry
        .get("features")
        .and_then(json::Value::as_array)
        .ok_or("missing \"features\" array")?;
    if features_value.len() != 4 {
        return Err(format!("expected 4 features, got {}", features_value.len()));
    }
    let mut features = [0.0f64; 4];
    for (slot, value) in features.iter_mut().zip(features_value) {
        *slot = value.as_f64().ok_or("non-numeric feature")?;
    }
    let strategy = entry
        .get("strategy")
        .and_then(json::Value::as_str)
        .ok_or("missing \"strategy\" string")?;
    let solution_ms = entry
        .get("solution_ms")
        .and_then(json::Value::as_f64)
        .ok_or("missing \"solution_ms\" number")?;
    let solved = entry
        .get("solved")
        .and_then(json::Value::as_bool)
        .ok_or("missing \"solved\" bool")?;
    Ok(DispatchRow {
        features,
        strategy: StrategyId::from(strategy),
        solution_ms,
        solved,
    })
}

/// `{:?}`-style float rendering that always round-trips and never emits a
/// bare integer (so the document stays unambiguous).
fn format_f64(value: f64) -> String {
    let text = format!("{value:?}");
    if text.contains(['.', 'e', 'E', 'n', 'i']) {
        text
    } else {
        format!("{text}.0")
    }
}

fn normalized_distance(a: &[f64; 4], b: &[f64; 4], scale: &[f64; 4]) -> f64 {
    a.iter()
        .zip(b)
        .zip(scale)
        .map(|((x, y), s)| {
            let d = (x - y) / s;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Canonical tie-break rank: built-ins in registry order, customs after
/// (alphabetical by name via the usize::MAX bucket falling through to row
/// order — customs of equal distance resolve by earliest row).
fn strategy_rank(strategy: &StrategyId) -> usize {
    StrategyId::BUILTIN
        .iter()
        .position(|id| id == strategy)
        .unwrap_or(usize::MAX)
}

/// The adaptive dispatcher: a frozen reference table picks; live traffic
/// records into a side buffer that only affects picks once absorbed.
#[derive(Debug)]
pub struct AdaptiveDispatch {
    /// Behind a read-write lock so absorption can run from a shared
    /// reference (the service's automatic `absorb_every` hook); picks take
    /// the uncontended read path.
    table: RwLock<DispatchTable>,
    recorded: Mutex<Vec<DispatchRow>>,
    /// Strategy used when the reference table is empty.
    fallback: StrategyId,
    /// Per-strategy circuit breakers (see
    /// [`AdaptiveDispatch::breaker_allows`]).  Strategies without an entry
    /// are implicitly `Closed { failures: 0 }`.
    breakers: Mutex<HashMap<StrategyId, BreakerState>>,
    breaker_config: BreakerConfig,
}

impl AdaptiveDispatch {
    /// A dispatcher over the given reference table.  When the table
    /// carries [`BreakerMetadata`], the breakers start from its thresholds
    /// and failure counts.
    pub fn new(table: DispatchTable) -> Self {
        let (breaker_config, seeded_failures) = match table.breaker() {
            Some(metadata) => (metadata.config, metadata.failures.clone()),
            None => (BreakerConfig::default(), Vec::new()),
        };
        let breakers = seeded_failures
            .into_iter()
            .map(|(strategy, failures)| (strategy, BreakerState::Closed { failures }))
            .collect();
        AdaptiveDispatch {
            table: RwLock::new(table),
            recorded: Mutex::new(Vec::new()),
            fallback: StrategyId::Enhanced,
            breakers: Mutex::new(breakers),
            breaker_config,
        }
    }

    /// A dispatcher over the committed seed table.
    pub fn seeded() -> Self {
        AdaptiveDispatch::new(DispatchTable::seed())
    }

    /// Overrides the strategy used when the reference table is empty
    /// (default: `enhanced`).
    pub fn fallback(mut self, strategy: StrategyId) -> Self {
        self.fallback = strategy;
        self
    }

    /// Overrides the circuit-breaker thresholds.
    pub fn breaker_config(mut self, config: BreakerConfig) -> Self {
        self.breaker_config = config;
        self
    }

    /// Consults (and advances) `strategy`'s circuit breaker: `true` means
    /// dispatching to the strategy is allowed right now.
    ///
    /// The state machine is deterministic — driven entirely by call
    /// counts, never by wall-clock time:
    ///
    /// * `Closed`: always allowed.
    /// * `Open`: denied; after [`BreakerConfig::cooldown`] denials the
    ///   breaker moves to `HalfOpen` and *this* call is allowed as the
    ///   probe.
    /// * `HalfOpen`: denied (exactly one probe is in flight); the probe's
    ///   [`report_success`](AdaptiveDispatch::report_success) /
    ///   [`report_fault`](AdaptiveDispatch::report_fault) decides what
    ///   happens next.
    pub fn breaker_allows(&self, strategy: &StrategyId) -> bool {
        let mut breakers = lock_or_recover(&self.breakers);
        let state = breakers
            .entry(strategy.clone())
            .or_insert(BreakerState::Closed { failures: 0 });
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { denials } => {
                if denials + 1 >= self.breaker_config.cooldown {
                    *state = BreakerState::HalfOpen;
                    true // this caller is the half-open probe
                } else {
                    *state = BreakerState::Open {
                        denials: denials + 1,
                    };
                    false
                }
            }
            BreakerState::HalfOpen => false,
        }
    }

    /// Reports a successful solve by `strategy`: its breaker closes and
    /// the consecutive-failure count resets.
    pub fn report_success(&self, strategy: &StrategyId) {
        lock_or_recover(&self.breakers)
            .insert(strategy.clone(), BreakerState::Closed { failures: 0 });
    }

    /// Reports a fault (panic, injected failure, watchdog cancellation) by
    /// `strategy`: the consecutive-failure count advances, opening the
    /// breaker at [`BreakerConfig::threshold`]; a half-open probe fault
    /// re-opens immediately.
    pub fn report_fault(&self, strategy: &StrategyId) {
        let mut breakers = lock_or_recover(&self.breakers);
        let state = breakers
            .entry(strategy.clone())
            .or_insert(BreakerState::Closed { failures: 0 });
        *state = match *state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.breaker_config.threshold {
                    BreakerState::Open { denials: 0 }
                } else {
                    BreakerState::Closed { failures }
                }
            }
            BreakerState::HalfOpen => BreakerState::Open { denials: 0 },
            open @ BreakerState::Open { .. } => open,
        };
    }

    /// The current breaker state of `strategy` (strategies never reported
    /// on are `Closed` with zero failures).
    pub fn breaker_state(&self, strategy: &StrategyId) -> BreakerState {
        lock_or_recover(&self.breakers)
            .get(strategy)
            .copied()
            .unwrap_or(BreakerState::Closed { failures: 0 })
    }

    /// A snapshot of the reference table picks read (absorbed rows
    /// included, side buffer excluded).
    pub fn table(&self) -> DispatchTable {
        read_or_recover(&self.table).clone()
    }

    /// Picks a strategy for the given instance — deterministic for a fixed
    /// reference table.
    pub fn pick(&self, features: &InstanceFeatures) -> StrategyId {
        read_or_recover(&self.table)
            .pick(features)
            .unwrap_or_else(|| self.fallback.clone())
    }

    /// Records one completed solve into the side buffer (never consulted
    /// by [`AdaptiveDispatch::pick`] until absorbed).
    pub fn record(&self, row: DispatchRow) {
        lock_or_recover(&self.recorded).push(row);
    }

    /// Number of rows waiting in the side buffer.
    pub fn recorded_rows(&self) -> usize {
        lock_or_recover(&self.recorded).len()
    }

    /// Moves the side buffer into the reference table — the point at which
    /// live traffic starts influencing picks.  Called explicitly by the
    /// owner, or automatically by the service at the completion points
    /// `ServiceConfig::absorb_every` configures.
    pub fn absorb_recorded(&self) -> usize {
        let mut buffer = lock_or_recover(&self.recorded);
        let absorbed = buffer.len();
        write_or_recover(&self.table).rows.append(&mut buffer);
        absorbed
    }

    /// Serializes the reference table (absorbed rows included, side buffer
    /// excluded).
    pub fn to_json(&self) -> String {
        read_or_recover(&self.table).to_json()
    }
}

/// A minimal JSON-subset reader (objects, arrays, strings, numbers, bools,
/// null) — enough to round-trip dispatch tables without a serde
/// dependency.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (parsed as `f64`).
        Num(f64),
        /// A string (escapes resolved).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields
                    .iter()
                    .find(|(name, _)| name == key)
                    .map(|(_, value)| value),
                _ => None,
            }
        }

        /// The array items, when this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The number, when this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(value) => Some(*value),
                _ => None,
            }
        }

        /// The string, when this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(value) => Some(value),
                _ => None,
            }
        }

        /// The bool, when this is a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(value) => Some(*value),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, wanted: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&wanted) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", wanted as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while let Some(&byte) = bytes.get(*pos) {
            *pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                other => {
                    // Multi-byte UTF-8 sequences pass through byte by byte.
                    let mut buffer = vec![other];
                    while std::str::from_utf8(&buffer).is_err() {
                        let next = bytes.get(*pos).copied().ok_or("truncated UTF-8")?;
                        buffer.push(next);
                        *pos += 1;
                        if buffer.len() > 4 {
                            return Err("invalid UTF-8 in string".to_string());
                        }
                    }
                    out.push_str(std::str::from_utf8(&buffer).expect("checked above"));
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(features: [f64; 4], strategy: StrategyId) -> DispatchRow {
        DispatchRow {
            features,
            strategy,
            solution_ms: 1.0,
            solved: true,
        }
    }

    #[test]
    fn json_round_trips() {
        let table = DispatchTable::from_rows(vec![
            row([8.0, 0.5, 3.25, 1.0], StrategyId::Enhanced),
            row([40.0, 0.1, 9.5, 2.75], StrategyId::PortfolioSteal),
            DispatchRow {
                features: [1.0, 0.0, 2.0, 1.0],
                strategy: StrategyId::custom("escalating"),
                solution_ms: 0.125,
                solved: false,
            },
        ]);
        let reparsed = DispatchTable::from_json(&table.to_json()).unwrap();
        assert_eq!(reparsed, table);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(DispatchTable::from_json("{}").is_err());
        assert!(DispatchTable::from_json("{\"rows\": 3}").is_err());
        assert!(DispatchTable::from_json("{\"rows\": [{\"features\": [1]}]}").is_err());
        assert!(DispatchTable::from_json("not json").is_err());
    }

    #[test]
    fn nearest_neighbor_is_deterministic_with_rank_tie_break() {
        let features = |v: f64| InstanceFeatures {
            variables: v,
            density: 0.5,
            mean_domain: 3.0,
            weight_skew: 1.0,
        };
        let table = DispatchTable::from_rows(vec![
            row([10.0, 0.5, 3.0, 1.0], StrategyId::Portfolio),
            row([10.0, 0.5, 3.0, 1.0], StrategyId::Enhanced), // same distance, lower rank
            row([100.0, 0.5, 3.0, 1.0], StrategyId::Weighted),
        ]);
        // Equidistant rows resolve by canonical strategy rank.
        assert_eq!(table.pick(&features(10.0)), Some(StrategyId::Enhanced));
        // A clearly nearer neighbor wins regardless of rank.
        assert_eq!(table.pick(&features(100.0)), Some(StrategyId::Weighted));
        // Repeat picks are identical.
        for _ in 0..10 {
            assert_eq!(table.pick(&features(10.0)), Some(StrategyId::Enhanced));
        }
        assert_eq!(DispatchTable::new().pick(&features(1.0)), None);
    }

    #[test]
    fn recording_buffer_only_affects_picks_after_absorb() {
        let features = InstanceFeatures {
            variables: 7.0,
            density: 0.3,
            mean_domain: 4.0,
            weight_skew: 1.5,
        };
        let dispatch = AdaptiveDispatch::new(DispatchTable::from_rows(vec![row(
            [7.0, 0.3, 4.0, 1.5],
            StrategyId::Base,
        )]));
        assert_eq!(dispatch.pick(&features), StrategyId::Base);
        // An exactly-matching recorded row with a lower-ranked strategy
        // must not change picks until absorbed.
        dispatch.record(row([7.0, 0.3, 4.0, 1.5], StrategyId::Heuristic));
        assert_eq!(dispatch.pick(&features), StrategyId::Base);
        assert_eq!(dispatch.recorded_rows(), 1);
        assert_eq!(dispatch.absorb_recorded(), 1);
        assert_eq!(dispatch.recorded_rows(), 0);
        // heuristic ranks before base in the canonical order.
        assert_eq!(dispatch.pick(&features), StrategyId::Heuristic);
    }

    #[test]
    fn breaker_metadata_round_trips_and_never_changes_picks() {
        let rows = vec![
            row([8.0, 0.5, 3.25, 1.0], StrategyId::Enhanced),
            row([40.0, 0.1, 9.5, 2.75], StrategyId::PortfolioSteal),
        ];
        let plain = DispatchTable::from_rows(rows.clone());
        let table = DispatchTable::from_rows(rows).with_breaker(BreakerMetadata::zeroed([
            StrategyId::Enhanced,
            StrategyId::PortfolioSteal,
        ]));
        let reparsed = DispatchTable::from_json(&table.to_json()).unwrap();
        assert_eq!(reparsed, table);
        let metadata = reparsed.breaker().expect("metadata survived");
        assert_eq!(metadata.config, BreakerConfig::default());
        assert!(metadata.failures.iter().all(|(_, count)| *count == 0));
        // The metadata block changes no pick on any probe point.
        let features = |v: f64| InstanceFeatures {
            variables: v,
            density: 0.5,
            mean_domain: 3.0,
            weight_skew: 1.0,
        };
        for v in [1.0, 8.0, 40.0, 100.0] {
            assert_eq!(table.pick(&features(v)), plain.pick(&features(v)));
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_a_probe() {
        let dispatch = AdaptiveDispatch::new(DispatchTable::new()).breaker_config(BreakerConfig {
            threshold: 3,
            cooldown: 2,
        });
        let strategy = StrategyId::Enhanced;
        // Closed: faults accumulate until the threshold opens the breaker.
        for _ in 0..2 {
            dispatch.report_fault(&strategy);
            assert!(dispatch.breaker_allows(&strategy));
        }
        dispatch.report_fault(&strategy);
        assert_eq!(
            dispatch.breaker_state(&strategy),
            BreakerState::Open { denials: 0 }
        );
        // Open: exactly `cooldown - 1` denials, then the probe goes through.
        assert!(!dispatch.breaker_allows(&strategy));
        assert!(dispatch.breaker_allows(&strategy), "half-open probe");
        assert_eq!(dispatch.breaker_state(&strategy), BreakerState::HalfOpen);
        // Only one probe is in flight.
        assert!(!dispatch.breaker_allows(&strategy));
        // A failed probe re-opens; a successful one closes and resets.
        dispatch.report_fault(&strategy);
        assert_eq!(
            dispatch.breaker_state(&strategy),
            BreakerState::Open { denials: 0 }
        );
        assert!(!dispatch.breaker_allows(&strategy));
        assert!(dispatch.breaker_allows(&strategy), "second probe");
        dispatch.report_success(&strategy);
        assert_eq!(
            dispatch.breaker_state(&strategy),
            BreakerState::Closed { failures: 0 }
        );
        assert!(dispatch.breaker_allows(&strategy));
        // A success between faults resets the consecutive count.
        dispatch.report_fault(&strategy);
        dispatch.report_fault(&strategy);
        dispatch.report_success(&strategy);
        dispatch.report_fault(&strategy);
        assert_eq!(
            dispatch.breaker_state(&strategy),
            BreakerState::Closed { failures: 1 }
        );
        // Other strategies are independent.
        assert!(dispatch.breaker_allows(&StrategyId::Heuristic));
    }

    #[test]
    fn empty_table_uses_the_fallback() {
        let dispatch = AdaptiveDispatch::new(DispatchTable::new());
        let features = InstanceFeatures {
            variables: 1.0,
            density: 0.0,
            mean_domain: 1.0,
            weight_skew: 1.0,
        };
        assert_eq!(dispatch.pick(&features), StrategyId::Enhanced);
        let custom = AdaptiveDispatch::new(DispatchTable::new()).fallback(StrategyId::Portfolio);
        assert_eq!(custom.pick(&features), StrategyId::Portfolio);
    }
}
