//! Failure-path tests of the service resilience layer: panic containment
//! (no hung waiters at any worker count), the retry/fallback ladder,
//! per-strategy circuit breakers and the deadline watchdog.
//!
//! Tests that need a specific fault environment install it with
//! [`mlo_csp::fault::scoped`], which serializes them on a process-wide
//! lock and masks any ambient `MLO_FAILPOINTS` plan; outcome-sensitive
//! fault-free tests use `scoped(FaultPlan::new())` for the same masking.

use mlo_benchmarks::Benchmark;
use mlo_core::StrategyId;
use mlo_core::{
    Engine, LayoutStrategy, OptimizeError, OptimizeRequest, Session, StrategyContext,
    StrategyOutcome,
};
use mlo_csp::fault::{self, FaultPlan, FaultTrigger};
use mlo_service::{
    AdaptiveDispatch, BreakerConfig, BreakerState, DispatchTable, MloService, ServiceConfig,
    ServiceError,
};
use std::sync::Arc;
use std::time::Duration;

/// Generous bound for "the waiter did not hang": real solves on the test
/// benchmarks finish in milliseconds.
const NO_HANG: Duration = Duration::from_secs(30);

/// A strategy that always panics, standing in for a buggy rollout.
#[derive(Debug)]
struct Panicker;

impl LayoutStrategy for Panicker {
    fn name(&self) -> &str {
        "panicker"
    }

    fn determine(&self, _ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        panic!("panicker always explodes");
    }
}

fn panicking_session(workers: usize) -> Session {
    Engine::builder()
        .parallelism(workers)
        .strategy(Arc::new(Panicker))
        .build()
        .session()
}

#[test]
fn panicking_strategy_never_hangs_waiters_at_any_worker_count() {
    let _plan = fault::scoped(FaultPlan::new());
    for workers in [1usize, 2, 4, 8] {
        let service = MloService::new(panicking_session(workers), ServiceConfig::new());
        let program = Benchmark::MxM.program();
        let handle = service
            .submit(&program, &OptimizeRequest::strategy("panicker"))
            .unwrap();
        let result = handle
            .wait_timeout(NO_HANG)
            .unwrap_or_else(|| panic!("waiter hung at {workers} workers"));
        // The ladder descends past the panicking rung, so the caller gets
        // a degraded report from a healthy strategy instead of an error.
        let report = result
            .as_ref()
            .as_ref()
            .unwrap_or_else(|e| panic!("expected degraded report at {workers} workers, got {e}"));
        assert!(report.degraded, "fallback rung must mark the report");
        assert_ne!(report.strategy, "panicker");
        let stats = service.stats();
        assert_eq!(stats.panicked, 1, "exactly the panicker rung panicked");
        assert_eq!(stats.degraded, 1);
        // The pool survived the contained panic: a healthy follow-up runs.
        let follow_up = service
            .submit(&program, &OptimizeRequest::strategy("heuristic"))
            .unwrap()
            .wait_timeout(NO_HANG)
            .expect("pool stayed usable");
        assert!(follow_up.as_ref().is_ok());
    }
}

#[test]
fn exhausted_ladder_surfaces_a_typed_panic_error() {
    // An unbounded engine.solve panic plan makes *every* rung panic; the
    // ladder must then report the last contained panic, never hang.
    let _plan = fault::scoped(FaultPlan::new().with("engine.solve", FaultTrigger::panic()));
    let service = MloService::new(Engine::new().session(), ServiceConfig::new());
    let program = Benchmark::MxM.program();
    let handle = service
        .submit(&program, &OptimizeRequest::strategy("enhanced"))
        .unwrap();
    let result = handle.wait_timeout(NO_HANG).expect("waiter hung");
    match result.as_ref() {
        Err(ServiceError::Solve(OptimizeError::StrategyPanicked { failpoint, .. })) => {
            assert_eq!(failpoint.as_deref(), Some("engine.solve"));
        }
        other => panic!("expected StrategyPanicked after ladder exhaustion, got {other:?}"),
    }
    let stats = service.stats();
    assert!(
        stats.panicked >= 2,
        "every attempted rung panicked (got {})",
        stats.panicked
    );
}

#[test]
fn publish_path_panic_is_filled_by_the_pool_observer() {
    // A panic *after* the solve (between bookkeeping and publication)
    // escapes the ladder; the pool's observer must still fill the slot.
    let _plan =
        fault::scoped(FaultPlan::new().with("service.publish", FaultTrigger::panic().times(1)));
    let service = MloService::new(Engine::new().session(), ServiceConfig::new());
    let program = Benchmark::MxM.program();
    let handle = service
        .submit(&program, &OptimizeRequest::strategy("heuristic"))
        .unwrap();
    let result = handle.wait_timeout(NO_HANG).expect("waiter hung");
    match result.as_ref() {
        Err(ServiceError::Solve(OptimizeError::StrategyPanicked { failpoint, .. })) => {
            assert_eq!(failpoint.as_deref(), Some("service.publish"));
        }
        other => panic!("expected observer-published StrategyPanicked, got {other:?}"),
    }
    // Admission bookkeeping was released exactly once: the queue drained
    // and the service keeps serving.
    assert_eq!(service.queue_depth(), 0);
    let follow_up = service
        .submit(&program, &OptimizeRequest::strategy("heuristic"))
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("pool stayed usable");
    assert!(follow_up.as_ref().is_ok());
}

#[test]
fn breaker_opens_after_repeated_panics_and_skips_the_faulting_rung() {
    let _plan = fault::scoped(FaultPlan::new());
    let threshold = BreakerConfig::default().threshold;
    let dispatch = AdaptiveDispatch::new(DispatchTable::from_rows(vec![]))
        .breaker_config(BreakerConfig::default());
    let service =
        MloService::new(panicking_session(2), ServiceConfig::new()).with_dispatch(dispatch);
    let program = Benchmark::MxM.program();
    let panicker = StrategyId::custom("panicker");

    for round in 0..threshold {
        let result = service
            .submit(&program, &OptimizeRequest::strategy(panicker.clone()))
            .unwrap()
            .wait_timeout(NO_HANG)
            .unwrap_or_else(|| panic!("round {round} hung"));
        assert!(result.as_ref().as_ref().unwrap().degraded);
    }
    assert_eq!(service.stats().panicked, u64::from(threshold));
    assert_eq!(
        service.dispatch().unwrap().breaker_state(&panicker),
        BreakerState::Open { denials: 0 },
        "the breaker opened after {threshold} consecutive panics"
    );

    // With the breaker open the panicking rung is skipped entirely: the
    // request degrades immediately and the panic counter stays put.
    let result = service
        .submit(&program, &OptimizeRequest::strategy(panicker))
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("post-open request hung");
    assert!(result.as_ref().as_ref().unwrap().degraded);
    assert_eq!(service.stats().panicked, u64::from(threshold));
}

/// A strategy that sleeps well past any test deadline while ignoring the
/// cancellation token, simulating a wedged solve only the watchdog can
/// reclaim.
#[derive(Debug)]
struct Sleeper {
    nap: Duration,
}

impl LayoutStrategy for Sleeper {
    fn name(&self) -> &str {
        "sleeper"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        std::thread::sleep(self.nap);
        Ok(StrategyOutcome::Solved {
            assignment: ctx.heuristic(),
            stats: None,
            proven_satisfiable: false,
        })
    }
}

#[test]
fn watchdog_cancels_solves_overrunning_their_deadline() {
    let _plan = fault::scoped(FaultPlan::new());
    let session = Engine::builder()
        .parallelism(1)
        .strategy(Arc::new(Sleeper {
            nap: Duration::from_millis(200),
        }))
        .build()
        .session();
    let service = MloService::new(session, ServiceConfig::new().watchdog_grace(1.0));
    let program = Benchmark::MxM.program();
    let request = OptimizeRequest::strategy(StrategyId::custom("sleeper"))
        .with_budget(mlo_core::SearchBudget::new().deadline(Duration::from_millis(20)));
    let handle = service.submit(&program, &request).unwrap();
    let result = handle.wait_timeout(NO_HANG).expect("waiter hung");
    // The sleeper ignores cancellation and eventually returns; what the
    // watchdog guarantees is that the overrun was detected and recorded.
    assert!(result.as_ref().is_ok() || matches!(result.as_ref(), Err(ServiceError::Solve(_))));
    assert_eq!(service.stats().watchdog_cancelled, 1);

    // A solve that finishes inside its grace window is left alone.
    let quick = OptimizeRequest::strategy("heuristic")
        .with_budget(mlo_core::SearchBudget::new().deadline(Duration::from_secs(60)));
    let result = service
        .submit(&program, &quick)
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("waiter hung");
    assert!(result.as_ref().is_ok());
    assert_eq!(service.stats().watchdog_cancelled, 1);
}
