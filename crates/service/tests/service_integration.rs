//! End-to-end tests of the service front-end: admission, coalescing,
//! cancellation draining, adaptive-dispatch determinism and
//! service-vs-session report identity.
//!
//! Several tests pin the session's worker pool at one thread and park it
//! with a `blocker` strategy so queue states are deterministic; run the
//! suite with `--test-threads=1` in CI to keep machine load from skewing
//! the timing-free assertions anyway.

use mlo_benchmarks::Benchmark;
use mlo_core::{
    Engine, LayoutStrategy, OptimizeError, OptimizeReport, OptimizeRequest, SearchBudget, Session,
    StrategyContext, StrategyId, StrategyOutcome,
};
use mlo_service::{
    AdaptiveDispatch, DispatchRow, DispatchTable, MloService, ServiceConfig, ServiceError,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A strategy that parks its worker until the test releases it, making
/// queue occupancy deterministic.
#[derive(Debug, Default)]
struct Blocker {
    release: Arc<(Mutex<bool>, Condvar)>,
    started: Arc<(Mutex<usize>, Condvar)>,
}

impl Blocker {
    fn handle(&self) -> BlockerHandle {
        BlockerHandle {
            release: Arc::clone(&self.release),
            started: Arc::clone(&self.started),
        }
    }
}

#[derive(Debug, Clone)]
struct BlockerHandle {
    release: Arc<(Mutex<bool>, Condvar)>,
    started: Arc<(Mutex<usize>, Condvar)>,
}

impl BlockerHandle {
    /// Blocks until `count` blocker solves have started.
    fn wait_started(&self, count: usize) {
        let (lock, condvar) = &*self.started;
        let mut started = lock.lock().unwrap();
        while *started < count {
            started = condvar.wait(started).unwrap();
        }
    }

    fn release_all(&self) {
        let (lock, condvar) = &*self.release;
        *lock.lock().unwrap() = true;
        condvar.notify_all();
    }
}

impl LayoutStrategy for Blocker {
    fn name(&self) -> &str {
        "blocker"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        {
            let (lock, condvar) = &*self.started;
            *lock.lock().unwrap() += 1;
            condvar.notify_all();
        }
        let (lock, condvar) = &*self.release;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = condvar.wait(released).unwrap();
        }
        Ok(StrategyOutcome::Solved {
            assignment: ctx.heuristic(),
            stats: None,
            proven_satisfiable: false,
        })
    }
}

/// An engine whose pool has exactly one worker, with a blocker strategy
/// registered; parking the worker freezes the service queue.
fn single_worker_service(config: ServiceConfig) -> (MloService, BlockerHandle) {
    let blocker = Arc::new(Blocker::default());
    let handle = blocker.handle();
    let engine = Engine::builder()
        .parallelism(1)
        .strategy(blocker as Arc<dyn LayoutStrategy>)
        .build();
    (MloService::new(engine.session(), config), handle)
}

fn blocker_request(seed: u64) -> OptimizeRequest {
    OptimizeRequest::strategy(StrategyId::custom("blocker")).seed(seed)
}

#[test]
fn admission_sheds_when_the_intake_queue_is_full() {
    let (service, blocker) = single_worker_service(ServiceConfig::new().queue_limit(2));
    let program = Benchmark::MxM.program();

    // Occupy the single worker, then fill the remaining queue slot.
    let running = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);
    let queued = service.submit(&program, &blocker_request(2)).unwrap();
    assert_eq!(service.queue_depth(), 2);

    // A third distinct request must be shed, and shedding must not
    // disturb the queue.
    match service.submit(&program, &blocker_request(3)) {
        Err(ServiceError::QueueFull { depth: 2, limit: 2 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.stats().shed, 1);
    assert_eq!(service.queue_depth(), 2);

    blocker.release_all();
    assert!(running.wait().is_ok());
    assert!(queued.wait().is_ok());
    assert_eq!(service.queue_depth(), 0);
    let stats = service.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);

    // With the queue drained, admission opens again.
    let reopened = service.submit(&program, &blocker_request(4)).unwrap();
    blocker.wait_started(3);
    assert!(reopened.wait().is_ok());
}

#[test]
fn coalesced_duplicates_share_one_pointer_identical_result() {
    let (service, blocker) = single_worker_service(ServiceConfig::new());
    let program = Benchmark::MxM.program();

    // Park the worker so the real request stays queued (and thus
    // coalescable) while we submit duplicates.
    let parked = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);

    let request = OptimizeRequest::strategy("enhanced").seed(7);
    let first = service.submit(&program, &request).unwrap();
    let duplicate = service.submit(&program, &request).unwrap();
    let unrelated = service
        .submit(&program, &OptimizeRequest::strategy("enhanced").seed(8))
        .unwrap();

    assert!(!first.is_coalesced());
    assert!(duplicate.is_coalesced());
    assert!(!unrelated.is_coalesced());
    // The duplicate added no work: one queued solve serves both handles.
    assert_eq!(service.stats().coalesced, 1);
    assert_eq!(service.queue_depth(), 3);

    blocker.release_all();
    let first_result = first.wait();
    let duplicate_result = duplicate.wait();
    let unrelated_result = unrelated.wait();
    assert!(Arc::ptr_eq(&first_result, &duplicate_result));
    assert!(!Arc::ptr_eq(&first_result, &unrelated_result));
    assert!(first_result.is_ok());
    assert!(parked.wait().is_ok());
}

#[test]
fn cancelling_every_handle_drains_queued_requests() {
    let (service, blocker) = single_worker_service(ServiceConfig::new());
    let program = Benchmark::MxM.program();

    let parked = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);

    let request = OptimizeRequest::strategy("enhanced").seed(42);
    let doomed = service.submit(&program, &request).unwrap();
    let accomplice = doomed.clone();

    // One of two interested handles cancelling must NOT fire the token.
    accomplice.cancel();
    doomed.cancel();

    blocker.release_all();
    let result = doomed.wait();
    match result.as_ref() {
        Err(ServiceError::Cancelled) => {}
        other => panic!("expected a drained cancellation, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(service.queue_depth(), 0);
    assert!(parked.wait().is_ok());
}

#[test]
fn one_remaining_interested_handle_keeps_the_solve_alive() {
    let (service, blocker) = single_worker_service(ServiceConfig::new());
    let program = Benchmark::MxM.program();

    let parked = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);

    let request = OptimizeRequest::strategy("enhanced").seed(43);
    let keeper = service.submit(&program, &request).unwrap();
    let quitter = service.submit(&program, &request).unwrap();
    assert!(quitter.is_coalesced());
    quitter.cancel();

    blocker.release_all();
    let result = keeper.wait();
    assert!(result.is_ok(), "solve must survive a partial cancel");
    assert_eq!(service.stats().cancelled, 0);
    assert!(parked.wait().is_ok());
}

#[test]
fn tenant_budgets_bound_concurrency_per_tenant() {
    let (service, blocker) = single_worker_service(ServiceConfig::new().default_tenant_budget(1));
    let program = Benchmark::MxM.program();

    let parked = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);

    let acme_first = service
        .submit_for_tenant("acme", &program, &blocker_request(2))
        .unwrap();
    match service.submit_for_tenant("acme", &program, &blocker_request(3)) {
        Err(ServiceError::TenantBudgetExhausted {
            tenant,
            in_flight: 1,
            limit: 1,
        }) => assert_eq!(tenant, "acme"),
        other => panic!("expected TenantBudgetExhausted, got {other:?}"),
    }
    // Another tenant's budget is independent.
    let other_tenant = service
        .submit_for_tenant("zenith", &program, &blocker_request(4))
        .unwrap();
    assert_eq!(service.stats().rejected, 1);

    blocker.release_all();
    assert!(acme_first.wait().is_ok());
    assert!(other_tenant.wait().is_ok());
    assert!(parked.wait().is_ok());

    // Completion refunds the budget.
    let refunded = service
        .submit_for_tenant("acme", &program, &blocker_request(5))
        .unwrap();
    blocker.wait_started(4);
    assert!(refunded.wait().is_ok());
}

#[test]
fn streaming_submissions_feed_the_incumbent_watch() {
    let engine = Engine::builder().parallelism(1).build();
    let service = MloService::new(engine.session(), ServiceConfig::new());
    let program = Benchmark::Radar.program();
    let request = OptimizeRequest::strategy("weighted").seed(11);

    let handle = service.submit_streaming(&program, &request).unwrap();
    let result = handle.wait();
    let report = result.as_ref().as_ref().expect("weighted solve succeeds");
    assert!(!report.fell_back());

    // The branch-and-bound established at least one incumbent, and the
    // watch saw the final (best) weight.
    let (version, weight) = handle.watch().latest();
    assert!(version >= 1, "no incumbent update was streamed");
    assert!(weight.is_some());

    // A plain submission of the same request leaves its watch silent.
    let plain = service.submit(&program, &request).unwrap();
    let plain_result = plain.wait();
    assert!(plain_result.is_ok());
    assert_eq!(plain.watch().latest(), (0, None));
}

fn assert_reports_identical(direct: &OptimizeReport, served: &OptimizeReport, context: &str) {
    assert_eq!(
        direct.assignment, served.assignment,
        "{context}: assignment"
    );
    assert_eq!(
        direct.search_stats, served.search_stats,
        "{context}: search stats"
    );
    assert_eq!(
        direct.satisfiable, served.satisfiable,
        "{context}: satisfiability"
    );
    assert_eq!(direct.fallback, served.fallback, "{context}: fallback");
    assert_eq!(direct.strategy, served.strategy, "{context}: strategy");
}

#[test]
fn service_reports_are_bit_identical_to_direct_session_calls() {
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::builder().parallelism(workers).build();
        let direct_session: Session = engine.session();
        let service = MloService::new(engine.session(), ServiceConfig::new());
        for benchmark in [Benchmark::MxM, Benchmark::Radar] {
            let program = benchmark.program();
            for strategy in ["enhanced", "weighted", "portfolio-steal"] {
                let request = OptimizeRequest::strategy(strategy)
                    .seed(5)
                    .with_budget(SearchBudget::new().workers(workers));
                let direct = direct_session.optimize(&program, &request).unwrap();
                let handle = service.submit(&program, &request).unwrap();
                let served = handle.wait();
                let served = served.as_ref().as_ref().expect("service solve succeeds");
                assert_reports_identical(
                    &direct,
                    served,
                    &format!("{benchmark:?}/{strategy}@{workers}"),
                );
            }
        }
    }
}

#[test]
fn adaptive_dispatch_picks_are_deterministic_across_worker_counts() {
    let table = DispatchTable::from_rows(vec![
        DispatchRow {
            features: [4.0, 1.0, 4.0, 1.0],
            strategy: StrategyId::Enhanced,
            solution_ms: 0.1,
            solved: true,
        },
        DispatchRow {
            features: [12.0, 0.4, 6.0, 2.0],
            strategy: StrategyId::Weighted,
            solution_ms: 2.0,
            solved: true,
        },
        DispatchRow {
            features: [40.0, 0.1, 10.0, 4.0],
            strategy: StrategyId::PortfolioSteal,
            solution_ms: 9.0,
            solved: true,
        },
    ]);

    let mut baseline: Option<Vec<StrategyId>> = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::builder().parallelism(workers).build();
        let service = MloService::new(engine.session(), ServiceConfig::new())
            .with_dispatch(AdaptiveDispatch::new(table.clone()));
        let picks: Vec<StrategyId> = Benchmark::all()
            .iter()
            .map(|benchmark| {
                service
                    .pick_strategy(&benchmark.program(), &OptimizeRequest::default())
                    .expect("dispatcher attached")
            })
            .collect();
        match &baseline {
            None => baseline = Some(picks),
            Some(expected) => assert_eq!(expected, &picks, "picks diverged at {workers} workers"),
        }
    }
}

#[test]
fn completed_solves_record_dispatch_rows_and_adaptive_submission_serves() {
    let engine = Engine::builder().parallelism(2).build();
    let service = MloService::new(engine.session(), ServiceConfig::new()).with_dispatch(
        AdaptiveDispatch::new(DispatchTable::from_rows(vec![DispatchRow {
            features: [4.0, 1.0, 4.0, 1.0],
            strategy: StrategyId::Heuristic,
            solution_ms: 0.1,
            solved: true,
        }])),
    );
    let program = Benchmark::MxM.program();
    let request = OptimizeRequest::default();

    let picked = service.pick_strategy(&program, &request).unwrap();
    assert_eq!(picked, StrategyId::Heuristic);

    let handle = service.submit_adaptive(&program, &request).unwrap();
    let result = handle.wait();
    let report = result.as_ref().as_ref().expect("adaptive solve succeeds");
    assert_eq!(report.strategy, picked.as_str());

    // The completed solve recorded a (features, strategy, outcome) row
    // into the side buffer, and the buffer did not change live picks.
    let dispatch = service.dispatch().unwrap();
    assert_eq!(dispatch.recorded_rows(), 1);
    assert_eq!(service.pick_strategy(&program, &request).unwrap(), picked);
}

#[test]
fn absorb_every_folds_the_side_buffer_at_deterministic_completion_points() {
    // Sequential submissions give a deterministic completion order, so
    // with `absorb_every(2)` the reference table must grow exactly at the
    // 2nd and 4th completions and the side buffer must alternate 1/0.
    let engine = Engine::builder().parallelism(2).build();
    let service = MloService::new(engine.session(), ServiceConfig::new().absorb_every(2))
        .with_dispatch(AdaptiveDispatch::new(DispatchTable::new()));
    let program = Benchmark::MxM.program();
    let request = OptimizeRequest::strategy("enhanced");
    assert_eq!(service.dispatch().unwrap().table().len(), 0);

    for completed in 1..=5usize {
        let result = service.optimize(&program, &request);
        assert!(result.as_ref().as_ref().is_ok(), "solve {completed} failed");
        let dispatch = service.dispatch().unwrap();
        let (buffered, absorbed) = if completed % 2 == 0 {
            (0, completed)
        } else {
            (1, completed - 1)
        };
        assert_eq!(
            dispatch.recorded_rows(),
            buffered,
            "side buffer after completion {completed}"
        );
        assert_eq!(
            dispatch.table().len(),
            absorbed,
            "table rows after completion {completed}"
        );
    }
}

#[test]
fn the_committed_seed_table_parses_and_picks_for_the_whole_corpus() {
    let table = DispatchTable::seed();
    assert!(
        !table.is_empty(),
        "the committed seed table must carry replayed corpus rows"
    );
    let engine = Engine::new();
    let session = engine.session();
    let dispatch = AdaptiveDispatch::new(table);
    for benchmark in Benchmark::all() {
        let features =
            session.features(&benchmark.program(), &OptimizeRequest::default().candidates);
        // Every pick must be resolvable by the built-in registry.
        let pick = dispatch.pick(&features);
        assert!(
            StrategyId::BUILTIN.contains(&pick),
            "{benchmark:?} picked non-builtin {pick}"
        );
    }
}

#[test]
fn synchronous_optimize_and_queue_errors_round_trip_display() {
    let engine = Engine::builder().parallelism(1).build();
    let service = MloService::new(engine.session(), ServiceConfig::new());
    let program = Benchmark::MxM.program();
    let result = service.optimize(&program, &OptimizeRequest::strategy("enhanced"));
    assert!(result.is_ok());

    let unknown = service.optimize(&program, &OptimizeRequest::strategy("no-such-strategy"));
    match unknown.as_ref() {
        Err(ServiceError::Solve(OptimizeError::UnknownStrategy { name, .. })) => {
            assert_eq!(name, "no-such-strategy");
            assert!(
                format!("{}", unknown.as_ref().as_ref().unwrap_err()).contains("no-such-strategy")
            );
        }
        other => panic!("expected UnknownStrategy, got {other:?}"),
    }

    let shed = ServiceError::QueueFull { depth: 4, limit: 4 };
    assert!(format!("{shed}").contains("intake queue full"));
    assert!(format!(
        "{}",
        ServiceError::TenantBudgetExhausted {
            tenant: "acme".into(),
            in_flight: 2,
            limit: 2
        }
    )
    .contains("acme"));
}

#[test]
fn wait_timeout_and_try_result_observe_completion() {
    let (service, blocker) = single_worker_service(ServiceConfig::new());
    let program = Benchmark::MxM.program();

    let handle = service.submit(&program, &blocker_request(1)).unwrap();
    blocker.wait_started(1);
    assert!(handle.try_result().is_none());
    assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());

    blocker.release_all();
    let result = handle.wait_timeout(Duration::from_secs(30)).unwrap();
    assert!(result.is_ok());
    assert!(handle.try_result().is_some());
}
