//! Chaos suite: property tests over seeded [`FaultPlan`]s.
//!
//! Three properties hold under *any* plan the generator produces:
//!
//! 1. every submitted request terminates with `Ok` or a typed error —
//!    never a hung waiter,
//! 2. a fault-free replay of each successful answer is bit-identical to
//!    the answer produced under faults (injection may change *which*
//!    strategy serves, never *what* a strategy computes),
//! 3. coalesced waiters all observe the same outcome, panics included.
//!
//! CI also runs this binary with pinned `MLO_FAILPOINTS` plans; the one
//! unscoped test below exercises whatever ambient plan is armed, while
//! the scoped ones deliberately mask it (a scoped plan — even an empty
//! one — overrides the environment for its lifetime).

use mlo_benchmarks::Benchmark;
use mlo_core::{
    Engine, LayoutStrategy, OptimizeError, OptimizeRequest, StrategyContext, StrategyId,
    StrategyOutcome,
};
use mlo_csp::fault::{self, FaultPlan, FaultTrigger};
use mlo_service::{MloService, ServiceConfig, ServiceError};
use proptest::prelude::*;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const NO_HANG: Duration = Duration::from_secs(30);

fn service() -> MloService {
    MloService::new(Engine::new().session(), ServiceConfig::new())
}

/// One generated failpoint entry.  Panic actions are restricted to the
/// sites whose unwinds are provably contained (the service worker thread
/// or the pool's own catch); high-frequency solver sites get bounded
/// delays or ignored errors instead, so cases stay fast.
fn arb_entry() -> impl Strategy<Value = (String, FaultTrigger)> {
    let action = prop_oneof![
        (0usize..3).prop_map(|which| {
            let site = ["engine.solve", "pool.job", "service.publish"][which];
            (site.to_string(), FaultTrigger::panic())
        }),
        (0usize..2).prop_map(|which| {
            let site = ["service.dispatch", "ac3.revise"][which];
            (site.to_string(), FaultTrigger::error())
        }),
        (0usize..5, 1u64..3).prop_map(|(which, ms)| {
            let site = [
                "engine.solve",
                "pool.job",
                "service.publish",
                "service.dispatch",
                "ac3.revise",
            ][which];
            (site.to_string(), FaultTrigger::delay_ms(ms))
        }),
    ];
    (action, 0u64..3, 1u64..3)
        .prop_map(|((site, trigger), skip, times)| (site, trigger.skip(skip).times(times)))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(arb_entry(), 1..3).prop_map(|entries| {
        let mut plan = FaultPlan::new();
        for (site, trigger) in entries {
            plan = plan.with(site, trigger);
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seeded_fault_plans_terminate_and_replay_bit_identically(plan in arb_plan()) {
        let program = Benchmark::MxM.program();
        let mut successes = Vec::new();
        {
            let _armed = fault::scoped(plan);
            let service = service();
            for strategy in ["heuristic", "enhanced", "base"] {
                match service.submit(&program, &OptimizeRequest::strategy(strategy)) {
                    Ok(handle) => {
                        let result = handle
                            .wait_timeout(NO_HANG)
                            .expect("a faulted submission hung its waiter");
                        if let Ok(report) = result.as_ref() {
                            successes.push((report.strategy.clone(), report.assignment.clone()));
                        }
                        // Errors terminate the property too: any typed
                        // ServiceError is an acceptable faulted outcome.
                    }
                    Err(ServiceError::Injected { .. }) => {}
                    Err(other) => panic!("unexpected admission error: {other}"),
                }
            }
        }

        // Fault-free replay: each successful faulted answer must be
        // bit-identical to what the serving strategy computes cleanly.
        let _clean = fault::scoped(FaultPlan::new());
        let session = Engine::new().session();
        for (strategy, assignment) in successes {
            let report = session
                .optimize(&program, &OptimizeRequest::strategy(strategy.as_str()))
                .expect("fault-free replay failed");
            prop_assert_eq!(
                &report.assignment,
                &assignment,
                "faulted answer diverged from clean replay of `{}`",
                strategy
            );
        }
    }
}

/// A strategy that parks until released, then panics — a deterministic
/// mid-solve crash with waiters already coalesced onto the solve.
#[derive(Debug, Default)]
struct PanicOnRelease {
    started: Arc<(Mutex<bool>, Condvar)>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl LayoutStrategy for PanicOnRelease {
    fn name(&self) -> &str {
        "panic-on-release"
    }

    fn determine(&self, _ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        {
            let (lock, condvar) = &*self.started;
            *lock.lock().unwrap() = true;
            condvar.notify_all();
        }
        let (lock, condvar) = &*self.release;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = condvar.wait(released).unwrap();
        }
        panic!("released straight into a panic");
    }
}

#[test]
fn coalesced_waiters_agree_after_a_mid_solve_panic() {
    let _plan = fault::scoped(FaultPlan::new());
    let strategy = Arc::new(PanicOnRelease::default());
    let started = Arc::clone(&strategy.started);
    let release = Arc::clone(&strategy.release);
    let session = Engine::builder()
        .parallelism(1)
        .strategy(strategy as Arc<dyn LayoutStrategy>)
        .build()
        .session();
    let service = MloService::new(session, ServiceConfig::new());
    let program = Benchmark::MxM.program();
    let request = OptimizeRequest::strategy(StrategyId::custom("panic-on-release"));

    let first = service.submit(&program, &request).unwrap();
    {
        let (lock, condvar) = &*started;
        let mut begun = lock.lock().unwrap();
        while !*begun {
            begun = condvar.wait(begun).unwrap();
        }
    }
    let second = service.submit(&program, &request).unwrap();
    assert!(second.is_coalesced(), "mid-solve duplicate must coalesce");
    {
        let (lock, condvar) = &*release;
        *lock.lock().unwrap() = true;
        condvar.notify_all();
    }

    let one = first.wait_timeout(NO_HANG).expect("first waiter hung");
    let two = second.wait_timeout(NO_HANG).expect("coalesced waiter hung");
    assert!(
        Arc::ptr_eq(&one, &two),
        "coalesced waiters must observe the identical outcome"
    );
    // The panic was contained into the ladder: both waiters see either a
    // degraded fallback report or the typed panic, never a hang.
    match one.as_ref() {
        Ok(report) => assert!(report.degraded),
        Err(ServiceError::Solve(OptimizeError::StrategyPanicked { .. })) => {}
        other => panic!("unexpected coalesced outcome: {other:?}"),
    }
}

#[test]
fn transient_dispatch_faults_retry_to_a_clean_result() {
    // Two injected dispatch errors back off and retry; the third attempt
    // is clean, so the caller never notices.
    let _plan =
        fault::scoped(FaultPlan::new().with("service.dispatch", FaultTrigger::error().times(2)));
    let service = service();
    let program = Benchmark::MxM.program();
    let result = service
        .submit(&program, &OptimizeRequest::strategy("heuristic"))
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("waiter hung");
    let report = result.as_ref().as_ref().expect("retries should succeed");
    assert!(!report.degraded, "retries are not a ladder descent");

    // An unbounded plan exhausts the retry budget into a typed error.
    drop(_plan);
    let _plan = fault::scoped(FaultPlan::new().with("service.dispatch", FaultTrigger::error()));
    let result = service
        .submit(&program, &OptimizeRequest::strategy("heuristic"))
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("waiter hung");
    match result.as_ref() {
        Err(ServiceError::Solve(OptimizeError::Strategy { message, .. })) => {
            assert!(message.contains("dispatch failed"), "got: {message}");
        }
        other => panic!("expected exhausted-retry error, got {other:?}"),
    }
}

#[test]
fn injected_intake_faults_reject_with_a_typed_error() {
    let _plan =
        fault::scoped(FaultPlan::new().with("service.intake", FaultTrigger::error().times(1)));
    let service = service();
    let program = Benchmark::MxM.program();
    match service.submit(&program, &OptimizeRequest::strategy("heuristic")) {
        Err(ServiceError::Injected { site }) => assert_eq!(site, "service.intake"),
        other => panic!("expected injected intake rejection, got {other:?}"),
    }
    // The trigger is spent; the next submission sails through.
    let result = service
        .submit(&program, &OptimizeRequest::strategy("heuristic"))
        .unwrap()
        .wait_timeout(NO_HANG)
        .expect("waiter hung");
    assert!(result.as_ref().is_ok());
}

#[test]
fn every_submission_terminates_under_ambient_fault_plans() {
    // Deliberately unscoped: whatever MLO_FAILPOINTS plan the harness
    // exported stays armed (CI pins panic and error plans here).  The
    // only asserted property is full termination with typed outcomes.
    let service = service();
    let program = Benchmark::MxM.program();
    for _round in 0..2 {
        for strategy in ["heuristic", "enhanced", "base"] {
            // Any typed rejection terminates the request too.
            if let Ok(handle) = service.submit(&program, &OptimizeRequest::strategy(strategy)) {
                handle
                    .wait_timeout(NO_HANG)
                    .expect("an ambient-faulted submission hung its waiter");
            }
        }
    }
}
