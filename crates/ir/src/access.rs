//! Affine array accesses: `index = A · iteration + offset`.

use mlo_linalg::{IntMat, IntVec};
use std::fmt;

/// An affine array access.
///
/// The access maps an iteration vector `I` (one component per loop of the
/// enclosing nest, outermost first) to an array index vector
/// `A · I + offset` (one component per array dimension).
///
/// # Examples
///
/// The reference `Q1[i1+i2][i2]` of the paper's Figure 2:
///
/// ```
/// use mlo_ir::AffineAccess;
/// use mlo_linalg::{IntMat, IntVec};
///
/// let access = AffineAccess::new(
///     IntMat::from_array([[1, 1], [0, 1]]),
///     IntVec::from(vec![0, 0]),
/// );
/// assert_eq!(access.index_for(&IntVec::from(vec![2, 3])).as_slice(), &[5, 3]);
/// // Moving one step in the innermost loop moves by (1, 1) in the data space.
/// assert_eq!(access.innermost_direction().as_slice(), &[1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    matrix: IntMat,
    offset: IntVec,
}

impl AffineAccess {
    /// Creates an access from its matrix and offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset dimension does not match the matrix row count.
    pub fn new(matrix: IntMat, offset: IntVec) -> Self {
        assert_eq!(
            matrix.rows(),
            offset.dim(),
            "offset dimension must equal the number of array dimensions"
        );
        AffineAccess { matrix, offset }
    }

    /// Creates an identity access `X[i1]...[ik]` for a `depth`-deep nest.
    pub fn identity(depth: usize) -> Self {
        AffineAccess::new(IntMat::identity(depth), IntVec::zeros(depth))
    }

    /// The access matrix (rows = array dimensions, columns = loop depth).
    pub fn matrix(&self) -> &IntMat {
        &self.matrix
    }

    /// The constant offset vector.
    pub fn offset(&self) -> &IntVec {
        &self.offset
    }

    /// Number of array dimensions this access produces.
    pub fn array_rank(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of loop-index columns this access consumes.
    pub fn nest_depth(&self) -> usize {
        self.matrix.cols()
    }

    /// Evaluates the access for a concrete iteration vector.
    ///
    /// # Panics
    ///
    /// Panics when the iteration vector's dimension differs from the nest
    /// depth.
    pub fn index_for(&self, iteration: &IntVec) -> IntVec {
        self.matrix
            .mul_vec(iteration)
            .expect("iteration vector dimension mismatch")
            .checked_add(&self.offset)
            .expect("offset dimension mismatch")
    }

    /// The direction the accessed element moves in the data space when the
    /// loop at `level` advances by one iteration: column `level` of the
    /// access matrix.
    ///
    /// # Panics
    ///
    /// Panics when `level >= nest_depth()`.
    pub fn direction_for_level(&self, level: usize) -> IntVec {
        self.matrix.col(level)
    }

    /// The data-space movement per step of the innermost loop — the
    /// direction whose spatial locality the layout must capture (paper,
    /// Section 2).
    ///
    /// # Panics
    ///
    /// Panics for a zero-depth access.
    pub fn innermost_direction(&self) -> IntVec {
        assert!(self.nest_depth() > 0, "access has no loop dimensions");
        self.direction_for_level(self.nest_depth() - 1)
    }

    /// Returns the access obtained after transforming the iteration space
    /// with the unimodular matrix `t_inverse` (the *inverse* of the
    /// transformation `T` that maps old iterations to new ones):
    /// if `I' = T · I` then the new access matrix is `A · T⁻¹`.
    pub fn transformed(&self, t_inverse: &IntMat) -> crate::Result<AffineAccess> {
        let m = self.matrix.mul_mat(t_inverse).map_err(|_| {
            crate::IrError::InvalidTransform(format!(
                "access with {} columns cannot be composed with a {}x{} inverse transform",
                self.matrix.cols(),
                t_inverse.rows(),
                t_inverse.cols()
            ))
        })?;
        Ok(AffineAccess::new(m, self.offset.clone()))
    }

    /// Whether two accesses differ only in their constant offset (a
    /// *uniformly generated* pair, which is the case the dependence tester
    /// resolves exactly).
    pub fn is_uniform_with(&self, other: &AffineAccess) -> bool {
        self.matrix == other.matrix
    }
}

impl fmt::Display for AffineAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A=")?;
        for r in 0..self.matrix.rows() {
            write!(f, "{}", self.matrix.row(r))?;
        }
        write!(f, " + {}", self.offset)
    }
}

/// A small builder for access matrices, readable at call sites.
///
/// # Examples
///
/// ```
/// use mlo_ir::AccessBuilder;
/// // Q2[i1+i2][i1] in a 2-deep nest.
/// let access = AccessBuilder::new(2, 2)
///     .row(0, [1, 1])
///     .row(1, [1, 0])
///     .build();
/// assert_eq!(access.array_rank(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AccessBuilder {
    matrix: IntMat,
    offset: IntVec,
}

impl AccessBuilder {
    /// Starts building an access for an `array_rank`-dimensional array in a
    /// `nest_depth`-deep nest; all coefficients start at zero.
    pub fn new(array_rank: usize, nest_depth: usize) -> Self {
        AccessBuilder {
            matrix: IntMat::zeros(array_rank, nest_depth),
            offset: IntVec::zeros(array_rank),
        }
    }

    /// Sets an entire row of the access matrix (the subscript expression of
    /// one array dimension).
    ///
    /// # Panics
    ///
    /// Panics if the row index or coefficient count is out of range.
    pub fn row<const N: usize>(mut self, dim: usize, coefficients: [i64; N]) -> Self {
        assert_eq!(
            N,
            self.matrix.cols(),
            "coefficient count must equal nest depth"
        );
        for (c, &v) in coefficients.iter().enumerate() {
            self.matrix.set(dim, c, v);
        }
        self
    }

    /// Sets a single coefficient: array dimension `dim` gains `coefficient ×`
    /// loop index `level`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn coeff(mut self, dim: usize, level: usize, coefficient: i64) -> Self {
        self.matrix.set(dim, level, coefficient);
        self
    }

    /// Sets the constant offset of array dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn offset(mut self, dim: usize, value: i64) -> Self {
        self.offset[dim] = value;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AffineAccess {
        AffineAccess::new(self.matrix, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_access() {
        let a = AffineAccess::identity(3);
        assert_eq!(a.array_rank(), 3);
        assert_eq!(a.nest_depth(), 3);
        let i = IntVec::from(vec![4, 5, 6]);
        assert_eq!(a.index_for(&i), i);
        assert_eq!(a.innermost_direction(), IntVec::unit(3, 2));
    }

    #[test]
    fn figure2_accesses() {
        // Q1[i1+i2][i2]
        let q1 = AccessBuilder::new(2, 2)
            .row(0, [1, 1])
            .row(1, [0, 1])
            .build();
        assert_eq!(q1.innermost_direction().as_slice(), &[1, 1]);
        // Q2[i1+i2][i1]
        let q2 = AccessBuilder::new(2, 2)
            .row(0, [1, 1])
            .row(1, [1, 0])
            .build();
        assert_eq!(q2.innermost_direction().as_slice(), &[1, 0]);
        // Outer-loop directions (used when considering loop interchange).
        assert_eq!(q1.direction_for_level(0).as_slice(), &[1, 0]);
        assert_eq!(q2.direction_for_level(0).as_slice(), &[1, 1]);
    }

    #[test]
    fn offsets_and_uniformity() {
        let a = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .offset(0, 1)
            .build();
        let b = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .build();
        assert!(a.is_uniform_with(&b));
        assert_eq!(a.index_for(&IntVec::from(vec![2, 3])).as_slice(), &[3, 3]);
        let c = AccessBuilder::new(2, 2)
            .row(0, [0, 1])
            .row(1, [1, 0])
            .build();
        assert!(!a.is_uniform_with(&c));
    }

    #[test]
    fn transformation_by_interchange() {
        // Interchanging the two loops of Figure 2: T = [[0,1],[1,0]],
        // T^{-1} = T.  Q1's new innermost direction becomes its old outer
        // direction.
        let q1 = AccessBuilder::new(2, 2)
            .row(0, [1, 1])
            .row(1, [0, 1])
            .build();
        let t_inv = IntMat::from_array([[0, 1], [1, 0]]);
        let q1t = q1.transformed(&t_inv).unwrap();
        assert_eq!(q1t.innermost_direction().as_slice(), &[1, 0]);
        // A mismatched transform is rejected.
        assert!(q1.transformed(&IntMat::identity(3)).is_err());
    }

    #[test]
    fn display_contains_matrix_and_offset() {
        let a = AccessBuilder::new(1, 2)
            .row(0, [1, -1])
            .offset(0, 3)
            .build();
        let s = a.to_string();
        assert!(s.contains("(1 -1)"));
        assert!(s.contains("(3)"));
    }

    #[test]
    #[should_panic(expected = "offset dimension")]
    fn mismatched_offset_rejected() {
        let _ = AffineAccess::new(IntMat::identity(2), IntVec::zeros(3));
    }
}
