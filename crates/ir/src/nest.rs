//! Loop nests: rectangular loop bounds plus the references in the body.

use crate::access::AffineAccess;
use crate::ids::{ArrayId, NestId, RefId};
use crate::reference::{AccessKind, ArrayRef};
use std::fmt;

/// One loop of a nest with constant (rectangular) bounds `lower..upper`.
///
/// The paper's benchmarks are dense rectangular array kernels; constant
/// bounds are sufficient to express them and keep the iteration-count and
/// trace generation exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loop {
    name: String,
    lower: i64,
    upper: i64,
}

impl Loop {
    /// Creates a loop `for name in lower..upper` (upper exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `upper < lower`.
    pub fn new(name: impl Into<String>, lower: i64, upper: i64) -> Self {
        assert!(upper >= lower, "loop upper bound below lower bound");
        Loop {
            name: name.into(),
            lower,
            upper,
        }
    }

    /// The loop variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inclusive lower bound.
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Exclusive upper bound.
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Number of iterations.
    pub fn trip_count(&self) -> i64 {
        self.upper - self.lower
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for {} in {}..{}", self.name, self.lower, self.upper)
    }
}

/// A perfectly nested affine loop nest.
///
/// # Examples
///
/// ```
/// use mlo_ir::{AccessBuilder, AccessKind, ArrayId, Loop, LoopNest, NestId};
/// let mut nest = LoopNest::new(NestId::new(0), "figure2", vec![
///     Loop::new("i1", 0, 16),
///     Loop::new("i2", 0, 16),
/// ]);
/// nest.add_reference(
///     ArrayId::new(0),
///     AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [0, 1]).build(),
///     AccessKind::Read,
/// );
/// assert_eq!(nest.depth(), 2);
/// assert_eq!(nest.iteration_count(), 256);
/// assert_eq!(nest.references().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopNest {
    id: NestId,
    name: String,
    loops: Vec<Loop>,
    references: Vec<ArrayRef>,
    /// Non-memory work per iteration, in "instructions"; used by the timing
    /// model and by the nest-importance cost model.
    compute_per_iteration: u32,
}

impl LoopNest {
    /// Creates an empty nest with the given loops (outermost first).
    pub fn new(id: NestId, name: impl Into<String>, loops: Vec<Loop>) -> Self {
        LoopNest {
            id,
            name: name.into(),
            loops,
            references: Vec::new(),
            compute_per_iteration: 4,
        }
    }

    /// The nest's identifier.
    pub fn id(&self) -> NestId {
        self.id
    }

    /// The nest's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Total number of iterations of the whole nest.
    pub fn iteration_count(&self) -> i64 {
        self.loops.iter().map(Loop::trip_count).product()
    }

    /// The references in the body.
    pub fn references(&self) -> &[ArrayRef] {
        &self.references
    }

    /// Sets the amount of non-memory work per iteration (default 4
    /// instructions).
    pub fn set_compute_per_iteration(&mut self, instructions: u32) {
        self.compute_per_iteration = instructions;
    }

    /// Non-memory work per iteration in instructions.
    pub fn compute_per_iteration(&self) -> u32 {
        self.compute_per_iteration
    }

    /// Adds a reference to the body and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the access's loop-depth does not match the nest depth.
    pub fn add_reference(
        &mut self,
        array: ArrayId,
        access: AffineAccess,
        kind: AccessKind,
    ) -> RefId {
        assert_eq!(
            access.nest_depth(),
            self.depth(),
            "access depth must match nest depth"
        );
        let id = RefId::new(self.references.len());
        self.references.push(ArrayRef::new(id, array, access, kind));
        id
    }

    /// The distinct arrays referenced by this nest, in first-appearance
    /// order.
    pub fn referenced_arrays(&self) -> Vec<ArrayId> {
        let mut seen = Vec::new();
        for r in &self.references {
            if !seen.contains(&r.array()) {
                seen.push(r.array());
            }
        }
        seen
    }

    /// All references to a particular array.
    pub fn references_to(&self, array: ArrayId) -> Vec<&ArrayRef> {
        self.references
            .iter()
            .filter(|r| r.array() == array)
            .collect()
    }

    /// Returns the trip count of the innermost loop (1 for an empty nest).
    pub fn innermost_trip_count(&self) -> i64 {
        self.loops.last().map(Loop::trip_count).unwrap_or(1)
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nest {} ({}):", self.id, self.name)?;
        for (i, l) in self.loops.iter().enumerate() {
            writeln!(f, "{}{}", "  ".repeat(i + 1), l)?;
        }
        for r in &self.references {
            writeln!(f, "{}{}", "  ".repeat(self.loops.len() + 1), r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;

    fn sample_nest() -> LoopNest {
        let mut nest = LoopNest::new(
            NestId::new(1),
            "sample",
            vec![Loop::new("i", 0, 10), Loop::new("j", 2, 6)],
        );
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
            AccessKind::Read,
        );
        nest.add_reference(
            ArrayId::new(1),
            AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
            AccessKind::Write,
        );
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .offset(1, 1)
                .build(),
            AccessKind::Write,
        );
        nest
    }

    #[test]
    fn loop_basics() {
        let l = Loop::new("i", 3, 10);
        assert_eq!(l.name(), "i");
        assert_eq!(l.trip_count(), 7);
        assert_eq!(l.to_string(), "for i in 3..10");
    }

    #[test]
    #[should_panic(expected = "upper bound below lower")]
    fn invalid_loop_bounds_panic() {
        let _ = Loop::new("i", 5, 4);
    }

    #[test]
    fn nest_accessors() {
        let nest = sample_nest();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.iteration_count(), 40);
        assert_eq!(nest.innermost_trip_count(), 4);
        assert_eq!(nest.references().len(), 3);
        assert_eq!(
            nest.referenced_arrays(),
            vec![ArrayId::new(0), ArrayId::new(1)]
        );
        assert_eq!(nest.references_to(ArrayId::new(0)).len(), 2);
        assert_eq!(nest.compute_per_iteration(), 4);
        assert!(nest.to_string().contains("for i in 0..10"));
    }

    #[test]
    fn reference_ids_are_dense() {
        let nest = sample_nest();
        for (i, r) in nest.references().iter().enumerate() {
            assert_eq!(r.id().index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "access depth")]
    fn mismatched_access_depth_panics() {
        let mut nest = LoopNest::new(NestId::new(0), "bad", vec![Loop::new("i", 0, 4)]);
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(1, 2).row(0, [1, 0]).build(),
            AccessKind::Read,
        );
    }
}
