//! Typed identifiers for IR entities.
//!
//! Newtypes keep array, nest and reference indices from being mixed up
//! (C-NEWTYPE): a constraint-network variable index is an [`ArrayId`], never
//! a bare `usize`.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies an array declared in a [`crate::Program`].
    ///
    /// Array ids are dense indices assigned in declaration order, so they can
    /// be used directly as constraint-network variable indices.
    ArrayId,
    "Q"
);

define_id!(
    /// Identifies a loop nest within a [`crate::Program`].
    NestId,
    "N"
);

define_id!(
    /// Identifies an array reference within a loop nest.
    RefId,
    "R"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let a = ArrayId::new(3);
        assert_eq!(a.index(), 3);
        assert_eq!(a.to_string(), "Q3");
        assert_eq!(usize::from(a), 3);
        assert_eq!(ArrayId::from(3), a);

        let n = NestId::new(1);
        assert_eq!(n.to_string(), "N1");
        let r = RefId::new(0);
        assert_eq!(r.to_string(), "R0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ArrayId::new(1) < ArrayId::new(2));
        assert_eq!(NestId::default().index(), 0);
    }
}
