//! Affine loop-nest and array-reference intermediate representation.
//!
//! The DATE'05 constraint-network layout optimizer does not need a full
//! compiler IR; it needs exactly the information that determines spatial
//! locality and the legality of loop restructuring:
//!
//! * which **arrays** a program declares ([`ArrayDecl`]: dimensionality,
//!   extents, element size),
//! * the **affine accesses** each loop nest makes to those arrays
//!   ([`AffineAccess`]: `index = A · iteration + offset`),
//! * the **loop nests** themselves ([`LoopNest`]: rectangular bounds, the
//!   references in the body, an instruction-cost estimate),
//! * **data dependences** between references to decide which loop
//!   transformations are legal ([`dependence`]),
//! * candidate **loop transformations** (unimodular matrices, in particular
//!   permutations) and their effect on accesses ([`transform`]),
//! * a **cost model** ranking nests by importance ([`cost`]), which the
//!   heuristic baseline of the paper uses to order its layout propagation,
//! * an **iteration-space walker** used by the cache simulator to generate
//!   address traces ([`iteration`]).
//!
//! # Example
//!
//! The paper's Figure 2 nest:
//!
//! ```text
//! for (i1 = 0; i1 < N; i1++)
//!   for (i2 = 0; i2 < N; i2++)
//!     ... Q1[i1+i2][i2] ... Q2[i1+i2][i1] ...
//! ```
//!
//! ```
//! use mlo_ir::{ProgramBuilder, AccessBuilder};
//!
//! let n = 64;
//! let mut b = ProgramBuilder::new("figure2");
//! let q1 = b.array("Q1", vec![2 * n, n], 4);
//! let q2 = b.array("Q2", vec![2 * n, n], 4);
//! b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
//!     nest.read(q1, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [0, 1]).build());
//!     nest.read(q2, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [1, 0]).build());
//! });
//! let program = b.build();
//! assert_eq!(program.arrays().len(), 2);
//! assert_eq!(program.nests().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod array;
pub mod builder;
pub mod cost;
pub mod dependence;
pub mod ids;
pub mod iteration;
pub mod nest;
pub mod program;
pub mod reference;
pub mod transform;

pub use access::{AccessBuilder, AffineAccess};
pub use array::ArrayDecl;
pub use builder::{NestBuilder, ProgramBuilder};
pub use cost::{nest_cost, rank_nests_by_cost};
pub use dependence::{DependenceAnalysis, DependenceKind, DistanceVector};
pub use ids::{ArrayId, NestId, RefId};
pub use iteration::IterationSpace;
pub use nest::{Loop, LoopNest};
pub use program::Program;
pub use reference::{AccessKind, ArrayRef};
pub use transform::{all_permutations, legal_permutations, LoopTransform, TransformKind};

/// Errors produced while constructing or transforming IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An access matrix's column count does not match the nest depth.
    AccessDepthMismatch {
        /// Loop-nest depth.
        nest_depth: usize,
        /// Number of columns of the offending access matrix.
        access_cols: usize,
    },
    /// An access matrix's row count does not match the array rank.
    AccessRankMismatch {
        /// Array rank (number of dimensions).
        array_rank: usize,
        /// Number of rows of the offending access matrix.
        access_rows: usize,
    },
    /// An array id refers to no declared array.
    UnknownArray(ArrayId),
    /// A nest id refers to no nest in the program.
    UnknownNest(NestId),
    /// A transformation matrix is not unimodular or has the wrong shape.
    InvalidTransform(String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::AccessDepthMismatch {
                nest_depth,
                access_cols,
            } => write!(
                f,
                "access matrix has {access_cols} columns but the nest depth is {nest_depth}"
            ),
            IrError::AccessRankMismatch {
                array_rank,
                access_rows,
            } => write!(
                f,
                "access matrix has {access_rows} rows but the array rank is {array_rank}"
            ),
            IrError::UnknownArray(id) => write!(f, "unknown array id {id:?}"),
            IrError::UnknownNest(id) => write!(f, "unknown nest id {id:?}"),
            IrError::InvalidTransform(msg) => write!(f, "invalid loop transform: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience result alias for IR operations.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = IrError::AccessDepthMismatch {
            nest_depth: 2,
            access_cols: 3,
        };
        assert!(e.to_string().contains("3 columns"));
        let e = IrError::UnknownArray(ArrayId::new(7));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
