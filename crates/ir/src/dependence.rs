//! Data-dependence analysis for legality of loop restructuring.
//!
//! The constraint network pairs each candidate layout combination with a
//! loop restructuring of the nest (paper, Section 3: "Each pair represents
//! the best layout choice under a given loop restructuring").  A
//! restructuring may only be offered if it is *legal*, i.e. it preserves
//! every data dependence.  For the affine, uniformly generated references of
//! the benchmark kernels, dependences are captured exactly by constant
//! distance vectors; for non-uniform pairs we fall back to a conservative
//! GCD + direction test.

use crate::nest::LoopNest;
use crate::reference::ArrayRef;
use mlo_linalg::{gcd_slice, IntVec};
use std::fmt;

/// The classification of a dependence between two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence).
    Anti,
    /// Write then write (output dependence).
    Output,
    /// Read then read — not a real dependence, but useful for reuse analysis.
    Input,
}

impl fmt::Display for DependenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependenceKind::Flow => write!(f, "flow"),
            DependenceKind::Anti => write!(f, "anti"),
            DependenceKind::Output => write!(f, "output"),
            DependenceKind::Input => write!(f, "input"),
        }
    }
}

/// A dependence between two references of a nest, summarized as an iteration
/// distance vector when one exists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DistanceVector {
    /// Dependence classification.
    pub kind: DependenceKind,
    /// Constant iteration-space distance (outermost first).  `None` when the
    /// dependence could not be summarized as a constant distance and must be
    /// treated conservatively (any direction).
    pub distance: Option<IntVec>,
}

impl DistanceVector {
    /// Whether the distance is the all-zero vector (an intra-iteration
    /// dependence, which never restricts reordering of the loops).
    pub fn is_loop_independent(&self) -> bool {
        self.distance.as_ref().map(IntVec::is_zero).unwrap_or(false)
    }
}

impl fmt::Display for DistanceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.distance {
            Some(d) => write!(f, "{} {}", self.kind, d),
            None => write!(f, "{} (*)", self.kind),
        }
    }
}

/// Dependence analysis results for one loop nest.
#[derive(Debug, Clone, Default)]
pub struct DependenceAnalysis {
    dependences: Vec<DistanceVector>,
}

impl DependenceAnalysis {
    /// Analyzes all pairs of references in a nest that touch the same array
    /// and where at least one is a write.
    pub fn of_nest(nest: &LoopNest) -> Self {
        let mut dependences = Vec::new();
        let refs = nest.references();
        for i in 0..refs.len() {
            for j in 0..refs.len() {
                if i == j {
                    continue;
                }
                let (src, dst) = (&refs[i], &refs[j]);
                if src.array() != dst.array() {
                    continue;
                }
                let kind = match (src.is_write(), dst.is_write()) {
                    (true, false) => DependenceKind::Flow,
                    (false, true) => DependenceKind::Anti,
                    (true, true) => DependenceKind::Output,
                    (false, false) => continue,
                };
                if let Some(dep) = analyze_pair(nest, src, dst, kind) {
                    if !dependences.contains(&dep) {
                        dependences.push(dep);
                    }
                }
            }
        }
        Self { dependences }
    }

    /// The dependences found (loop-independent ones included).
    pub fn dependences(&self) -> &[DistanceVector] {
        &self.dependences
    }

    /// Whether the nest carries no dependence at all (fully permutable).
    pub fn is_dependence_free(&self) -> bool {
        self.dependences.is_empty()
    }

    /// Checks whether a loop transformation given by the unimodular matrix
    /// `t` (mapping old iteration vectors to new ones) preserves every
    /// dependence: each transformed distance vector must remain
    /// lexicographically non-negative.
    ///
    /// Dependences without a constant distance are treated conservatively:
    /// any transformation other than the identity is rejected.
    pub fn is_legal(&self, t: &mlo_linalg::IntMat) -> bool {
        for dep in &self.dependences {
            match &dep.distance {
                Some(d) if d.is_zero() => continue,
                Some(d) => {
                    let transformed = match t.mul_vec(d) {
                        Ok(v) => v,
                        Err(_) => return false,
                    };
                    if !lexicographically_non_negative(&transformed) {
                        return false;
                    }
                }
                None => {
                    if !t.is_identity() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Whether a vector is lexicographically non-negative (first non-zero
/// component positive, or all zero).
pub fn lexicographically_non_negative(v: &IntVec) -> bool {
    for &x in v.iter() {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    true
}

fn analyze_pair(
    nest: &LoopNest,
    src: &ArrayRef,
    dst: &ArrayRef,
    kind: DependenceKind,
) -> Option<DistanceVector> {
    let a_src = src.access();
    let a_dst = dst.access();
    if a_src.is_uniform_with(a_dst) {
        // Uniformly generated pair: the same element is touched when
        // A·i_src + o_src = A·i_dst + o_dst, i.e. the iteration distance
        // d = i_dst - i_src satisfies A·d = o_src - o_dst.  We solve exactly
        // and keep the solution when it is integral; a lexicographically
        // negative distance means the dependence actually flows in the other
        // direction and is recorded when the swapped pair is analyzed.
        let delta = a_src
            .offset()
            .checked_sub(a_dst.offset())
            .expect("offsets of references to one array have equal rank");
        if delta.is_zero() {
            return Some(DistanceVector {
                kind,
                distance: Some(IntVec::zeros(nest.depth())),
            });
        }
        match mlo_linalg::solve(a_src.matrix(), &delta) {
            Ok(solution) => {
                if solution.iter().all(|r| r.is_integer()) {
                    let d: IntVec = solution
                        .iter()
                        .map(|r| r.to_integer().expect("checked integral"))
                        .collect();
                    // A lexicographically negative distance belongs to the
                    // reversed pair; a distance larger than a trip count can
                    // never be realized.
                    let realizable = lexicographically_non_negative(&d)
                        && d.iter()
                            .zip(nest.loops().iter())
                            .all(|(&di, l)| di.abs() < l.trip_count().max(1));
                    if realizable {
                        Some(DistanceVector {
                            kind,
                            distance: Some(d),
                        })
                    } else {
                        None
                    }
                } else {
                    // Non-integral solution: no dependence.
                    None
                }
            }
            Err(mlo_linalg::LinalgError::Inconsistent) => None,
            Err(_) => Some(DistanceVector {
                kind,
                distance: None,
            }),
        }
    } else {
        // Non-uniform pair: run a per-dimension GCD feasibility test; if any
        // dimension proves independence, there is no dependence, otherwise
        // report an unknown-direction dependence.
        let rank = a_src.array_rank();
        for dim in 0..rank {
            let mut coeffs: Vec<i64> = a_src.matrix().row(dim).into_inner();
            coeffs.extend(a_dst.matrix().row(dim).iter().map(|&c| -c));
            let rhs = a_dst.offset()[dim] - a_src.offset()[dim];
            let g = gcd_slice(&coeffs);
            if g != 0 && rhs % g != 0 {
                return None;
            }
            if g == 0 && rhs != 0 {
                return None;
            }
        }
        Some(DistanceVector {
            kind,
            distance: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;
    use crate::ids::{ArrayId, NestId};
    use crate::nest::Loop;
    use crate::reference::AccessKind;
    use mlo_linalg::IntMat;

    fn nest_with(refs: Vec<(ArrayId, crate::AffineAccess, AccessKind)>) -> LoopNest {
        let mut nest = LoopNest::new(
            NestId::new(0),
            "t",
            vec![Loop::new("i", 0, 16), Loop::new("j", 0, 16)],
        );
        for (a, acc, k) in refs {
            nest.add_reference(a, acc, k);
        }
        nest
    }

    fn ident2() -> crate::AffineAccess {
        AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .build()
    }

    #[test]
    fn no_dependence_between_different_arrays() {
        let nest = nest_with(vec![
            (ArrayId::new(0), ident2(), AccessKind::Write),
            (ArrayId::new(1), ident2(), AccessKind::Read),
        ]);
        let dep = DependenceAnalysis::of_nest(&nest);
        assert!(dep.is_dependence_free());
        // Any permutation is legal.
        assert!(dep.is_legal(&IntMat::from_array([[0, 1], [1, 0]])));
    }

    #[test]
    fn read_read_pairs_are_not_dependences() {
        let nest = nest_with(vec![
            (ArrayId::new(0), ident2(), AccessKind::Read),
            (ArrayId::new(0), ident2(), AccessKind::Read),
        ]);
        assert!(DependenceAnalysis::of_nest(&nest).is_dependence_free());
    }

    #[test]
    fn uniform_dependence_distance() {
        // A[i][j] = ... A[i-1][j] ...  -> flow dependence with distance (1, 0).
        let write = ident2();
        let read = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .offset(0, -1)
            .build();
        let nest = nest_with(vec![
            (ArrayId::new(0), write, AccessKind::Write),
            (ArrayId::new(0), read, AccessKind::Read),
        ]);
        let dep = DependenceAnalysis::of_nest(&nest);
        assert!(!dep.is_dependence_free());
        let distances: Vec<_> = dep
            .dependences()
            .iter()
            .filter_map(|d| d.distance.clone())
            .collect();
        assert!(distances.contains(&IntVec::from(vec![1, 0])));
        // Loop interchange maps (1,0) -> (0,1): still lexicographically
        // positive, so it is legal.
        assert!(dep.is_legal(&IntMat::from_array([[0, 1], [1, 0]])));
        // Loop reversal of the outer loop maps (1,0) -> (-1,0): illegal.
        assert!(!dep.is_legal(&IntMat::from_array([[-1, 0], [0, 1]])));
    }

    #[test]
    fn interchange_illegal_for_anti_diagonal_dependence() {
        // A[i][j] written, A[i-1][j+1] read: distance (1, -1).  Interchange
        // maps it to (-1, 1) which is lexicographically negative -> illegal.
        let write = ident2();
        let read = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .offset(0, -1)
            .offset(1, 1)
            .build();
        let nest = nest_with(vec![
            (ArrayId::new(0), write, AccessKind::Write),
            (ArrayId::new(0), read, AccessKind::Read),
        ]);
        let dep = DependenceAnalysis::of_nest(&nest);
        assert!(dep.is_legal(&IntMat::identity(2)));
        assert!(!dep.is_legal(&IntMat::from_array([[0, 1], [1, 0]])));
    }

    #[test]
    fn intra_iteration_dependence_never_blocks() {
        // C[i][j] read and written in the same iteration: distance (0, 0).
        let nest = nest_with(vec![
            (ArrayId::new(0), ident2(), AccessKind::Write),
            (ArrayId::new(0), ident2(), AccessKind::Read),
        ]);
        let dep = DependenceAnalysis::of_nest(&nest);
        assert!(!dep.is_dependence_free());
        assert!(dep.dependences().iter().all(|d| d.is_loop_independent()));
        assert!(dep.is_legal(&IntMat::from_array([[0, 1], [1, 0]])));
    }

    #[test]
    fn gcd_test_proves_independence() {
        // A[2i][j] written, A[2i'+1][j'] read: first dimension 2i = 2i'+1 has
        // no integer solution, so there is no dependence even though the
        // accesses are not uniform.
        let write = AccessBuilder::new(2, 2)
            .row(0, [2, 0])
            .row(1, [0, 1])
            .build();
        let read = AccessBuilder::new(2, 2)
            .row(0, [2, 0])
            .row(1, [0, 1])
            .offset(0, 1)
            .build();
        // Make them non-uniform by also flipping the second dimension of the
        // read access (so is_uniform_with is false).
        let read_nonuniform = AccessBuilder::new(2, 2)
            .row(0, [2, 0])
            .row(1, [1, 1])
            .offset(0, 1)
            .build();
        let nest_uniform = nest_with(vec![
            (ArrayId::new(0), write.clone(), AccessKind::Write),
            (ArrayId::new(0), read, AccessKind::Read),
        ]);
        assert!(DependenceAnalysis::of_nest(&nest_uniform).is_dependence_free());
        let nest_nonuniform = nest_with(vec![
            (ArrayId::new(0), write, AccessKind::Write),
            (ArrayId::new(0), read_nonuniform, AccessKind::Read),
        ]);
        assert!(DependenceAnalysis::of_nest(&nest_nonuniform).is_dependence_free());
    }

    #[test]
    fn unknown_distance_blocks_everything_but_identity() {
        // A[i][j] written, A[j][i] read: not uniform, GCD test cannot prove
        // independence, so a conservative unknown dependence is recorded.
        let write = ident2();
        let read = AccessBuilder::new(2, 2)
            .row(0, [0, 1])
            .row(1, [1, 0])
            .build();
        let nest = nest_with(vec![
            (ArrayId::new(0), write, AccessKind::Write),
            (ArrayId::new(0), read, AccessKind::Read),
        ]);
        let dep = DependenceAnalysis::of_nest(&nest);
        assert!(!dep.is_dependence_free());
        assert!(dep.is_legal(&IntMat::identity(2)));
        assert!(!dep.is_legal(&IntMat::from_array([[0, 1], [1, 0]])));
    }

    #[test]
    fn lexicographic_helper() {
        assert!(lexicographically_non_negative(&IntVec::from(vec![0, 0])));
        assert!(lexicographically_non_negative(&IntVec::from(vec![1, -5])));
        assert!(!lexicographically_non_negative(&IntVec::from(vec![-1, 5])));
        assert!(lexicographically_non_negative(&IntVec::from(vec![0, 2])));
        assert!(!lexicographically_non_negative(&IntVec::from(vec![0, -2])));
    }

    #[test]
    fn display_forms() {
        let d = DistanceVector {
            kind: DependenceKind::Flow,
            distance: Some(IntVec::from(vec![1, 0])),
        };
        assert_eq!(d.to_string(), "flow (1 0)");
        let d = DistanceVector {
            kind: DependenceKind::Anti,
            distance: None,
        };
        assert_eq!(d.to_string(), "anti (*)");
        assert_eq!(DependenceKind::Output.to_string(), "output");
        assert_eq!(DependenceKind::Input.to_string(), "input");
    }
}
