//! A simple nest-importance cost model.
//!
//! The heuristic baseline summarized in the paper's Section 5 "orders the
//! loop nests in the program according to an importance criterion (e.g.,
//! time taken by each nest)" and then propagates layouts from the most
//! important nest outwards.  We estimate a nest's importance as the total
//! amount of work it performs: iterations × (memory references + compute
//! instructions per iteration).

use crate::nest::LoopNest;
use crate::program::Program;
use crate::NestId;

/// Estimated cost (importance) of a single nest in abstract "operations".
pub fn nest_cost(nest: &LoopNest) -> i64 {
    let per_iteration = nest.references().len() as i64 + nest.compute_per_iteration() as i64;
    nest.iteration_count().saturating_mul(per_iteration.max(1))
}

/// Returns the program's nests ordered from most to least important.
///
/// Ties are broken by original program order so the result is deterministic.
pub fn rank_nests_by_cost(program: &Program) -> Vec<NestId> {
    let mut ids: Vec<NestId> = program.nests().iter().map(LoopNest::id).collect();
    ids.sort_by_key(|&id| {
        let nest = &program.nests()[id.index()];
        (std::cmp::Reverse(nest_cost(nest)), id.index())
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;
    use crate::builder::ProgramBuilder;

    #[test]
    fn cost_scales_with_iterations_and_references() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("A", vec![64, 64], 4);
        b.nest("small", vec![("i", 0, 8), ("j", 0, 8)], |n| {
            n.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        b.nest("large", vec![("i", 0, 64), ("j", 0, 64)], |n| {
            n.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            n.write(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        let p = b.build();
        let c_small = nest_cost(&p.nests()[0]);
        let c_large = nest_cost(&p.nests()[1]);
        assert!(c_large > c_small);
        assert_eq!(c_small, 8 * 8 * (1 + 4));
        assert_eq!(c_large, 64 * 64 * (2 + 4));
    }

    #[test]
    fn ranking_puts_most_expensive_first_and_is_stable() {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("A", vec![16, 16], 4);
        b.nest("n0", vec![("i", 0, 4)], |n| {
            n.read(a, AccessBuilder::new(2, 1).row(0, [1]).row(1, [0]).build());
        });
        b.nest("n1", vec![("i", 0, 32), ("j", 0, 32)], |n| {
            n.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        b.nest("n2", vec![("i", 0, 4)], |n| {
            n.read(a, AccessBuilder::new(2, 1).row(0, [1]).row(1, [0]).build());
        });
        let p = b.build();
        let ranked = rank_nests_by_cost(&p);
        assert_eq!(ranked[0], NestId::new(1));
        // Equal-cost nests keep program order.
        assert_eq!(ranked[1], NestId::new(0));
        assert_eq!(ranked[2], NestId::new(2));
    }
}
