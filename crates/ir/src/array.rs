//! Array declarations.

use crate::ids::ArrayId;
use std::fmt;

/// A declared array: name, per-dimension extents and element size in bytes.
///
/// # Examples
///
/// ```
/// use mlo_ir::{ArrayDecl, ArrayId};
/// let a = ArrayDecl::new(ArrayId::new(0), "Q1", vec![128, 64], 4);
/// assert_eq!(a.rank(), 2);
/// assert_eq!(a.element_count(), 128 * 64);
/// assert_eq!(a.size_bytes(), 128 * 64 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    id: ArrayId,
    name: String,
    extents: Vec<i64>,
    element_size: u32,
}

impl ArrayDecl {
    /// Creates a new array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `extents` is empty, any extent is non-positive, or
    /// `element_size` is zero.
    pub fn new(id: ArrayId, name: impl Into<String>, extents: Vec<i64>, element_size: u32) -> Self {
        assert!(!extents.is_empty(), "an array needs at least one dimension");
        assert!(
            extents.iter().all(|&e| e > 0),
            "array extents must be positive"
        );
        assert!(element_size > 0, "element size must be positive");
        ArrayDecl {
            id,
            name: name.into(),
            extents,
            element_size,
        }
    }

    /// The array's identifier.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The array's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// The extent of each dimension.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// The extent of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn extent(&self, d: usize) -> i64 {
        self.extents[d]
    }

    /// Element size in bytes.
    pub fn element_size(&self) -> u32 {
        self.element_size
    }

    /// Total number of elements.
    pub fn element_count(&self) -> i64 {
        self.extents.iter().product()
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> i64 {
        self.element_count() * self.element_size as i64
    }

    /// Whether the (integer) index vector is within bounds.
    pub fn in_bounds(&self, index: &[i64]) -> bool {
        index.len() == self.rank()
            && index
                .iter()
                .zip(self.extents.iter())
                .all(|(&i, &e)| i >= 0 && i < e)
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for e in &self.extents {
            write!(f, "[{e}]")?;
        }
        write!(f, " ({} bytes/elem)", self.element_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl() -> ArrayDecl {
        ArrayDecl::new(ArrayId::new(1), "A", vec![10, 20, 30], 8)
    }

    #[test]
    fn accessors() {
        let a = decl();
        assert_eq!(a.id(), ArrayId::new(1));
        assert_eq!(a.name(), "A");
        assert_eq!(a.rank(), 3);
        assert_eq!(a.extent(1), 20);
        assert_eq!(a.element_count(), 6000);
        assert_eq!(a.size_bytes(), 48000);
        assert_eq!(a.to_string(), "A[10][20][30] (8 bytes/elem)");
    }

    #[test]
    fn bounds_checking() {
        let a = decl();
        assert!(a.in_bounds(&[0, 0, 0]));
        assert!(a.in_bounds(&[9, 19, 29]));
        assert!(!a.in_bounds(&[10, 0, 0]));
        assert!(!a.in_bounds(&[-1, 0, 0]));
        assert!(!a.in_bounds(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = ArrayDecl::new(ArrayId::new(0), "bad", vec![0, 4], 4);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_extents_rejected() {
        let _ = ArrayDecl::new(ArrayId::new(0), "bad", vec![], 4);
    }
}
