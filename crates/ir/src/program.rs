//! Whole programs: a set of arrays plus a sequence of loop nests.

use crate::array::ArrayDecl;
use crate::ids::{ArrayId, NestId};
use crate::nest::LoopNest;
use std::fmt;

/// A whole program for layout-optimization purposes: the declared arrays and
/// the loop nests that access them, in execution order.
///
/// Use [`crate::ProgramBuilder`] to construct programs conveniently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
}

impl Program {
    /// Creates a program from parts.
    ///
    /// # Panics
    ///
    /// Panics if array or nest ids are not dense indices in declaration
    /// order (the builder guarantees this).
    pub fn new(name: impl Into<String>, arrays: Vec<ArrayDecl>, nests: Vec<LoopNest>) -> Self {
        for (i, a) in arrays.iter().enumerate() {
            assert_eq!(a.id().index(), i, "array ids must be dense and ordered");
        }
        for (i, n) in nests.iter().enumerate() {
            assert_eq!(n.id().index(), i, "nest ids must be dense and ordered");
        }
        Program {
            name: name.into(),
            arrays,
            nests,
        }
    }

    /// The program name (used in reports and benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// All loop nests in execution order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Looks up an array declaration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IrError::UnknownArray`] for an id that is out of
    /// range.
    pub fn array(&self, id: ArrayId) -> crate::Result<&ArrayDecl> {
        self.arrays
            .get(id.index())
            .ok_or(crate::IrError::UnknownArray(id))
    }

    /// Looks up a nest.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IrError::UnknownNest`] for an id that is out of
    /// range.
    pub fn nest(&self, id: NestId) -> crate::Result<&LoopNest> {
        self.nests
            .get(id.index())
            .ok_or(crate::IrError::UnknownNest(id))
    }

    /// Total data footprint over all arrays, in bytes.
    pub fn total_data_bytes(&self) -> i64 {
        self.arrays.iter().map(ArrayDecl::size_bytes).sum()
    }

    /// Total data footprint in kilobytes (as the paper's Table 1 reports).
    pub fn total_data_kb(&self) -> f64 {
        self.total_data_bytes() as f64 / 1024.0
    }

    /// The nests that reference a given array.
    pub fn nests_referencing(&self, array: ArrayId) -> Vec<NestId> {
        self.nests
            .iter()
            .filter(|n| n.referenced_arrays().contains(&array))
            .map(|n| n.id())
            .collect()
    }

    /// Pairs of distinct arrays that co-occur in at least one nest; these are
    /// exactly the pairs for which the constraint network will contain a
    /// binary constraint.
    pub fn co_occurring_array_pairs(&self) -> Vec<(ArrayId, ArrayId)> {
        let mut pairs = Vec::new();
        for nest in &self.nests {
            let arrays = nest.referenced_arrays();
            for i in 0..arrays.len() {
                for j in (i + 1)..arrays.len() {
                    let (a, b) = if arrays[i] < arrays[j] {
                        (arrays[i], arrays[j])
                    } else {
                        (arrays[j], arrays[i])
                    };
                    if !pairs.contains(&(a, b)) {
                        pairs.push((a, b));
                    }
                }
            }
        }
        pairs
    }

    /// Total number of references summed over all nests.
    pub fn total_reference_count(&self) -> usize {
        self.nests.iter().map(|n| n.references().len()).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}:", self.name)?;
        for a in &self.arrays {
            writeln!(f, "  {a}")?;
        }
        for n in &self.nests {
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;
    use crate::builder::ProgramBuilder;

    fn two_nest_program() -> Program {
        let mut b = ProgramBuilder::new("p");
        let a = b.array("A", vec![32, 32], 4);
        let c = b.array("C", vec![32, 32], 8);
        let d = b.array("D", vec![64], 4);
        b.nest("n0", vec![("i", 0, 32), ("j", 0, 32)], |n| {
            n.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            n.write(
                c,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        b.nest("n1", vec![("i", 0, 64)], |n| {
            n.read(d, AccessBuilder::new(1, 1).row(0, [1]).build());
            n.write(a, AccessBuilder::new(2, 1).row(0, [1]).row(1, [0]).build());
        });
        b.build()
    }

    #[test]
    fn program_accessors() {
        let p = two_nest_program();
        assert_eq!(p.name(), "p");
        assert_eq!(p.arrays().len(), 3);
        assert_eq!(p.nests().len(), 2);
        assert_eq!(p.total_data_bytes(), 32 * 32 * 4 + 32 * 32 * 8 + 64 * 4);
        assert!(p.total_data_kb() > 12.0);
        assert_eq!(p.total_reference_count(), 4);
        assert!(p.array(ArrayId::new(5)).is_err());
        assert!(p.nest(NestId::new(9)).is_err());
        assert_eq!(p.array(ArrayId::new(1)).unwrap().name(), "C");
    }

    #[test]
    fn nest_and_pair_queries() {
        let p = two_nest_program();
        assert_eq!(
            p.nests_referencing(ArrayId::new(0)),
            vec![NestId::new(0), NestId::new(1)]
        );
        assert_eq!(p.nests_referencing(ArrayId::new(1)), vec![NestId::new(0)]);
        let pairs = p.co_occurring_array_pairs();
        assert!(pairs.contains(&(ArrayId::new(0), ArrayId::new(1))));
        assert!(pairs.contains(&(ArrayId::new(0), ArrayId::new(2))));
        assert!(!pairs.contains(&(ArrayId::new(1), ArrayId::new(2))));
    }

    #[test]
    fn display_lists_arrays_and_nests() {
        let p = two_nest_program();
        let s = p.to_string();
        assert!(s.contains("program p"));
        assert!(s.contains("A[32][32]"));
        assert!(s.contains("nest N1"));
    }
}
