//! A small fluent builder for programs, nests and references.

use crate::access::AffineAccess;
use crate::array::ArrayDecl;
use crate::ids::{ArrayId, NestId, RefId};
use crate::nest::{Loop, LoopNest};
use crate::program::Program;
use crate::reference::AccessKind;

/// Builds a [`Program`] incrementally.
///
/// # Examples
///
/// ```
/// use mlo_ir::{ProgramBuilder, AccessBuilder};
/// let mut b = ProgramBuilder::new("mxm");
/// let a = b.array("A", vec![32, 32], 4);
/// let c = b.array("C", vec![32, 32], 4);
/// b.nest("init", vec![("i", 0, 32), ("j", 0, 32)], |n| {
///     n.write(c, AccessBuilder::new(2, 2).row(0, [1, 0]).row(1, [0, 1]).build());
///     n.read(a, AccessBuilder::new(2, 2).row(0, [0, 1]).row(1, [1, 0]).build());
/// });
/// let p = b.build();
/// assert_eq!(p.nests()[0].references().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            arrays: Vec::new(),
            nests: Vec::new(),
        }
    }

    /// Declares an array and returns its id.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        extents: Vec<i64>,
        element_size: u32,
    ) -> ArrayId {
        let id = ArrayId::new(self.arrays.len());
        self.arrays
            .push(ArrayDecl::new(id, name, extents, element_size));
        id
    }

    /// Adds a loop nest.  `loops` lists `(name, lower, upper)` outermost
    /// first; `body` receives a [`NestBuilder`] used to add references.
    pub fn nest(
        &mut self,
        name: impl Into<String>,
        loops: Vec<(&str, i64, i64)>,
        body: impl FnOnce(&mut NestBuilder<'_>),
    ) -> NestId {
        let id = NestId::new(self.nests.len());
        let nest = LoopNest::new(
            id,
            name,
            loops
                .into_iter()
                .map(|(n, lo, hi)| Loop::new(n, lo, hi))
                .collect(),
        );
        self.nests.push(nest);
        let mut nb = NestBuilder {
            nest: self.nests.last_mut().expect("just pushed"),
        };
        body(&mut nb);
        id
    }

    /// Sets the per-iteration compute cost of the most recently added nest.
    ///
    /// # Panics
    ///
    /// Panics if no nest has been added yet.
    pub fn compute_per_iteration(&mut self, instructions: u32) -> &mut Self {
        self.nests
            .last_mut()
            .expect("add a nest before setting its compute cost")
            .set_compute_per_iteration(instructions);
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program::new(self.name, self.arrays, self.nests)
    }
}

/// Adds references to a nest being built; obtained from
/// [`ProgramBuilder::nest`].
#[derive(Debug)]
pub struct NestBuilder<'a> {
    nest: &'a mut LoopNest,
}

impl NestBuilder<'_> {
    /// Adds a read reference.
    pub fn read(&mut self, array: ArrayId, access: AffineAccess) -> RefId {
        self.nest.add_reference(array, access, AccessKind::Read)
    }

    /// Adds a write reference.
    pub fn write(&mut self, array: ArrayId, access: AffineAccess) -> RefId {
        self.nest.add_reference(array, access, AccessKind::Write)
    }

    /// Adds a reference with an explicit kind.
    pub fn reference(&mut self, array: ArrayId, access: AffineAccess, kind: AccessKind) -> RefId {
        self.nest.add_reference(array, access, kind)
    }

    /// Sets the non-memory instruction count per iteration for this nest.
    pub fn compute(&mut self, instructions: u32) {
        self.nest.set_compute_per_iteration(instructions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = ProgramBuilder::new("t");
        let a0 = b.array("A", vec![8], 4);
        let a1 = b.array("B", vec![8, 8], 4);
        assert_eq!(a0.index(), 0);
        assert_eq!(a1.index(), 1);
        let n0 = b.nest("first", vec![("i", 0, 8)], |n| {
            let r = n.read(a0, AccessBuilder::new(1, 1).row(0, [1]).build());
            assert_eq!(r.index(), 0);
            n.compute(7);
        });
        let n1 = b.nest("second", vec![("i", 0, 8), ("j", 0, 8)], |n| {
            n.write(
                a1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        assert_eq!(n0.index(), 0);
        assert_eq!(n1.index(), 1);
        let p = b.build();
        assert_eq!(p.nests()[0].compute_per_iteration(), 7);
        assert_eq!(p.nests()[1].compute_per_iteration(), 4);
    }

    #[test]
    fn compute_per_iteration_on_builder() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array("A", vec![4], 4);
        b.nest("n", vec![("i", 0, 4)], |n| {
            n.read(a, AccessBuilder::new(1, 1).row(0, [1]).build());
        });
        b.compute_per_iteration(11);
        let p = b.build();
        assert_eq!(p.nests()[0].compute_per_iteration(), 11);
    }

    #[test]
    #[should_panic(expected = "add a nest")]
    fn compute_without_nest_panics() {
        let mut b = ProgramBuilder::new("t");
        b.compute_per_iteration(3);
    }
}
