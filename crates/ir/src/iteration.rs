//! Iteration-space walking.
//!
//! The cache simulator replays the memory accesses of a nest in execution
//! order.  [`IterationSpace`] iterates over all iteration vectors of a nest
//! (innermost loop fastest), optionally under a loop permutation and
//! optionally sub-sampled so very large nests can be simulated in bounded
//! time while preserving the access-stride structure.

use crate::nest::LoopNest;
use crate::transform::LoopTransform;
use mlo_linalg::IntVec;

/// An iterator over the iteration vectors of a rectangular loop nest.
///
/// Vectors are produced in execution order of the (possibly transformed)
/// nest but are expressed in the *original* iteration space, so existing
/// access functions can be applied unchanged.
///
/// # Examples
///
/// ```
/// use mlo_ir::{IterationSpace, Loop, LoopNest, NestId};
/// let nest = LoopNest::new(NestId::new(0), "n", vec![
///     Loop::new("i", 0, 2),
///     Loop::new("j", 0, 2),
/// ]);
/// let points: Vec<Vec<i64>> = IterationSpace::new(&nest)
///     .map(|v| v.as_slice().to_vec())
///     .collect();
/// assert_eq!(points, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
#[derive(Debug, Clone)]
pub struct IterationSpace {
    lowers: Vec<i64>,
    uppers: Vec<i64>,
    /// Iteration order: position k holds the original loop index that varies
    /// k-th slowest.
    order: Vec<usize>,
    /// Per-loop step (1 unless sub-sampled).
    steps: Vec<i64>,
    current: Option<Vec<i64>>,
}

impl IterationSpace {
    /// Walks the nest in its original loop order.
    pub fn new(nest: &LoopNest) -> Self {
        Self::with_order(nest, (0..nest.depth()).collect())
    }

    /// Walks the nest in the loop order produced by a permutation transform;
    /// a non-permutation transform falls back to the original order.
    pub fn transformed(nest: &LoopNest, transform: &LoopTransform) -> Self {
        match transform.permutation_order() {
            Some(order) => Self::with_order(nest, order.to_vec()),
            None => Self::new(nest),
        }
    }

    /// Walks the nest with an explicit loop order (`order[k]` = original loop
    /// index iterated at position `k`, outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the nest's loop indices.
    pub fn with_order(nest: &LoopNest, order: Vec<usize>) -> Self {
        assert_eq!(order.len(), nest.depth(), "order length must equal depth");
        let mut seen = vec![false; nest.depth()];
        for &o in &order {
            assert!(o < nest.depth() && !seen[o], "order must be a permutation");
            seen[o] = true;
        }
        let lowers: Vec<i64> = nest.loops().iter().map(|l| l.lower()).collect();
        let uppers: Vec<i64> = nest.loops().iter().map(|l| l.upper()).collect();
        let empty = lowers.iter().zip(uppers.iter()).any(|(l, u)| l >= u);
        IterationSpace {
            current: if empty { None } else { Some(lowers.clone()) },
            lowers,
            uppers,
            order,
            steps: vec![1; nest.depth()],
        }
    }

    /// Sub-samples every loop whose trip count exceeds `max_trip` so that it
    /// executes roughly `max_trip` iterations, keeping the first iteration
    /// and a constant stride.  Useful to bound trace length for very large
    /// nests while preserving stride behaviour.
    pub fn subsampled(mut self, max_trip: i64) -> Self {
        assert!(max_trip > 0, "max_trip must be positive");
        for k in 0..self.lowers.len() {
            let trip = self.uppers[k] - self.lowers[k];
            if trip > max_trip {
                self.steps[k] = (trip + max_trip - 1) / max_trip;
            }
        }
        self
    }

    /// Total number of iteration vectors this walker will produce.
    pub fn len(&self) -> i64 {
        self.lowers
            .iter()
            .zip(self.uppers.iter())
            .zip(self.steps.iter())
            .map(|((l, u), s)| {
                let trip = (u - l).max(0);
                (trip + s - 1) / s
            })
            .product()
    }

    /// Whether the space contains no iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for IterationSpace {
    type Item = IntVec;

    fn next(&mut self) -> Option<IntVec> {
        let current = self.current.as_mut()?;
        let result = IntVec::from(current.clone());
        // Advance like an odometer following `order`, innermost (last
        // position in `order`) fastest.
        let mut pos = self.order.len();
        loop {
            if pos == 0 {
                self.current = None;
                break;
            }
            pos -= 1;
            let loop_idx = self.order[pos];
            current[loop_idx] += self.steps[loop_idx];
            if current[loop_idx] < self.uppers[loop_idx] {
                break;
            }
            current[loop_idx] = self.lowers[loop_idx];
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NestId;
    use crate::nest::Loop;

    fn nest(bounds: &[(i64, i64)]) -> LoopNest {
        LoopNest::new(
            NestId::new(0),
            "t",
            bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| Loop::new(format!("l{i}"), lo, hi))
                .collect(),
        )
    }

    #[test]
    fn walks_in_row_major_order() {
        let n = nest(&[(0, 2), (0, 3)]);
        let pts: Vec<Vec<i64>> = IterationSpace::new(&n).map(IntVec::into_inner).collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(IterationSpace::new(&n).len(), 6);
    }

    #[test]
    fn respects_lower_bounds() {
        let n = nest(&[(2, 4)]);
        let pts: Vec<Vec<i64>> = IterationSpace::new(&n).map(IntVec::into_inner).collect();
        assert_eq!(pts, vec![vec![2], vec![3]]);
    }

    #[test]
    fn interchanged_order_varies_outer_loop_fastest() {
        let n = nest(&[(0, 2), (0, 2)]);
        let t = LoopTransform::permutation(&[1, 0]);
        let pts: Vec<Vec<i64>> = IterationSpace::transformed(&n, &t)
            .map(IntVec::into_inner)
            .collect();
        // Loop order is (j, i): i (original loop 0) now varies fastest.
        assert_eq!(pts, vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn empty_nest_produces_nothing() {
        let n = nest(&[(0, 0), (0, 5)]);
        assert!(IterationSpace::new(&n).is_empty());
        assert_eq!(IterationSpace::new(&n).count(), 0);
    }

    #[test]
    fn zero_depth_nest_has_single_iteration() {
        let n = nest(&[]);
        let pts: Vec<IntVec> = IterationSpace::new(&n).collect();
        // A depth-0 nest executes its body exactly once.
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].dim(), 0);
    }

    #[test]
    fn subsampling_bounds_trace_length() {
        let n = nest(&[(0, 1000), (0, 10)]);
        let walker = IterationSpace::new(&n).subsampled(100);
        let len = walker.len();
        assert!(len <= 100 * 10);
        assert_eq!(walker.count() as i64, len);
        // Small loops are untouched.
        let n2 = nest(&[(0, 8)]);
        assert_eq!(IterationSpace::new(&n2).subsampled(100).count(), 8);
    }

    #[test]
    fn count_matches_len_under_transform() {
        let n = nest(&[(0, 3), (1, 4), (0, 2)]);
        let t = LoopTransform::permutation(&[2, 0, 1]);
        let ws = IterationSpace::transformed(&n, &t);
        assert_eq!(ws.len(), 3 * 3 * 2);
        assert_eq!(ws.count(), 18);
    }
}
