//! Array references appearing inside loop nests.

use crate::access::AffineAccess;
use crate::ids::{ArrayId, RefId};
use std::fmt;

/// Whether a reference reads or writes its array.
///
/// The layout analysis treats reads and writes identically (spatial locality
/// matters for both), but the dependence analysis needs the distinction to
/// classify flow / anti / output dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The reference reads the array.
    Read,
    /// The reference writes the array.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One textual array reference inside a loop-nest body.
///
/// # Examples
///
/// ```
/// use mlo_ir::{AccessBuilder, AccessKind, ArrayId, ArrayRef, RefId};
/// let r = ArrayRef::new(
///     RefId::new(0),
///     ArrayId::new(1),
///     AccessBuilder::new(2, 2).row(0, [1, 0]).row(1, [0, 1]).build(),
///     AccessKind::Read,
/// );
/// assert_eq!(r.array(), ArrayId::new(1));
/// assert!(r.is_read());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    id: RefId,
    array: ArrayId,
    access: AffineAccess,
    kind: AccessKind,
}

impl ArrayRef {
    /// Creates a reference.
    pub fn new(id: RefId, array: ArrayId, access: AffineAccess, kind: AccessKind) -> Self {
        ArrayRef {
            id,
            array,
            access,
            kind,
        }
    }

    /// The reference's identifier (unique within its nest).
    pub fn id(&self) -> RefId {
        self.id
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The affine access function.
    pub fn access(&self) -> &AffineAccess {
        &self.access
    }

    /// Read or write.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.kind == AccessKind::Read
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }

    /// Returns a copy whose access has been composed with the inverse of a
    /// loop transformation (see [`AffineAccess::transformed`]).
    pub fn transformed(&self, t_inverse: &mlo_linalg::IntMat) -> crate::Result<ArrayRef> {
        Ok(ArrayRef {
            id: self.id,
            array: self.array,
            access: self.access.transformed(t_inverse)?,
            kind: self.kind,
        })
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.kind, self.array, self.access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;
    use mlo_linalg::IntMat;

    fn make_ref(kind: AccessKind) -> ArrayRef {
        ArrayRef::new(
            RefId::new(3),
            ArrayId::new(2),
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
            kind,
        )
    }

    #[test]
    fn accessors() {
        let r = make_ref(AccessKind::Write);
        assert_eq!(r.id(), RefId::new(3));
        assert_eq!(r.array(), ArrayId::new(2));
        assert!(r.is_write());
        assert!(!r.is_read());
        assert_eq!(r.kind(), AccessKind::Write);
        assert!(r.to_string().contains("write"));
        assert!(r.to_string().contains("Q2"));
    }

    #[test]
    fn transformed_preserves_identity_metadata() {
        let r = make_ref(AccessKind::Read);
        let t = IntMat::from_array([[0, 1], [1, 0]]);
        let rt = r.transformed(&t).unwrap();
        assert_eq!(rt.id(), r.id());
        assert_eq!(rt.array(), r.array());
        assert_eq!(rt.kind(), AccessKind::Read);
        assert_ne!(rt.access(), r.access());
    }
}
