//! Candidate loop transformations (unimodular iteration-space remappings).
//!
//! The constraint network offers, for every nest, one preferred layout
//! combination per *candidate restructuring* of that nest.  The candidate
//! set used here is the set of legal loop permutations (the transformations
//! the paper's example — interchange in Figure 2 — uses), optionally
//! extended with the identity only.

use crate::dependence::DependenceAnalysis;
use crate::nest::LoopNest;
use mlo_linalg::{unimodular_inverse, IntMat};
use std::fmt;

/// What kind of restructuring a transform represents (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// The identity (original loop order).
    Identity,
    /// A permutation of the loops.
    Permutation,
    /// Any other unimodular transformation (skewing, reversal, ...).
    General,
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformKind::Identity => write!(f, "identity"),
            TransformKind::Permutation => write!(f, "permutation"),
            TransformKind::General => write!(f, "general"),
        }
    }
}

/// A unimodular loop transformation `I' = T · I` together with its inverse.
///
/// # Examples
///
/// ```
/// use mlo_ir::LoopTransform;
/// let interchange = LoopTransform::permutation(&[1, 0]);
/// assert_eq!(interchange.kind(), mlo_ir::TransformKind::Permutation);
/// assert!(interchange.describe().contains("j, i") || !interchange.describe().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopTransform {
    matrix: IntMat,
    inverse: IntMat,
    kind: TransformKind,
    /// The permutation realized, when this is a permutation (new position ->
    /// original loop index).
    permutation: Option<Vec<usize>>,
}

impl LoopTransform {
    /// The identity transformation for a nest of the given depth.
    pub fn identity(depth: usize) -> Self {
        LoopTransform {
            matrix: IntMat::identity(depth),
            inverse: IntMat::identity(depth),
            kind: TransformKind::Identity,
            permutation: Some((0..depth).collect()),
        }
    }

    /// A loop permutation: `order[k]` is the original loop that ends up at
    /// position `k` (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn permutation(order: &[usize]) -> Self {
        let depth = order.len();
        let mut seen = vec![false; depth];
        for &o in order {
            assert!(o < depth && !seen[o], "order must be a permutation");
            seen[o] = true;
        }
        let mut m = IntMat::zeros(depth, depth);
        for (new_pos, &old_pos) in order.iter().enumerate() {
            m.set(new_pos, old_pos, 1);
        }
        let inverse = m.transpose();
        let kind = if order.iter().enumerate().all(|(i, &o)| i == o) {
            TransformKind::Identity
        } else {
            TransformKind::Permutation
        };
        LoopTransform {
            matrix: m,
            inverse,
            kind,
            permutation: Some(order.to_vec()),
        }
    }

    /// A general unimodular transformation from an explicit matrix.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IrError::InvalidTransform`] if the matrix is not
    /// square unimodular.
    pub fn general(matrix: IntMat) -> crate::Result<Self> {
        let inverse = unimodular_inverse(&matrix)
            .map_err(|e| crate::IrError::InvalidTransform(e.to_string()))?;
        let kind = if matrix.is_identity() {
            TransformKind::Identity
        } else {
            TransformKind::General
        };
        Ok(LoopTransform {
            matrix,
            inverse,
            kind,
            permutation: None,
        })
    }

    /// The transformation matrix `T`.
    pub fn matrix(&self) -> &IntMat {
        &self.matrix
    }

    /// The inverse matrix `T⁻¹` (used to rewrite access functions).
    pub fn inverse(&self) -> &IntMat {
        &self.inverse
    }

    /// The transformation's kind.
    pub fn kind(&self) -> TransformKind {
        self.kind
    }

    /// The permutation order when this transform is a permutation.
    pub fn permutation_order(&self) -> Option<&[usize]> {
        self.permutation.as_deref()
    }

    /// Nest depth this transform applies to.
    pub fn depth(&self) -> usize {
        self.matrix.rows()
    }

    /// Whether this is the identity transformation.
    pub fn is_identity(&self) -> bool {
        self.kind == TransformKind::Identity
    }

    /// A short human-readable description, e.g. `"permute(j, i)"`.
    pub fn describe(&self) -> String {
        match (&self.kind, &self.permutation) {
            (TransformKind::Identity, _) => "identity".to_string(),
            (TransformKind::Permutation, Some(p)) => {
                let names: Vec<String> = p.iter().map(|i| format!("L{i}")).collect();
                format!("permute({})", names.join(", "))
            }
            _ => "unimodular".to_string(),
        }
    }
}

impl fmt::Display for LoopTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// Enumerates all loop permutations of `depth` loops.
///
/// The count is `depth!`; benchmark nests are at most 3–4 deep so this stays
/// tiny.
pub fn all_permutations(depth: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(depth);
    let mut used = vec![false; depth];
    fn recurse(
        depth: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        result: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == depth {
            result.push(current.clone());
            return;
        }
        for i in 0..depth {
            if !used[i] {
                used[i] = true;
                current.push(i);
                recurse(depth, current, used, result);
                current.pop();
                used[i] = false;
            }
        }
    }
    recurse(depth, &mut current, &mut used, &mut result);
    result
}

/// Enumerates the *legal* candidate transformations of a nest: every loop
/// permutation that preserves all data dependences (the identity is always
/// included and always first).
pub fn legal_permutations(nest: &LoopNest) -> Vec<LoopTransform> {
    let deps = DependenceAnalysis::of_nest(nest);
    let mut out = Vec::new();
    for order in all_permutations(nest.depth()) {
        let t = LoopTransform::permutation(&order);
        if t.is_identity() || deps.is_legal(t.matrix()) {
            if t.is_identity() {
                out.insert(0, t);
            } else {
                out.push(t);
            }
        }
    }
    if out.is_empty() {
        out.push(LoopTransform::identity(nest.depth()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessBuilder;
    use crate::ids::{ArrayId, NestId};
    use crate::nest::Loop;
    use crate::reference::AccessKind;

    #[test]
    fn permutation_matrices() {
        let t = LoopTransform::permutation(&[1, 0]);
        assert_eq!(t.matrix(), &IntMat::from_array([[0, 1], [1, 0]]));
        assert_eq!(t.inverse(), &IntMat::from_array([[0, 1], [1, 0]]));
        assert_eq!(t.kind(), TransformKind::Permutation);
        assert_eq!(t.permutation_order(), Some(&[1usize, 0][..]));
        assert_eq!(t.depth(), 2);
        assert!(!t.is_identity());
        assert!(t.describe().starts_with("permute"));

        let id = LoopTransform::permutation(&[0, 1, 2]);
        assert!(id.is_identity());
        assert_eq!(id.describe(), "identity");
        assert_eq!(LoopTransform::identity(3), id);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn invalid_permutation_rejected() {
        let _ = LoopTransform::permutation(&[0, 0]);
    }

    #[test]
    fn general_transform_requires_unimodularity() {
        assert!(LoopTransform::general(IntMat::from_array([[1, 1], [0, 1]])).is_ok());
        assert!(LoopTransform::general(IntMat::from_array([[2, 0], [0, 1]])).is_err());
        let skew = LoopTransform::general(IntMat::from_array([[1, 1], [0, 1]])).unwrap();
        assert_eq!(skew.kind(), TransformKind::General);
        assert_eq!(skew.describe(), "unimodular");
        assert_eq!(
            LoopTransform::general(IntMat::identity(2)).unwrap().kind(),
            TransformKind::Identity
        );
    }

    #[test]
    fn all_permutations_counts() {
        assert_eq!(all_permutations(1).len(), 1);
        assert_eq!(all_permutations(2).len(), 2);
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(4).len(), 24);
        assert!(all_permutations(3).contains(&vec![2, 0, 1]));
    }

    #[test]
    fn legal_permutations_respect_dependences() {
        // Dependence-free nest: both orders of a 2-deep nest are legal.
        let mut free = LoopNest::new(
            NestId::new(0),
            "free",
            vec![Loop::new("i", 0, 8), Loop::new("j", 0, 8)],
        );
        free.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
            AccessKind::Read,
        );
        let legal = legal_permutations(&free);
        assert_eq!(legal.len(), 2);
        assert!(legal[0].is_identity());

        // Anti-diagonal dependence: interchange becomes illegal.
        let mut constrained = LoopNest::new(
            NestId::new(1),
            "constrained",
            vec![Loop::new("i", 0, 8), Loop::new("j", 0, 8)],
        );
        constrained.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
            AccessKind::Write,
        );
        constrained.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .offset(0, -1)
                .offset(1, 1)
                .build(),
            AccessKind::Read,
        );
        let legal = legal_permutations(&constrained);
        assert_eq!(legal.len(), 1);
        assert!(legal[0].is_identity());
    }

    #[test]
    fn transform_kind_display() {
        assert_eq!(TransformKind::Identity.to_string(), "identity");
        assert_eq!(TransformKind::Permutation.to_string(), "permutation");
        assert_eq!(TransformKind::General.to_string(), "general");
        let t = LoopTransform::permutation(&[1, 0]);
        assert_eq!(t.to_string(), t.describe());
    }
}
