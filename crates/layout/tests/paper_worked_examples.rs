//! Integration tests reproducing every worked example in the paper's text.

use mlo_ir::{AccessBuilder, ArrayId, Loop, LoopNest, LoopTransform, NestId, ProgramBuilder};
use mlo_layout::locality::{preferred_layout, preferred_layout_for_array};
use mlo_layout::{build_network, CandidateOptions, Hyperplane, Layout};

/// Section 2, Figure 1: the four canonical layouts and their hyperplane
/// vectors, including the statement that (1 -2) and (2 -1) are *different*
/// diagonal families from (1 -1).
#[test]
fn figure1_hyperplane_families() {
    let row = Hyperplane::new(vec![1, 0]);
    let col = Hyperplane::new(vec![0, 1]);
    let diag = Hyperplane::new(vec![1, -1]);
    let anti = Hyperplane::new(vec![1, 1]);
    assert_ne!(row, col);
    assert_ne!(diag, anti);
    assert_ne!(Hyperplane::new(vec![1, -2]), diag);
    assert_ne!(Hyperplane::new(vec![2, -1]), diag);
    // Row-major: same hyperplane iff same row index.
    assert!(row.same_hyperplane(&[3, 0], &[3, 9]));
    assert!(!row.same_hyperplane(&[3, 0], &[4, 0]));
    // The worked diagonal example: (5,3) ~ (7,5) but (5,3) !~ (5,4).
    assert!(diag.same_hyperplane(&[5, 3], &[7, 5]));
    assert!(!diag.same_hyperplane(&[5, 3], &[5, 4]));
}

/// Section 2, Figure 2: Q1[i1+i2][i2] wants (1 -1), Q2[i1+i2][i1] wants
/// (0 1); after interchanging the loops the preferences swap to (0 1) and
/// (1 -1) respectively.
#[test]
fn figure2_preferred_layouts_before_and_after_interchange() {
    let q1_access = AccessBuilder::new(2, 2)
        .row(0, [1, 1])
        .row(1, [0, 1])
        .build();
    let q2_access = AccessBuilder::new(2, 2)
        .row(0, [1, 1])
        .row(1, [1, 0])
        .build();
    let identity = LoopTransform::identity(2);
    let interchange = LoopTransform::permutation(&[1, 0]);

    assert_eq!(
        preferred_layout(&q1_access, &identity),
        Some(Layout::from_vector(vec![1, -1]))
    );
    assert_eq!(
        preferred_layout(&q2_access, &identity),
        Some(Layout::from_vector(vec![0, 1]))
    );
    assert_eq!(
        preferred_layout(&q1_access, &interchange),
        Some(Layout::from_vector(vec![0, 1]))
    );
    assert_eq!(
        preferred_layout(&q2_access, &interchange),
        Some(Layout::from_vector(vec![1, -1]))
    );
}

/// Section 2: the equality `(y1 y2)·(i1+i2, i2) = (y1 y2)·(i1+i2+1, i2+1)`
/// that defines Q1's layout — checked directly on concrete iterations.
#[test]
fn figure2_successive_iterations_share_a_hyperplane() {
    let q1_access = AccessBuilder::new(2, 2)
        .row(0, [1, 1])
        .row(1, [0, 1])
        .build();
    let diag = Layout::diagonal();
    for i1 in 0..8i64 {
        for i2 in 0..7i64 {
            let here = q1_access.index_for(&mlo_linalg::IntVec::from(vec![i1, i2]));
            let next = q1_access.index_for(&mlo_linalg::IntVec::from(vec![i1, i2 + 1]));
            assert!(diag.same_block(here.as_slice(), next.as_slice()));
            assert!(!Layout::row_major(2).same_block(here.as_slice(), next.as_slice()));
        }
    }
}

/// Section 2: three-dimensional column-major is the ordered pair
/// (0 0 1), (0 1 0) and both equalities must hold for two elements to map to
/// the same column.
#[test]
fn section2_three_dimensional_layouts() {
    let cm3 = Layout::column_major(3);
    assert_eq!(
        cm3.hyperplanes(),
        &[
            Hyperplane::new(vec![0, 0, 1]),
            Hyperplane::new(vec![0, 1, 0])
        ]
    );
    assert!(cm3.same_block(&[0, 2, 3], &[7, 2, 3]));
    assert!(!cm3.same_block(&[0, 2, 3], &[0, 2, 4]));
    assert!(!cm3.same_block(&[0, 2, 3], &[0, 3, 3]));
}

/// Section 3: the network built from the Figure 2 nest contains exactly the
/// two preferred pairs (one per legal loop order), as in the S12 example.
#[test]
fn section3_constraint_pairs_from_figure2() {
    let n = 16;
    let mut builder = ProgramBuilder::new("figure2");
    let q1 = builder.array("Q1", vec![2 * n, n], 4);
    let q2 = builder.array("Q2", vec![2 * n, n], 4);
    builder.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
        nest.read(
            q1,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
        );
        nest.read(
            q2,
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [1, 0])
                .build(),
        );
    });
    let program = builder.build();
    let network = build_network(&program, &CandidateOptions::default());
    let va = network.variable_of(q1).unwrap();
    let vb = network.variable_of(q2).unwrap();
    let constraint = network.network().constraint_between(va, vb).unwrap();
    assert_eq!(constraint.pair_count(), 2);
    // Pair 1: (diagonal, column-major); pair 2: (column-major, diagonal).
    let dom_a = network.network().domain(va);
    let dom_b = network.network().domain(vb);
    let diag_a = dom_a.index_of(&Layout::diagonal()).unwrap();
    let cm_a = dom_a.index_of(&Layout::column_major(2)).unwrap();
    let diag_b = dom_b.index_of(&Layout::diagonal()).unwrap();
    let cm_b = dom_b.index_of(&Layout::column_major(2)).unwrap();
    assert!(constraint.allows(va, diag_a, vb, cm_b));
    assert!(constraint.allows(va, cm_a, vb, diag_b));
    assert!(!constraint.allows(va, diag_a, vb, diag_b));
}

/// Section 4: "if a solution exists, both the base and enhanced schemes will
/// find it" — exercised here on an asymmetric nest where only one loop order
/// is legal, so the network collapses to a single allowed pair.
#[test]
fn dependences_restrict_the_candidate_restructurings() {
    let mut nest = LoopNest::new(
        NestId::new(0),
        "pinned",
        vec![Loop::new("i", 0, 16), Loop::new("j", 0, 16)],
    );
    // A[i][j] written, A[i-1][j+1] read: interchange is illegal.
    nest.add_reference(
        ArrayId::new(0),
        AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .build(),
        mlo_ir::AccessKind::Write,
    );
    nest.add_reference(
        ArrayId::new(0),
        AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .offset(0, -1)
            .offset(1, 1)
            .build(),
        mlo_ir::AccessKind::Read,
    );
    let legal = mlo_ir::legal_permutations(&nest);
    assert_eq!(legal.len(), 1);
    assert!(legal[0].is_identity());
    // The only preference that survives is the row-major one.
    assert_eq!(
        preferred_layout_for_array(&nest, ArrayId::new(0), &legal[0]),
        Some(Layout::row_major(2))
    );
}
