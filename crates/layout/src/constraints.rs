//! Building the constraint network of a program (paper, Section 3).
//!
//! Variables are the program's arrays, domains are their candidate layouts
//! and every constraint pair records the preferred layouts of two arrays
//! under one legal restructuring of one nest that references both.

use crate::candidates::{CandidateOptions, CandidateSet};
use crate::hyperplane::Layout;
use crate::locality::preferred_layout_for_array;
use mlo_csp::{ConstraintNetwork, VarId};
use mlo_ir::{legal_permutations, ArrayId, NestId, Program};
use std::sync::Arc;

/// The constraint network derived from a program plus the bookkeeping to map
/// network variables back to arrays.
///
/// Every table — the `Arc`-backed [`ConstraintNetwork`] and the
/// array/variable/contribution bookkeeping — lives behind shared storage, so
/// cloning a `LayoutNetwork` is a handful of reference-count bumps.
/// Sessions (`mlo-core`) cache one per program and hand out clones without
/// re-copying anything.
#[derive(Debug, Clone)]
pub struct LayoutNetwork {
    network: ConstraintNetwork<Layout>,
    variable_of_array: Arc<Vec<Option<VarId>>>,
    array_of_variable: Arc<Vec<ArrayId>>,
    /// For every (nest, transform) considered, the preferred layout pairs it
    /// contributed; useful for weighting constraints (future-work extension).
    contributions: Arc<Vec<Contribution>>,
}

/// One (nest, restructuring) contribution to the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contribution {
    /// The nest that generated the pairs.
    pub nest: NestId,
    /// A human-readable description of the restructuring.
    pub transform: String,
    /// The arrays and layouts preferred under this restructuring.
    pub preferences: Vec<(ArrayId, Layout)>,
}

impl Contribution {
    /// Every unordered pair of this contribution's preferences, in the
    /// canonical `(i, j)` with `i < j` order — the pairs that become allowed
    /// constraint pairs, and that weight derivation accumulates over.
    pub fn preference_pairs(
        &self,
    ) -> impl Iterator<Item = (&(ArrayId, Layout), &(ArrayId, Layout))> {
        self.preferences
            .iter()
            .enumerate()
            .flat_map(|(i, a)| self.preferences[i + 1..].iter().map(move |b| (a, b)))
    }
}

impl LayoutNetwork {
    /// The underlying constraint network.
    pub fn network(&self) -> &ConstraintNetwork<Layout> {
        &self.network
    }

    /// The network's compiled execution kernel (see `mlo_csp::bitset`),
    /// built on first use and cached in the shared storage: every clone of
    /// this layout network — and every weighted network derived from it —
    /// reuses the identical kernel (`Arc::ptr_eq`-verifiable).
    pub fn kernel(&self) -> &std::sync::Arc<mlo_csp::BitKernel> {
        self.network.kernel()
    }

    /// The network variable of an array, when the array appears in the
    /// network (arrays that no nest references with a layout preference may
    /// still get a variable with default candidates).
    pub fn variable_of(&self, array: ArrayId) -> Option<VarId> {
        self.variable_of_array.get(array.index()).copied().flatten()
    }

    /// The array behind a network variable.
    ///
    /// # Panics
    ///
    /// Panics when the variable is out of range.
    pub fn array_of(&self, var: VarId) -> ArrayId {
        self.array_of_variable[var.index()]
    }

    /// All per-nest, per-restructuring contributions.
    pub fn contributions(&self) -> &[Contribution] {
        &self.contributions
    }

    /// The paper's Table 1 "Domain Size": total number of candidate layouts.
    pub fn total_domain_size(&self) -> usize {
        self.network.total_domain_size()
    }

    /// Whether `self` and `other` are clones sharing all storage — the
    /// constraint-network tables and every bookkeeping table (a
    /// structural-sharing assertion for session-cache tests).
    pub fn shares_storage(&self, other: &Self) -> bool {
        self.network.shares_storage(&other.network)
            && Arc::ptr_eq(&self.variable_of_array, &other.variable_of_array)
            && Arc::ptr_eq(&self.array_of_variable, &other.array_of_variable)
            && Arc::ptr_eq(&self.contributions, &other.contributions)
    }
}

/// Builds the constraint network of a program.
///
/// Candidate layouts are enumerated on the spot; callers that build several
/// networks for one program (sessions, weighting experiments) should
/// enumerate a [`CandidateSet`] once and use [`build_network_from`].
pub fn build_network(program: &Program, options: &CandidateOptions) -> LayoutNetwork {
    build_network_from(program, &CandidateSet::enumerate(program, options))
}

/// Builds the constraint network of a program from a borrowed, pre-computed
/// candidate set.
///
/// Every array becomes a variable whose domain is its candidate layouts.
/// For every nest and every legal loop permutation of that nest, the
/// preferred layouts of the referenced arrays are computed; each pair of
/// arrays with a preference contributes one allowed pair to the constraint
/// between them (accumulated across nests and restructurings).
pub fn build_network_from(program: &Program, candidates: &CandidateSet) -> LayoutNetwork {
    let options = candidates.options();
    let mut network: ConstraintNetwork<Layout> = ConstraintNetwork::new();
    let mut variable_of_array: Vec<Option<VarId>> = vec![None; program.arrays().len()];
    let mut array_of_variable: Vec<ArrayId> = Vec::new();

    // Variables and domains.
    for array in program.arrays() {
        let domain = candidates.of(array.id());
        if domain.is_empty() {
            continue;
        }
        let var = network.add_variable(array.name(), domain.to_vec());
        variable_of_array[array.id().index()] = Some(var);
        array_of_variable.push(array.id());
    }

    // Constraints: one allowed pair per (nest, legal transform, array pair).
    let mut contributions = Vec::new();
    for nest in program.nests() {
        for transform in legal_permutations(nest)
            .into_iter()
            .take(options.max_transforms_per_nest.max(1))
        {
            let mut preferences: Vec<(ArrayId, Layout)> = Vec::new();
            for array in nest.referenced_arrays() {
                if let Some(layout) = preferred_layout_for_array(nest, array, &transform) {
                    preferences.push((array, layout));
                }
            }
            for i in 0..preferences.len() {
                for j in (i + 1)..preferences.len() {
                    let (array_a, layout_a) = &preferences[i];
                    let (array_b, layout_b) = &preferences[j];
                    let (Some(var_a), Some(var_b)) = (
                        variable_of_array[array_a.index()],
                        variable_of_array[array_b.index()],
                    ) else {
                        continue;
                    };
                    network
                        .add_constraint(var_a, var_b, vec![(layout_a.clone(), layout_b.clone())])
                        .expect("preferred layouts are part of the candidate domains");
                }
            }
            if !preferences.is_empty() {
                contributions.push(Contribution {
                    nest: nest.id(),
                    transform: transform.describe(),
                    preferences,
                });
            }
        }
    }

    LayoutNetwork {
        network,
        variable_of_array: Arc::new(variable_of_array),
        array_of_variable: Arc::new(array_of_variable),
        contributions: Arc::new(contributions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_csp::{Scheme, SearchEngine};
    use mlo_ir::{AccessBuilder, ProgramBuilder};

    /// Two nests that want conflicting layouts for a shared array: the
    /// classic situation the constraint network resolves globally.
    fn two_nest_program() -> Program {
        let n = 16;
        let mut b = ProgramBuilder::new("conflict");
        let a = b.array("A", vec![n, n], 4);
        let c = b.array("C", vec![n, n], 4);
        // Nest 0: A[i][j], C[i][j] with j innermost: both want row-major.
        b.nest("n0", vec![("i", 0, n), ("j", 0, n)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.write(
                c,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        // Nest 1: A[j][i]: wants column-major for A under the original order.
        b.nest("n1", vec![("i", 0, n), ("j", 0, n)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
            nest.write(
                c,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        b.build()
    }

    #[test]
    fn figure2_network_matches_paper_derivation() {
        let n = 16;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        let p = b.build();
        let ln = build_network(&p, &CandidateOptions::default());
        let net = ln.network();
        assert_eq!(net.variable_count(), 2);
        let va = ln.variable_of(q1).unwrap();
        let vb = ln.variable_of(q2).unwrap();
        assert_eq!(ln.array_of(va), q1);
        let c = net.constraint_between(va, vb).expect("constraint exists");
        // Two legal restructurings (identity + interchange) -> two pairs:
        // [(1 -1), (0 1)] and [(0 1), (1 -1)].
        assert_eq!(c.pair_count(), 2);
        // Solving gives each array one of its preferred layouts.
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(net);
        let solution = result.solution.unwrap();
        let la = solution.value(va);
        let lb = solution.value(vb);
        assert!(
            (la == &Layout::diagonal() && lb == &Layout::column_major(2))
                || (la == &Layout::column_major(2) && lb == &Layout::diagonal())
        );
        assert_eq!(ln.contributions().len(), 2);
        assert!(ln.total_domain_size() >= 4);
    }

    #[test]
    fn conflicting_nests_still_have_a_solution() {
        let p = two_nest_program();
        let ln = build_network(&p, &CandidateOptions::default());
        let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(ln.network());
        // Interchanging nest 1 lets A stay row-major program-wide, so the
        // network must be satisfiable.
        assert!(result.is_satisfiable());
        let solution = result.solution.unwrap();
        let a_var = ln.variable_of(mlo_ir::ArrayId::new(0)).unwrap();
        let c_var = ln.variable_of(mlo_ir::ArrayId::new(1)).unwrap();
        assert_eq!(solution.value(c_var), &Layout::row_major(2));
        assert_eq!(solution.value(a_var), &Layout::row_major(2));
    }

    #[test]
    fn unreferenced_arrays_still_become_variables() {
        let mut b = ProgramBuilder::new("p");
        let _u = b.array("Unused", vec![8, 8], 4);
        let p = b.build();
        let ln = build_network(&p, &CandidateOptions::default());
        assert_eq!(ln.network().variable_count(), 1);
        assert_eq!(ln.network().constraint_count(), 0);
        assert!(ln.variable_of(mlo_ir::ArrayId::new(0)).is_some());
    }

    #[test]
    fn contributions_record_transform_descriptions() {
        let p = two_nest_program();
        let ln = build_network(&p, &CandidateOptions::default());
        assert!(ln.contributions().iter().any(|c| c.transform == "identity"));
        assert!(ln
            .contributions()
            .iter()
            .any(|c| c.transform.starts_with("permute")));
        // Every contribution references a nest of the program.
        for c in ln.contributions() {
            assert!(c.nest.index() < p.nests().len());
            assert!(!c.preferences.is_empty());
        }
    }
}
