//! Enumerating the candidate layouts of every array (the domains `M_i`).

use crate::hyperplane::Layout;
use crate::locality::preferred_layout_for_array;
use mlo_ir::{legal_permutations, ArrayId, Program};
use std::sync::Arc;

/// Options controlling candidate enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateOptions {
    /// Always include the canonical row-major and column-major layouts.
    pub include_canonical: bool,
    /// For two-dimensional arrays, also include the diagonal and
    /// anti-diagonal layouts even when no access pattern asks for them.
    pub include_diagonals: bool,
    /// Cap on the number of loop permutations considered per nest (the
    /// identity is always considered).  Keeps factorially deep nests cheap.
    pub max_transforms_per_nest: usize,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        CandidateOptions {
            include_canonical: true,
            include_diagonals: false,
            max_transforms_per_nest: 8,
        }
    }
}

/// Enumerates the candidate layouts (the domain `M_i`) of one array: every
/// layout preferred by some nest under some legal restructuring, plus the
/// canonical layouts when requested.
///
/// The order is deterministic: derived layouts in program order first, then
/// the canonical additions.
pub fn candidate_layouts(
    program: &Program,
    array: ArrayId,
    options: &CandidateOptions,
) -> Vec<Layout> {
    let rank = match program.array(array) {
        Ok(decl) => decl.rank(),
        Err(_) => return Vec::new(),
    };
    let mut layouts: Vec<Layout> = Vec::new();
    fn push(layouts: &mut Vec<Layout>, l: Layout) {
        if !layouts.contains(&l) {
            layouts.push(l);
        }
    }
    for nest in program.nests() {
        if !nest.referenced_arrays().contains(&array) {
            continue;
        }
        for transform in legal_permutations(nest)
            .into_iter()
            .take(options.max_transforms_per_nest.max(1))
        {
            if let Some(layout) = preferred_layout_for_array(nest, array, &transform) {
                if layout.dim() == rank {
                    push(&mut layouts, layout);
                }
            }
        }
    }
    if options.include_canonical && rank >= 1 {
        push(&mut layouts, Layout::row_major(rank));
        push(&mut layouts, Layout::column_major(rank));
    }
    if options.include_diagonals && rank == 2 {
        push(&mut layouts, Layout::diagonal());
        push(&mut layouts, Layout::anti_diagonal());
    }
    if layouts.is_empty() && rank >= 1 {
        push(&mut layouts, Layout::row_major(rank));
    }
    layouts
}

/// The paper's Table 1 "Domain Size": the total number of candidate layouts
/// summed over every array of the program.
pub fn total_domain_size(program: &Program, options: &CandidateOptions) -> usize {
    program
        .arrays()
        .iter()
        .map(|a| candidate_layouts(program, a.id(), options).len())
        .sum()
}

/// The candidate layouts of every array of one program, enumerated once and
/// reusable across many network builds.
///
/// Candidate enumeration walks every (nest, legal restructuring) pair and is
/// the most expensive part of network construction; sessions (`mlo-core`)
/// enumerate once per program and then build networks from the borrowed set.
/// The per-array tables live behind shared `Arc` storage, so cloning a set
/// (e.g. out of a session cache) never copies a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    options: CandidateOptions,
    per_array: Arc<Vec<Vec<Layout>>>,
}

impl CandidateSet {
    /// Enumerates the candidate layouts of every array of `program`.
    pub fn enumerate(program: &Program, options: &CandidateOptions) -> Self {
        let per_array = program
            .arrays()
            .iter()
            .map(|a| candidate_layouts(program, a.id(), options))
            .collect();
        CandidateSet {
            options: *options,
            per_array: Arc::new(per_array),
        }
    }

    /// Whether `self` and `other` share the per-array candidate storage
    /// (clones do; independently enumerated sets do not).
    pub fn shares_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.per_array, &other.per_array)
    }

    /// The options the set was enumerated with.
    pub fn options(&self) -> &CandidateOptions {
        &self.options
    }

    /// The candidate layouts of one array (empty for unknown arrays).
    pub fn of(&self, array: ArrayId) -> &[Layout] {
        self.per_array
            .get(array.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of arrays covered.
    pub fn len(&self) -> usize {
        self.per_array.len()
    }

    /// Whether the set covers no arrays.
    pub fn is_empty(&self) -> bool {
        self.per_array.is_empty()
    }

    /// The paper's Table 1 "Domain Size" over the cached set.
    pub fn total_domain_size(&self) -> usize {
        self.per_array.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::{AccessBuilder, ProgramBuilder};

    fn figure2_program() -> Program {
        let n = 32;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        b.build()
    }

    #[test]
    fn figure2_candidates_contain_derived_and_canonical_layouts() {
        let p = figure2_program();
        let opts = CandidateOptions::default();
        let q1 = candidate_layouts(&p, ArrayId::new(0), &opts);
        // Derived: diagonal (original order) and column-major (interchange);
        // canonical additions: row-major (column-major already present).
        assert!(q1.contains(&Layout::diagonal()));
        assert!(q1.contains(&Layout::column_major(2)));
        assert!(q1.contains(&Layout::row_major(2)));
        assert_eq!(q1.len(), 3);
        let q2 = candidate_layouts(&p, ArrayId::new(1), &opts);
        assert!(q2.contains(&Layout::column_major(2)));
        assert!(q2.contains(&Layout::diagonal()));
        assert!(q2.contains(&Layout::row_major(2)));
        // Derived layouts come before canonical ones.
        assert_eq!(q1[0], Layout::diagonal());
    }

    #[test]
    fn diagonal_option_extends_domains() {
        let p = figure2_program();
        let opts = CandidateOptions {
            include_diagonals: true,
            ..CandidateOptions::default()
        };
        let q1 = candidate_layouts(&p, ArrayId::new(0), &opts);
        assert!(q1.contains(&Layout::anti_diagonal()));
        assert_eq!(total_domain_size(&p, &opts), q1.len() * 2);
    }

    #[test]
    fn arrays_without_references_get_a_default() {
        let mut b = ProgramBuilder::new("lonely");
        let _unused = b.array("U", vec![16, 16], 4);
        let p = b.build();
        let c = candidate_layouts(&p, ArrayId::new(0), &CandidateOptions::default());
        assert!(!c.is_empty());
        assert!(c.contains(&Layout::row_major(2)));
        // Unknown arrays produce an empty candidate list.
        assert!(candidate_layouts(&p, ArrayId::new(9), &CandidateOptions::default()).is_empty());
    }

    #[test]
    fn one_dimensional_arrays_have_single_candidate() {
        let mut b = ProgramBuilder::new("vec");
        let v = b.array("V", vec![128], 4);
        b.nest("scan", vec![("i", 0, 128)], |n| {
            n.read(v, AccessBuilder::new(1, 1).row(0, [1]).build());
        });
        let p = b.build();
        let c = candidate_layouts(&p, v, &CandidateOptions::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], Layout::row_major(1));
    }

    #[test]
    fn canonical_layouts_can_be_disabled() {
        let p = figure2_program();
        let opts = CandidateOptions {
            include_canonical: false,
            ..CandidateOptions::default()
        };
        let q1 = candidate_layouts(&p, ArrayId::new(0), &opts);
        // Only the derived layouts remain.
        assert_eq!(q1.len(), 2);
    }
}
