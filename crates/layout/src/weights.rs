//! Weighted constraint networks for layout selection (the paper's first
//! future direction).
//!
//! Section 6 of the paper proposes giving *weights* to constraints so that
//! different solutions of the same network can be distinguished.  Here every
//! allowed layout pair of the network built by [`crate::build_network`]
//! receives a weight equal to the cost (iteration count) of the nests whose
//! preferences produced it, optionally boosted when the pair is achievable
//! without restructuring the nest.  A branch-and-bound search over the
//! weighted network then returns, among all consistent layout assignments,
//! the one that favours the most expensive nests — resolving exactly the
//! ambiguity the paper observed between the base and enhanced schemes on
//! Med-Im04, Radar and Track.

use crate::apply::LayoutAssignment;
use crate::candidates::CandidateOptions;
use crate::constraints::{build_network, LayoutNetwork};
use crate::hyperplane::Layout;
use mlo_csp::weighted::OptimizeResult;
use mlo_csp::{BranchAndBound, SearchStats, VarId, WeightedNetwork};
use mlo_ir::{nest_cost, Program};
use std::collections::HashSet;
use std::time::Duration;

/// Options controlling how constraint weights are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightOptions {
    /// Weight every contribution by the cost (iteration count) of the nest
    /// that produced it; when `false` every contribution weighs 1.
    pub use_nest_cost: bool,
    /// Multiplier applied to contributions achievable with the nest's
    /// original loop order (no restructuring needed).  Values above 1 bias
    /// the optimizer towards solutions that leave loops untouched.
    pub identity_bonus: f64,
    /// Weight assigned to allowed pairs no contribution asked for (they stay
    /// legal but unattractive).
    pub default_weight: f64,
}

impl Default for WeightOptions {
    fn default() -> Self {
        WeightOptions {
            use_nest_cost: true,
            identity_bonus: 1.25,
            default_weight: 0.0,
        }
    }
}

/// A layout constraint network with per-pair weights.
///
/// Both components are `Arc`-backed: the weighted network's hard constraint
/// tables share storage with the layout network's, and cloning the whole
/// artifact is a few reference-count bumps.
#[derive(Debug, Clone)]
pub struct WeightedLayoutNetwork {
    layout_network: LayoutNetwork,
    weighted: WeightedNetwork<Layout>,
}

impl WeightedLayoutNetwork {
    /// The underlying (hard) layout network.
    pub fn layout_network(&self) -> &LayoutNetwork {
        &self.layout_network
    }

    /// The weighted constraint network.
    pub fn weighted(&self) -> &WeightedNetwork<Layout> {
        &self.weighted
    }

    /// The compiled execution kernel, shared with the layout network (the
    /// weighted network's hard constraints are the same storage, so the
    /// kernel is compiled once and reused by both).
    pub fn kernel(&self) -> &std::sync::Arc<mlo_csp::BitKernel> {
        self.weighted.network().kernel()
    }

    /// The compiled weighted execution kernel (dense weight matrices plus
    /// row-maximum aggregates, see `mlo_csp::bitset`), built lazily at most
    /// once per derived weighted network and shared by every clone.
    pub fn weight_kernel(&self) -> &std::sync::Arc<mlo_csp::WeightKernel> {
        self.weighted.weight_kernel()
    }
}

/// The outcome of weighted layout optimization.
#[derive(Debug, Clone)]
pub struct WeightedOutcome {
    /// The chosen layouts (complete: every array of the program is covered).
    pub assignment: LayoutAssignment,
    /// The total weight of the chosen solution (0 when the hard network was
    /// unsatisfiable and the row-major fallback was used).
    pub weight: f64,
    /// Whether the hard network was satisfiable.
    pub satisfiable: bool,
    /// Branch-and-bound search counters.
    pub stats: SearchStats,
    /// Time spent in the branch-and-bound search.
    pub elapsed: Duration,
}

/// Builds the weighted layout network of a program.
///
/// The hard constraints are exactly those of [`build_network`]; weights
/// accumulate over contributions: each (nest, restructuring) that prefers
/// layouts `(l_a, l_b)` for arrays `(A, B)` adds `nest_cost × bonus` to that
/// pair's weight.
pub fn build_weighted_network(
    program: &Program,
    candidates: &CandidateOptions,
    options: &WeightOptions,
) -> WeightedLayoutNetwork {
    let layout_network = build_network(program, candidates);
    let weighted = derive_weights(program, &layout_network, options);
    WeightedLayoutNetwork {
        layout_network,
        weighted,
    }
}

/// Derives just the weighted constraint network from a borrowed, pre-built
/// layout network.  Nothing is deep-copied: the result's inner
/// [`ConstraintNetwork`](mlo_csp::ConstraintNetwork) is an `Arc`-backed
/// handle sharing the layout network's storage (verifiable with
/// [`ConstraintNetwork::shares_storage`](mlo_csp::ConstraintNetwork::shares_storage)),
/// and only the per-constraint weight tables are materialized.
///
/// Sessions (`mlo-core`) cache the hard [`LayoutNetwork`] *and* the derived
/// weighted network per program, so switching between weighted and
/// unweighted strategies re-enumerates and re-derives nothing.
pub fn derive_weights(
    program: &Program,
    layout_network: &LayoutNetwork,
    options: &WeightOptions,
) -> WeightedNetwork<Layout> {
    let mut weighted =
        WeightedNetwork::new(layout_network.network().clone(), options.default_weight);

    // Contributions accumulate straight into the dense per-constraint
    // weight tables (`add_weight` adds rather than overwrites) — no
    // intermediate map of accumulated values is built and torn down on the
    // way to the kernel.  A contributed pair's final weight is exactly the
    // contribution sum: `add_weight` accumulates on top of the default a
    // fresh table starts from, so with a nonzero default the *first* touch
    // of a pair subtracts it back out (tracked by a membership set only on
    // that rare configuration — the 0.0 default path stays allocation-free).
    let mut first_touch: Option<HashSet<(VarId, VarId, Layout, Layout)>> =
        (options.default_weight != 0.0).then(HashSet::new);
    for contribution in layout_network.contributions() {
        let nest = &program.nests()[contribution.nest.index()];
        let mut weight = if options.use_nest_cost {
            nest_cost(nest) as f64
        } else {
            1.0
        };
        if contribution.transform == "identity" {
            weight *= options.identity_bonus.max(0.0);
        }
        for ((array_a, layout_a), (array_b, layout_b)) in contribution.preference_pairs() {
            let (Some(var_a), Some(var_b)) = (
                layout_network.variable_of(*array_a),
                layout_network.variable_of(*array_b),
            ) else {
                continue;
            };
            let delta = match &mut first_touch {
                Some(touched) => {
                    if touched.insert((var_a, var_b, layout_a.clone(), layout_b.clone())) {
                        weight - options.default_weight
                    } else {
                        weight
                    }
                }
                None => weight,
            };
            weighted
                .add_weight(var_a, var_b, layout_a, layout_b, delta)
                .expect("contribution pairs are allowed pairs of the hard network");
        }
    }

    weighted
}

/// Solves the weighted layout problem of a program: builds the weighted
/// network, runs branch and bound, and completes the resulting assignment
/// with row-major defaults for arrays the network does not constrain.
///
/// When the hard network is unsatisfiable the row-major fallback assignment
/// is returned with `satisfiable = false` — the same fallback the unweighted
/// optimizer uses.
pub fn weighted_assignment(
    program: &Program,
    candidates: &CandidateOptions,
    options: &WeightOptions,
) -> WeightedOutcome {
    let network = build_weighted_network(program, candidates, options);
    let result: OptimizeResult<Layout> = BranchAndBound::new().optimize(network.weighted());

    let mut assignment = LayoutAssignment::new();
    let satisfiable = result.solution.is_some();
    if let Some(solution) = &result.solution {
        for var in network.layout_network().network().variables() {
            let array = network.layout_network().array_of(var);
            assignment.set(array, solution.value(var).clone());
        }
    }
    for array in program.arrays() {
        if !assignment.contains(array.id()) {
            assignment.set(array.id(), Layout::row_major(array.rank()));
        }
    }

    WeightedOutcome {
        assignment,
        weight: if satisfiable { result.best_weight } else { 0.0 },
        satisfiable,
        stats: result.stats,
        elapsed: result.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{assignment_score, ideal_score};
    use mlo_ir::{AccessBuilder, ProgramBuilder};

    #[test]
    fn weighted_networks_reuse_the_layout_network_kernel() {
        // Deriving weights shares the hard network's storage, so the
        // compiled execution kernel is built once and shared: layout
        // network, weighted network and every clone return the same Arc.
        let mut b = ProgramBuilder::new("kernel_reuse");
        let x = b.array("X", vec![8, 8], 4);
        b.nest("n", vec![("i", 0, 8), ("j", 0, 8)], |nest| {
            nest.read(
                x,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        let program = b.build();
        let artifact = build_weighted_network(
            &program,
            &CandidateOptions::default(),
            &WeightOptions::default(),
        );
        let from_layout = std::sync::Arc::clone(artifact.layout_network().kernel());
        assert!(std::sync::Arc::ptr_eq(&from_layout, artifact.kernel()));
        let clone = artifact.clone();
        assert!(std::sync::Arc::ptr_eq(&from_layout, clone.kernel()));
    }

    /// A shared array wanted row-major by a huge nest and column-major by a
    /// tiny one, with both nests pinned to their original loop order by an
    /// anti-diagonal dependence (so restructuring cannot dissolve the
    /// conflict).  The weighted solver must side with the huge nest.
    fn conflicting_program(big: i64, small: i64) -> Program {
        let mut b = ProgramBuilder::new("weighted_conflict");
        let a = b.array("A", vec![64, 64], 4);
        let pin = |nest: &mut mlo_ir::NestBuilder| {
            // A write/read pair with dependence distance (1, -1) makes the
            // interchange illegal, pinning the nest's loop order.
            nest.write(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .offset(0, -1)
                    .offset(1, 1)
                    .build(),
            );
        };
        b.nest("big", vec![("i", 0, big), ("j", 0, big)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            pin(nest);
        });
        b.nest("small", vec![("i", 0, small), ("j", 0, small)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
            pin(nest);
        });
        b.build()
    }

    #[test]
    fn weights_accumulate_over_contributions() {
        let p = conflicting_program(32, 8);
        let network =
            build_weighted_network(&p, &CandidateOptions::default(), &WeightOptions::default());
        // The network has a single variable pair... actually a single array,
        // so there is no binary constraint at all; weights are empty but the
        // structure is still well-formed.
        assert!(network.weighted().network().variable_count() >= 1);
    }

    #[test]
    fn costly_nest_wins_under_nest_cost_weighting() {
        // Two arrays sharing two nests of very different cost, wanting
        // incompatible layout pairs.
        let mut b = ProgramBuilder::new("two_arrays");
        let x = b.array("X", vec![64, 64], 4);
        let y = b.array("Y", vec![64, 64], 4);
        // Big nest: X[i][j], Y[i][j] -> both row-major (identity) or both
        // column-major (interchange).
        b.nest("big", vec![("i", 0, 64), ("j", 0, 64)], |nest| {
            nest.read(
                x,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                y,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        // Small nest: X[j][i], Y[i][j] -> X column-major, Y row-major
        // (identity) or the swap (interchange).
        b.nest("small", vec![("i", 0, 4), ("j", 0, 4)], |nest| {
            nest.read(
                x,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
            nest.read(
                y,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        let p = b.build();
        let outcome =
            weighted_assignment(&p, &CandidateOptions::default(), &WeightOptions::default());
        assert!(outcome.satisfiable);
        // X and Y must agree with the big nest: identical canonical layouts.
        let lx = outcome.assignment.layout_of(x).unwrap();
        let ly = outcome.assignment.layout_of(y).unwrap();
        assert_eq!(
            lx, ly,
            "the costly nest's preference must win: {lx} vs {ly}"
        );
        assert!(outcome.weight > 0.0);
        assert!(outcome.stats.nodes_visited > 0);
    }

    #[test]
    fn assignment_is_always_complete() {
        let p = conflicting_program(16, 4);
        let outcome =
            weighted_assignment(&p, &CandidateOptions::default(), &WeightOptions::default());
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
    }

    #[test]
    fn weighted_solution_is_no_worse_than_heuristic_on_figure2() {
        let n = 16;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        let p = b.build();
        let outcome =
            weighted_assignment(&p, &CandidateOptions::default(), &WeightOptions::default());
        assert!(outcome.satisfiable);
        assert_eq!(assignment_score(&p, &outcome.assignment), ideal_score(&p));
    }

    #[test]
    fn nonzero_default_weight_does_not_inflate_contributed_pairs() {
        // Regression: accumulating straight into dense tables must not add
        // contributions ON TOP of a nonzero default — a contributed pair's
        // weight is exactly the contribution sum, and only pairs no
        // contribution asked for read the default.
        let mut b = ProgramBuilder::new("default_weight");
        let x = b.array("X", vec![16, 16], 4);
        let y = b.array("Y", vec![16, 16], 4);
        b.nest("n", vec![("i", 0, 16), ("j", 0, 16)], |nest| {
            nest.read(
                x,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                y,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        let program = b.build();
        let candidates = CandidateOptions::default();
        let zero = build_weighted_network(
            &program,
            &candidates,
            &WeightOptions {
                default_weight: 0.0,
                ..WeightOptions::default()
            },
        );
        let one = build_weighted_network(
            &program,
            &candidates,
            &WeightOptions {
                default_weight: 1.0,
                ..WeightOptions::default()
            },
        );
        let mut contributed = 0usize;
        let mut uncontributed = 0usize;
        for (ci, c) in zero.weighted().network().constraints().iter().enumerate() {
            for &pair in c.allowed_pairs() {
                let base = zero.weighted().weight_of(ci, pair);
                let with_default = one.weighted().weight_of(ci, pair);
                if base != 0.0 {
                    contributed += 1;
                    assert_eq!(with_default, base, "contributed pair {pair:?} inflated");
                } else {
                    uncontributed += 1;
                    assert_eq!(with_default, 1.0, "uncontributed pair {pair:?}");
                }
            }
        }
        assert!(contributed > 0, "the nest contributes pairs");
        // Both layouts agreeing twice (row/col) means at least the
        // contributed subset exists; uncontributed pairs may or may not,
        // depending on candidate enumeration — no assertion needed beyond
        // the reads above.
        let _ = uncontributed;
    }

    #[test]
    fn unit_weights_still_produce_valid_solutions() {
        let p = conflicting_program(8, 8);
        let options = WeightOptions {
            use_nest_cost: false,
            identity_bonus: 1.0,
            default_weight: 0.0,
        };
        let outcome = weighted_assignment(&p, &CandidateOptions::default(), &options);
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
    }

    #[test]
    fn default_options_are_sane() {
        let o = WeightOptions::default();
        assert!(o.use_nest_cost);
        assert!(o.identity_bonus >= 1.0);
        assert_eq!(o.default_weight, 0.0);
    }
}
