//! Static spatial-locality scoring.
//!
//! A cheap cost model used by the heuristic baseline and for quick
//! comparisons between layout assignments without running the cache
//! simulator: a reference scores its nest's iteration count when the chosen
//! layout keeps its innermost-loop movement inside one hyperplane block
//! (spatial or temporal locality), and zero otherwise.

use crate::apply::LayoutAssignment;
use crate::locality::has_spatial_locality;
use mlo_ir::{legal_permutations, LoopNest, LoopTransform, Program};

/// The locality score of one nest under a given restructuring and layout
/// assignment: the number of dynamic references that enjoy locality.
///
/// References to arrays without an assigned layout are counted as having no
/// locality (the conservative choice).
pub fn nest_score(
    nest: &LoopNest,
    transform: &LoopTransform,
    assignment: &LayoutAssignment,
) -> i64 {
    let iterations = nest.iteration_count();
    let mut score = 0i64;
    for reference in nest.references() {
        let Some(layout) = assignment.layout_of(reference.array()) else {
            continue;
        };
        if has_spatial_locality(reference.access(), transform, layout) {
            score += iterations;
        }
    }
    score
}

/// The best achievable locality score of a nest over its legal
/// restructurings, together with the transform achieving it.
pub fn best_nest_score(nest: &LoopNest, assignment: &LayoutAssignment) -> (LoopTransform, i64) {
    let mut best: Option<(LoopTransform, i64)> = None;
    for transform in legal_permutations(nest) {
        let score = nest_score(nest, &transform, assignment);
        let better = match &best {
            None => true,
            Some((_, best_score)) => score > *best_score,
        };
        if better {
            best = Some((transform, score));
        }
    }
    best.unwrap_or((LoopTransform::identity(nest.depth()), 0))
}

/// The program-wide locality score of a layout assignment: the sum over all
/// nests of the best per-nest score (each nest may pick its own legal
/// restructuring, exactly as a compiler applying the layouts would).
pub fn assignment_score(program: &Program, assignment: &LayoutAssignment) -> i64 {
    program
        .nests()
        .iter()
        .map(|nest| best_nest_score(nest, assignment).1)
        .sum()
}

/// The maximum possible score of a program: every dynamic reference enjoys
/// locality.  Useful to report scores as fractions.
pub fn ideal_score(program: &Program) -> i64 {
    program
        .nests()
        .iter()
        .map(|n| n.iteration_count() * n.references().len() as i64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Layout;
    use mlo_ir::{AccessBuilder, ArrayId, ProgramBuilder};

    fn figure2_program() -> Program {
        let n = 8;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        b.build()
    }

    #[test]
    fn perfect_assignment_reaches_ideal_score() {
        let p = figure2_program();
        let mut asg = LayoutAssignment::new();
        asg.set(ArrayId::new(0), Layout::diagonal());
        asg.set(ArrayId::new(1), Layout::column_major(2));
        assert_eq!(assignment_score(&p, &asg), ideal_score(&p));
        assert_eq!(ideal_score(&p), 8 * 8 * 2);
    }

    #[test]
    fn poor_assignment_scores_lower() {
        let p = figure2_program();
        let mut good = LayoutAssignment::new();
        good.set(ArrayId::new(0), Layout::diagonal());
        good.set(ArrayId::new(1), Layout::column_major(2));
        let mut poor = LayoutAssignment::new();
        poor.set(ArrayId::new(0), Layout::row_major(2));
        poor.set(ArrayId::new(1), Layout::row_major(2));
        assert!(assignment_score(&p, &poor) < assignment_score(&p, &good));
    }

    #[test]
    fn missing_layouts_score_zero() {
        let p = figure2_program();
        let empty = LayoutAssignment::new();
        assert_eq!(assignment_score(&p, &empty), 0);
        let nest = &p.nests()[0];
        assert_eq!(nest_score(nest, &LoopTransform::identity(2), &empty), 0);
    }

    #[test]
    fn best_nest_score_considers_interchange() {
        // With Q1 forced to column-major, the original order gives Q1 no
        // locality but interchanging does; best_nest_score must find it.
        let p = figure2_program();
        let nest = &p.nests()[0];
        let mut asg = LayoutAssignment::new();
        asg.set(ArrayId::new(0), Layout::column_major(2));
        asg.set(ArrayId::new(1), Layout::diagonal());
        let identity_score = nest_score(nest, &LoopTransform::identity(2), &asg);
        let (best_transform, best) = best_nest_score(nest, &asg);
        assert!(best > identity_score);
        assert!(!best_transform.is_identity());
        assert_eq!(best, ideal_score(&p));
    }
}
