//! Dynamic memory layouts (the paper's second future direction).
//!
//! Section 6 of the paper proposes layouts that *change during execution*
//! based on the requirements of different program segments.  This module
//! implements the standard formulation of that idea (in the spirit of the
//! paper's reference \[5\], Kandemir & Kadayif): the program's nest sequence
//! is partitioned into contiguous **segments**; each array may use a
//! different layout in each segment; switching layouts between segments
//! costs a re-layout copy proportional to the array's size.  For every
//! array, a shortest-path dynamic program over `(segment, candidate layout)`
//! states picks the layout sequence minimizing
//!
//! ```text
//!     Σ_segments  miss_cost(array, segment, layout)
//!   + Σ_switches  copy_cost(array)
//! ```
//!
//! where `miss_cost` counts the dynamic references to the array in the
//! segment that *lack* spatial locality under the layout (using the same
//! static locality model as [`crate::quality`]), and `copy_cost` charges one
//! read and one write per element.  The per-array decomposition is exact for
//! the static locality model because the model scores each reference against
//! its own array's layout only.

use crate::apply::LayoutAssignment;
use crate::candidates::{candidate_layouts, CandidateOptions};
use crate::hyperplane::Layout;
use crate::locality::has_spatial_locality;
use mlo_ir::{legal_permutations, ArrayId, LoopNest, NestId, Program};
use std::collections::HashMap;
use std::fmt;

/// A partition of a program's nests into contiguous segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    segments: Vec<Vec<NestId>>,
}

impl Segmentation {
    /// Builds a segmentation from explicit nest groups.
    ///
    /// # Panics
    ///
    /// Panics when the groups are not a partition of `0..nest_count` in
    /// program order (every nest exactly once, contiguous, in order).
    pub fn new(program: &Program, segments: Vec<Vec<NestId>>) -> Self {
        let mut expected = 0usize;
        for segment in &segments {
            for nest in segment {
                assert_eq!(
                    nest.index(),
                    expected,
                    "segments must cover nests contiguously in program order"
                );
                expected += 1;
            }
        }
        assert_eq!(
            expected,
            program.nests().len(),
            "segments must cover every nest of the program"
        );
        Segmentation { segments }
    }

    /// Splits the program into segments of at most `window` consecutive
    /// nests (the last segment may be shorter).
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn by_window(program: &Program, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let ids: Vec<NestId> = program.nests().iter().map(LoopNest::id).collect();
        let segments = ids.chunks(window).map(<[NestId]>::to_vec).collect();
        Segmentation { segments }
    }

    /// One segment containing every nest: dynamic selection degenerates to
    /// the static problem.
    pub fn single(program: &Program) -> Self {
        Self::by_window(program, program.nests().len().max(1))
    }

    /// The segments, in program order.
    pub fn segments(&self) -> &[Vec<NestId>] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments (a program without nests).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Options of the dynamic-layout optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicOptions {
    /// Candidate enumeration options (shared with the static optimizer).
    pub candidates: CandidateOptions,
    /// Cost charged per element copied when an array changes layout between
    /// segments, in the same unit as a missed reference (one main-memory
    /// transfer).  The default of 2.0 charges a read and a write.
    pub copy_cost_per_element: f64,
    /// Cost of one reference without spatial locality.
    pub miss_cost: f64,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions {
            candidates: CandidateOptions::default(),
            copy_cost_per_element: 2.0,
            miss_cost: 1.0,
        }
    }
}

/// The layout schedule of one array: one layout per segment plus the points
/// where it changes.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySchedule {
    /// The array.
    pub array: ArrayId,
    /// The chosen layout in every segment (same length as the
    /// segmentation).
    pub per_segment: Vec<Layout>,
    /// Indices of segment boundaries (between segment `i` and `i + 1`) where
    /// the layout changes and a re-layout copy is required.
    pub switch_points: Vec<usize>,
    /// Total cost of this schedule (miss cost plus copy cost).
    pub cost: f64,
    /// Cost of the best *static* (single-layout) schedule for comparison.
    pub static_cost: f64,
}

impl ArraySchedule {
    /// Whether the array ever changes layout.
    pub fn is_dynamic(&self) -> bool {
        !self.switch_points.is_empty()
    }

    /// The benefit of going dynamic: static cost minus dynamic cost (never
    /// negative, because the static schedule is one of the candidates).
    pub fn benefit(&self) -> f64 {
        (self.static_cost - self.cost).max(0.0)
    }
}

/// A complete dynamic-layout plan for a program.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicPlan {
    /// The segmentation the plan was computed for.
    pub segmentation: Segmentation,
    /// One schedule per array (in array-id order).
    pub schedules: Vec<ArraySchedule>,
}

impl DynamicPlan {
    /// The schedule of one array, if the array exists.
    pub fn schedule_of(&self, array: ArrayId) -> Option<&ArraySchedule> {
        self.schedules.iter().find(|s| s.array == array)
    }

    /// The static [`LayoutAssignment`] in force during one segment.
    ///
    /// # Panics
    ///
    /// Panics when the segment index is out of range.
    pub fn assignment_for_segment(&self, segment: usize) -> LayoutAssignment {
        assert!(segment < self.segmentation.len(), "segment out of range");
        let mut assignment = LayoutAssignment::new();
        for schedule in &self.schedules {
            assignment.set(schedule.array, schedule.per_segment[segment].clone());
        }
        assignment
    }

    /// Arrays whose layout changes at least once.
    pub fn dynamic_arrays(&self) -> Vec<ArrayId> {
        self.schedules
            .iter()
            .filter(|s| s.is_dynamic())
            .map(|s| s.array)
            .collect()
    }

    /// Total plan cost (sum over arrays).
    pub fn total_cost(&self) -> f64 {
        self.schedules.iter().map(|s| s.cost).sum()
    }

    /// Total cost of the best static plan (sum over arrays).
    pub fn total_static_cost(&self) -> f64 {
        self.schedules.iter().map(|s| s.static_cost).sum()
    }

    /// Overall benefit of dynamic layouts over static ones.
    pub fn total_benefit(&self) -> f64 {
        (self.total_static_cost() - self.total_cost()).max(0.0)
    }
}

impl fmt::Display for DynamicPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dynamic plan over {} segments: cost {:.0} (static {:.0}, benefit {:.0})",
            self.segmentation.len(),
            self.total_cost(),
            self.total_static_cost(),
            self.total_benefit()
        )?;
        for s in &self.schedules {
            if s.is_dynamic() {
                writeln!(
                    f,
                    "  Q{} switches at segment boundaries {:?}",
                    s.array.index(),
                    s.switch_points
                )?;
            }
        }
        Ok(())
    }
}

/// Computes the optimal dynamic-layout plan of a program for a given
/// segmentation.
pub fn dynamic_plan(
    program: &Program,
    segmentation: &Segmentation,
    options: &DynamicOptions,
) -> DynamicPlan {
    let mut schedules = Vec::new();
    for array in program.arrays() {
        schedules.push(schedule_array(program, segmentation, array.id(), options));
    }
    DynamicPlan {
        segmentation: segmentation.clone(),
        schedules,
    }
}

/// The miss cost of one array in one segment under one layout: the number of
/// dynamic references to the array that lack spatial locality under the
/// layout, taking for each nest the restructuring that is *best for this
/// array* (optimistic, consistent with the per-array decomposition).
fn segment_miss_cost(
    program: &Program,
    segment: &[NestId],
    array: ArrayId,
    layout: &Layout,
    options: &DynamicOptions,
) -> f64 {
    let mut cost = 0.0;
    for &nest_id in segment {
        let nest = &program.nests()[nest_id.index()];
        let references: Vec<_> = nest.references_to(array);
        if references.is_empty() {
            continue;
        }
        let iterations = nest.iteration_count() as f64;
        // Best legal restructuring for this array: the one minimizing the
        // number of its references without locality.
        let mut best_missing = usize::MAX;
        for transform in legal_permutations(nest) {
            let missing = references
                .iter()
                .filter(|r| !has_spatial_locality(r.access(), &transform, layout))
                .count();
            best_missing = best_missing.min(missing);
        }
        cost += best_missing as f64 * iterations * options.miss_cost;
    }
    cost
}

/// Optimal layout schedule of one array via dynamic programming over
/// `(segment, candidate layout)`.
fn schedule_array(
    program: &Program,
    segmentation: &Segmentation,
    array: ArrayId,
    options: &DynamicOptions,
) -> ArraySchedule {
    let candidates = candidate_layouts(program, array, &options.candidates);
    let candidates = if candidates.is_empty() {
        vec![Layout::row_major(
            program.array(array).map(|a| a.rank()).unwrap_or(1),
        )]
    } else {
        candidates
    };
    let segments = segmentation.segments();
    let element_count = program
        .array(array)
        .map(mlo_ir::ArrayDecl::element_count)
        .unwrap_or(0) as f64;
    let copy_cost = element_count * options.copy_cost_per_element;

    if segments.is_empty() {
        return ArraySchedule {
            array,
            per_segment: Vec::new(),
            switch_points: Vec::new(),
            cost: 0.0,
            static_cost: 0.0,
        };
    }

    // miss[s][c]: miss cost of candidate c in segment s.
    let miss: Vec<Vec<f64>> = segments
        .iter()
        .map(|segment| {
            candidates
                .iter()
                .map(|layout| segment_miss_cost(program, segment, array, layout, options))
                .collect()
        })
        .collect();

    // DP over segments.  best[s][c]: minimal cost of segments 0..=s ending
    // with candidate c in segment s; parent[s][c]: the candidate chosen in
    // segment s-1 on that best path.
    let k = candidates.len();
    let mut best = vec![vec![0.0f64; k]; segments.len()];
    let mut parent: Vec<Vec<usize>> = vec![vec![0; k]; segments.len()];
    best[0].clone_from_slice(&miss[0]);
    for s in 1..segments.len() {
        for c in 0..k {
            let mut best_prev = f64::INFINITY;
            let mut best_prev_c = 0usize;
            for (p, &prev) in best[s - 1].iter().enumerate() {
                let transition = if p == c { 0.0 } else { copy_cost };
                let total = prev + transition;
                if total < best_prev {
                    best_prev = total;
                    best_prev_c = p;
                }
            }
            best[s][c] = best_prev + miss[s][c];
            parent[s][c] = best_prev_c;
        }
    }

    // Reconstruct the optimal path.
    let last = segments.len() - 1;
    let mut end = (0..k)
        .min_by(|&a, &b| best[last][a].total_cmp(&best[last][b]))
        .expect("at least one candidate");
    let cost = best[last][end];
    let mut chosen_indices = vec![0usize; segments.len()];
    chosen_indices[last] = end;
    for s in (1..=last).rev() {
        end = parent[s][end];
        chosen_indices[s - 1] = end;
    }
    let per_segment: Vec<Layout> = chosen_indices
        .iter()
        .map(|&c| candidates[c].clone())
        .collect();
    let switch_points: Vec<usize> = (0..last)
        .filter(|&s| chosen_indices[s] != chosen_indices[s + 1])
        .collect();

    // Best static schedule: one candidate used everywhere.
    let static_cost = (0..k)
        .map(|c| (0..segments.len()).map(|s| miss[s][c]).sum::<f64>())
        .fold(f64::INFINITY, f64::min);

    ArraySchedule {
        array,
        per_segment,
        switch_points,
        cost,
        static_cost,
    }
}

/// Caches per-array schedules keyed by segmentation size — convenience for
/// sweeping segment windows in benchmarks.
pub fn sweep_windows(
    program: &Program,
    windows: &[usize],
    options: &DynamicOptions,
) -> HashMap<usize, DynamicPlan> {
    windows
        .iter()
        .filter(|&&w| w > 0)
        .map(|&w| {
            (
                w,
                dynamic_plan(program, &Segmentation::by_window(program, w), options),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::{AccessBuilder, ProgramBuilder};

    /// First half of the program sweeps A row-wise, second half column-wise;
    /// each nest is pinned to its original loop order by a dependence with
    /// distance `(1, -1)` so restructuring cannot hide the phase change, and
    /// the pinning references themselves follow the phase's direction.
    fn phase_change_program(n: i64, nests_per_phase: usize) -> Program {
        let mut b = ProgramBuilder::new("phase_change");
        let a = b.array("A", vec![n, n], 4);
        // Row-wise pin: write A[i][j], read A[i-1][j+1] (distance (1, -1)).
        let pin_row = |nest: &mut mlo_ir::NestBuilder| {
            nest.write(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .offset(0, -1)
                    .offset(1, 1)
                    .build(),
            );
        };
        // Column-wise pin: write A[j][i], read A[j+1][i-1] (same distance).
        let pin_col = |nest: &mut mlo_ir::NestBuilder| {
            nest.write(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
            nest.read(
                mlo_ir::ArrayId::new(0),
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .offset(0, 1)
                    .offset(1, -1)
                    .build(),
            );
        };
        for k in 0..nests_per_phase {
            b.nest(
                format!("row_phase{k}"),
                vec![("i", 0, n), ("j", 0, n)],
                |nest| {
                    nest.read(
                        a,
                        AccessBuilder::new(2, 2)
                            .row(0, [1, 0])
                            .row(1, [0, 1])
                            .build(),
                    );
                    pin_row(nest);
                },
            );
        }
        for k in 0..nests_per_phase {
            b.nest(
                format!("col_phase{k}"),
                vec![("i", 0, n), ("j", 0, n)],
                |nest| {
                    nest.read(
                        a,
                        AccessBuilder::new(2, 2)
                            .row(0, [0, 1])
                            .row(1, [1, 0])
                            .build(),
                    );
                    pin_col(nest);
                },
            );
        }
        b.build()
    }

    #[test]
    fn segmentation_constructors() {
        let p = phase_change_program(8, 2);
        let by_two = Segmentation::by_window(&p, 2);
        assert_eq!(by_two.len(), 2);
        assert_eq!(by_two.segments()[0].len(), 2);
        let single = Segmentation::single(&p);
        assert_eq!(single.len(), 1);
        assert!(!single.is_empty());
        let explicit = Segmentation::new(
            &p,
            vec![
                vec![NestId::new(0)],
                vec![NestId::new(1), NestId::new(2)],
                vec![NestId::new(3)],
            ],
        );
        assert_eq!(explicit.len(), 3);
    }

    #[test]
    #[should_panic(expected = "every nest")]
    fn segmentation_must_cover_all_nests() {
        let p = phase_change_program(8, 2);
        let _ = Segmentation::new(&p, vec![vec![NestId::new(0)]]);
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn segmentation_must_be_in_order() {
        let p = phase_change_program(8, 1);
        let _ = Segmentation::new(&p, vec![vec![NestId::new(1)], vec![NestId::new(0)]]);
    }

    #[test]
    fn cheap_copies_make_the_layout_switch() {
        // Big iteration counts, small array: switching pays off.
        let p = phase_change_program(48, 2);
        let segmentation = Segmentation::by_window(&p, 2);
        let options = DynamicOptions::default();
        let plan = dynamic_plan(&p, &segmentation, &options);
        let a = mlo_ir::ArrayId::new(0);
        let schedule = plan.schedule_of(a).expect("A is in the plan");
        assert!(
            schedule.is_dynamic(),
            "the phase change should trigger a layout switch: {plan}"
        );
        assert_eq!(schedule.switch_points, vec![0]);
        assert_eq!(schedule.per_segment[0], Layout::row_major(2));
        assert_eq!(schedule.per_segment[1], Layout::column_major(2));
        assert!(schedule.benefit() > 0.0);
        assert!(plan.total_benefit() > 0.0);
        assert_eq!(plan.dynamic_arrays(), vec![a]);
    }

    #[test]
    fn expensive_copies_keep_the_layout_static() {
        let p = phase_change_program(16, 1);
        let segmentation = Segmentation::by_window(&p, 1);
        let options = DynamicOptions {
            copy_cost_per_element: 1e9,
            ..DynamicOptions::default()
        };
        let plan = dynamic_plan(&p, &segmentation, &options);
        let schedule = plan.schedule_of(mlo_ir::ArrayId::new(0)).unwrap();
        assert!(!schedule.is_dynamic());
        // With no switch the dynamic cost equals the best static cost.
        assert!((schedule.cost - schedule.static_cost).abs() < 1e-9);
        assert_eq!(plan.total_benefit(), 0.0);
    }

    #[test]
    fn single_segment_degenerates_to_static_selection() {
        let p = phase_change_program(16, 2);
        let plan = dynamic_plan(&p, &Segmentation::single(&p), &DynamicOptions::default());
        for schedule in &plan.schedules {
            assert!(!schedule.is_dynamic());
            assert_eq!(schedule.per_segment.len(), 1);
            assert!((schedule.cost - schedule.static_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn dynamic_cost_never_exceeds_static_cost() {
        for window in [1usize, 2, 3] {
            let p = phase_change_program(24, 3);
            let plan = dynamic_plan(
                &p,
                &Segmentation::by_window(&p, window),
                &DynamicOptions::default(),
            );
            for schedule in &plan.schedules {
                assert!(
                    schedule.cost <= schedule.static_cost + 1e-9,
                    "dynamic must never lose to static (window {window})"
                );
            }
        }
    }

    #[test]
    fn per_segment_assignments_are_complete() {
        let p = phase_change_program(16, 2);
        let segmentation = Segmentation::by_window(&p, 2);
        let plan = dynamic_plan(&p, &segmentation, &DynamicOptions::default());
        for s in 0..segmentation.len() {
            let assignment = plan.assignment_for_segment(s);
            for array in p.arrays() {
                assert!(assignment.contains(array.id()));
            }
        }
    }

    #[test]
    fn window_sweep_produces_one_plan_per_window() {
        let p = phase_change_program(16, 2);
        let plans = sweep_windows(&p, &[1, 2, 0, 4], &DynamicOptions::default());
        assert_eq!(plans.len(), 3);
        assert!(plans.contains_key(&1));
        assert!(plans.contains_key(&2));
        assert!(plans.contains_key(&4));
        // Finer segmentation can only help (or tie).
        assert!(plans[&1].total_cost() <= plans[&4].total_cost() + 1e-9);
    }

    #[test]
    fn display_mentions_switching_arrays() {
        let p = phase_change_program(48, 2);
        let plan = dynamic_plan(
            &p,
            &Segmentation::by_window(&p, 2),
            &DynamicOptions::default(),
        );
        let text = plan.to_string();
        assert!(text.contains("dynamic plan"));
        assert!(text.contains("switches"));
    }
}
