//! Deriving preferred layouts from access patterns.
//!
//! Section 2 of the paper: for spatial locality, two successive iterations
//! `I` and `I'` of the innermost loop must access elements `d1` and `d2`
//! that lie on the same layout hyperplane, i.e. `y · (d2 − d1) = 0`.  For an
//! affine access `A·I + o`, the movement `d2 − d1` per innermost-loop step
//! is simply the innermost column of the (transformed) access matrix, so the
//! preferred layout hyperplanes are an integer basis of the kernel of that
//! direction.

use crate::hyperplane::{Hyperplane, Layout};
use mlo_ir::{AffineAccess, ArrayId, LoopNest, LoopTransform};
use mlo_linalg::{kernel_basis, IntMat, IntVec};

/// The preferred layout of the array accessed by `access` when the
/// enclosing nest is restructured by `transform`.
///
/// Returns `None` when the access does not move in the data space as the
/// innermost loop advances (pure temporal locality — every layout is equally
/// good) or when the array is one-dimensional (layout choice is trivial).
pub fn preferred_layout(access: &AffineAccess, transform: &LoopTransform) -> Option<Layout> {
    let transformed = access
        .transformed(transform.inverse())
        .expect("transform depth matches access depth");
    if transformed.nest_depth() == 0 || transformed.array_rank() <= 1 {
        return None;
    }
    let direction = transformed.innermost_direction();
    layout_orthogonal_to(&[direction])
}

/// The preferred layout of `array` within `nest` under `transform`,
/// combining every reference the nest makes to that array.
///
/// The layout must keep *all* the per-reference innermost movement
/// directions inside one hyperplane block when possible; if the directions
/// are too many to be simultaneously satisfied, the function falls back to
/// the direction of the first moving reference (the same greedy choice the
/// original heuristic frameworks make).
pub fn preferred_layout_for_array(
    nest: &LoopNest,
    array: ArrayId,
    transform: &LoopTransform,
) -> Option<Layout> {
    let refs = nest.references_to(array);
    if refs.is_empty() {
        return None;
    }
    let mut directions: Vec<IntVec> = Vec::new();
    for r in refs {
        let transformed = r
            .access()
            .transformed(transform.inverse())
            .expect("transform depth matches access depth");
        if transformed.array_rank() <= 1 || transformed.nest_depth() == 0 {
            continue;
        }
        let d = transformed.innermost_direction();
        if !d.is_zero() && !directions.contains(&d) {
            directions.push(d);
        }
    }
    if directions.is_empty() {
        return None;
    }
    // Try to satisfy all directions at once, then progressively fewer.
    for take in (1..=directions.len()).rev() {
        if let Some(layout) = layout_orthogonal_to(&directions[..take]) {
            return Some(layout);
        }
    }
    None
}

/// Builds the layout whose hyperplanes are orthogonal to every direction in
/// `directions`, or `None` when only the zero vector is orthogonal to all of
/// them (no non-trivial layout exists).
pub fn layout_orthogonal_to(directions: &[IntVec]) -> Option<Layout> {
    let moving: Vec<IntVec> = directions
        .iter()
        .filter(|d| !d.is_zero())
        .cloned()
        .collect();
    if moving.is_empty() {
        return None;
    }
    let m = IntMat::from_rows(moving);
    let basis = kernel_basis(&m);
    if basis.is_empty() {
        return None;
    }
    let hyperplanes: Vec<Hyperplane> = basis.into_iter().filter_map(Hyperplane::try_new).collect();
    if hyperplanes.is_empty() {
        None
    } else {
        Some(Layout::new(hyperplanes))
    }
}

/// Whether `layout` gives the reference spatial locality in the innermost
/// loop of the (transformed) nest: the per-iteration movement stays within
/// one hyperplane block.  References that do not move at all count as having
/// locality (temporal reuse).
pub fn has_spatial_locality(
    access: &AffineAccess,
    transform: &LoopTransform,
    layout: &Layout,
) -> bool {
    let transformed = access
        .transformed(transform.inverse())
        .expect("transform depth matches access depth");
    if transformed.nest_depth() == 0 {
        return true;
    }
    let direction = transformed.innermost_direction();
    if direction.is_zero() {
        return true;
    }
    if transformed.array_rank() != layout.dim() {
        return false;
    }
    layout.preserves_direction(&direction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::{AccessBuilder, AccessKind, Loop, LoopNest, NestId};

    fn figure2_nest() -> LoopNest {
        let mut nest = LoopNest::new(
            NestId::new(0),
            "figure2",
            vec![Loop::new("i1", 0, 64), Loop::new("i2", 0, 64)],
        );
        // Q1[i1+i2][i2]
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [0, 1])
                .build(),
            AccessKind::Read,
        );
        // Q2[i1+i2][i1]
        nest.add_reference(
            ArrayId::new(1),
            AccessBuilder::new(2, 2)
                .row(0, [1, 1])
                .row(1, [1, 0])
                .build(),
            AccessKind::Read,
        );
        nest
    }

    #[test]
    fn paper_figure2_original_order() {
        let nest = figure2_nest();
        let id = LoopTransform::identity(2);
        assert_eq!(
            preferred_layout_for_array(&nest, ArrayId::new(0), &id),
            Some(Layout::diagonal())
        );
        assert_eq!(
            preferred_layout_for_array(&nest, ArrayId::new(1), &id),
            Some(Layout::column_major(2))
        );
    }

    #[test]
    fn paper_figure2_interchanged() {
        // Section 2: after interchanging the two loops, the best layouts
        // become (0 1) for Q1 and (1 -1) for Q2.
        let nest = figure2_nest();
        let interchange = LoopTransform::permutation(&[1, 0]);
        assert_eq!(
            preferred_layout_for_array(&nest, ArrayId::new(0), &interchange),
            Some(Layout::column_major(2))
        );
        assert_eq!(
            preferred_layout_for_array(&nest, ArrayId::new(1), &interchange),
            Some(Layout::diagonal())
        );
    }

    #[test]
    fn row_major_access_prefers_row_major() {
        // A[i][j] traversed with j innermost prefers (1 0).
        let access = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 1])
            .build();
        let layout = preferred_layout(&access, &LoopTransform::identity(2)).unwrap();
        assert_eq!(layout, Layout::row_major(2));
        assert!(has_spatial_locality(
            &access,
            &LoopTransform::identity(2),
            &layout
        ));
        assert!(!has_spatial_locality(
            &access,
            &LoopTransform::identity(2),
            &Layout::column_major(2)
        ));
    }

    #[test]
    fn temporal_reuse_has_no_preference() {
        // A[i][0] does not move with the innermost loop j.
        let access = AccessBuilder::new(2, 2)
            .row(0, [1, 0])
            .row(1, [0, 0])
            .build();
        assert_eq!(preferred_layout(&access, &LoopTransform::identity(2)), None);
        // But it counts as having locality under any layout.
        assert!(has_spatial_locality(
            &access,
            &LoopTransform::identity(2),
            &Layout::diagonal()
        ));
    }

    #[test]
    fn one_dimensional_arrays_have_no_preference() {
        let access = AccessBuilder::new(1, 2).row(0, [0, 1]).build();
        assert_eq!(preferred_layout(&access, &LoopTransform::identity(2)), None);
    }

    #[test]
    fn three_dimensional_preference() {
        // A[i][j][k] with k innermost: movement (0,0,1); kernel = rows
        // fixing the first two indices -> row-major-like layout.
        let access = AccessBuilder::new(3, 3)
            .row(0, [1, 0, 0])
            .row(1, [0, 1, 0])
            .row(2, [0, 0, 1])
            .build();
        let layout = preferred_layout(&access, &LoopTransform::identity(3)).unwrap();
        assert_eq!(layout.len(), 2);
        assert!(layout.preserves_direction(&IntVec::from(vec![0, 0, 1])));
        assert!(!layout.preserves_direction(&IntVec::from(vec![1, 0, 0])));
    }

    #[test]
    fn conflicting_references_fall_back_gracefully() {
        // The same array accessed both row-wise and column-wise in one nest:
        // no single 2-D layout satisfies both, so the first direction wins.
        let mut nest = LoopNest::new(
            NestId::new(0),
            "conflict",
            vec![Loop::new("i", 0, 8), Loop::new("j", 0, 8)],
        );
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [1, 0])
                .row(1, [0, 1])
                .build(),
            AccessKind::Read,
        );
        nest.add_reference(
            ArrayId::new(0),
            AccessBuilder::new(2, 2)
                .row(0, [0, 1])
                .row(1, [1, 0])
                .build(),
            AccessKind::Read,
        );
        let layout =
            preferred_layout_for_array(&nest, ArrayId::new(0), &LoopTransform::identity(2));
        assert_eq!(layout, Some(Layout::row_major(2)));
    }

    #[test]
    fn orthogonal_layout_helper() {
        assert_eq!(layout_orthogonal_to(&[]), None);
        assert_eq!(layout_orthogonal_to(&[IntVec::zeros(2)]), None);
        assert_eq!(
            layout_orthogonal_to(&[IntVec::from(vec![1, 1])]),
            Some(Layout::diagonal())
        );
        // Two independent directions in 2-D: impossible.
        assert_eq!(
            layout_orthogonal_to(&[IntVec::from(vec![1, 0]), IntVec::from(vec![0, 1])]),
            None
        );
    }
}
