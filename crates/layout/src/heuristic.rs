//! The heuristic layout-propagation baseline (paper, Section 5).
//!
//! The prior linear-algebra approach the paper compares against
//! (Leung–Zahorjan-style) works as follows: order the nests by an importance
//! criterion, then process them most-important first; for each nest choose
//! the best combination of loop restructuring and memory layouts for the
//! arrays it references, but only *assign* layouts to arrays that earlier
//! (more important) nests have not already fixed.  Layouts therefore
//! propagate from costly nests to cheaper ones and the requirements of the
//! costliest nests always win.

use crate::apply::LayoutAssignment;
use crate::hyperplane::Layout;
use crate::locality::preferred_layout_for_array;
use crate::quality::nest_score;
use mlo_ir::{legal_permutations, rank_nests_by_cost, ArrayId, NestId, Program};
use std::time::{Duration, Instant};

/// The outcome of the heuristic baseline.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// The layout chosen for every array.
    pub assignment: LayoutAssignment,
    /// The restructuring chosen for every nest (indexed by nest id), as a
    /// human-readable description.
    pub chosen_transforms: Vec<(NestId, String)>,
    /// The order in which nests were processed (most important first).
    pub processing_order: Vec<NestId>,
    /// Wall-clock time taken.
    pub elapsed: Duration,
}

/// The best (restructuring, score, newly fixed layouts) choice for a nest.
type NestChoice = Option<(String, i64, Vec<(ArrayId, Layout)>)>;

/// Runs the heuristic baseline on a program.
///
/// Arrays that remain without a preference after all nests are processed
/// (e.g. one-dimensional arrays) receive their canonical row-major layout so
/// the result is always a complete assignment.
pub fn heuristic_assignment(program: &Program) -> HeuristicResult {
    let start = Instant::now();
    let order = rank_nests_by_cost(program);
    let mut assignment = LayoutAssignment::new();
    let mut chosen_transforms: Vec<(NestId, String)> = Vec::new();

    for &nest_id in &order {
        let nest = &program.nests()[nest_id.index()];
        let mut best: NestChoice = None;
        for transform in legal_permutations(nest) {
            // Tentatively give every not-yet-fixed array its preferred
            // layout under this restructuring.
            let mut tentative = assignment.clone();
            let mut newly_fixed: Vec<(ArrayId, Layout)> = Vec::new();
            for array in nest.referenced_arrays() {
                if tentative.contains(array) {
                    continue;
                }
                if let Some(layout) = preferred_layout_for_array(nest, array, &transform) {
                    tentative.set(array, layout.clone());
                    newly_fixed.push((array, layout));
                }
            }
            let score = nest_score(nest, &transform, &tentative);
            let better = match &best {
                None => true,
                Some((_, best_score, _)) => score > *best_score,
            };
            if better {
                best = Some((transform.describe(), score, newly_fixed));
            }
        }
        if let Some((description, _, newly_fixed)) = best {
            for (array, layout) in newly_fixed {
                assignment.set(array, layout);
            }
            chosen_transforms.push((nest_id, description));
        }
    }

    // Complete the assignment with row-major defaults.
    for array in program.arrays() {
        if !assignment.contains(array.id()) {
            assignment.set(array.id(), Layout::row_major(array.rank()));
        }
    }

    HeuristicResult {
        assignment,
        chosen_transforms,
        processing_order: order,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{assignment_score, ideal_score};
    use mlo_ir::{AccessBuilder, ProgramBuilder};

    #[test]
    fn figure2_heuristic_matches_the_paper_derivation() {
        let n = 16;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        let p = b.build();
        let result = heuristic_assignment(&p);
        // One of the two legal orders is chosen; either way both arrays get
        // their preferred layout for that order and the score is ideal.
        assert_eq!(assignment_score(&p, &result.assignment), ideal_score(&p));
        assert_eq!(result.assignment.len(), 2);
        assert_eq!(result.chosen_transforms.len(), 1);
        assert_eq!(result.processing_order, vec![mlo_ir::NestId::new(0)]);
    }

    #[test]
    fn important_nest_wins_layout_conflicts() {
        // Array A is accessed row-wise in a big nest and column-wise in a
        // small one (no legal interchange for the small nest because of an
        // anti-diagonal dependence).  The heuristic must give A the layout
        // the big nest wants.
        let mut b = ProgramBuilder::new("conflict");
        let a = b.array("A", vec![64, 64], 4);
        b.nest("big", vec![("i", 0, 64), ("j", 0, 64)], |nest| {
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
        });
        b.nest("small", vec![("i", 0, 8), ("j", 0, 8)], |nest| {
            // A[j][i]: wants column-major in the original order.
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [0, 1])
                    .row(1, [1, 0])
                    .build(),
            );
            // A write/read pair with an anti-diagonal dependence pins the
            // loop order (interchange illegal).
            nest.write(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                a,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 0])
                    .row(1, [0, 1])
                    .offset(0, -1)
                    .offset(1, 1)
                    .build(),
            );
        });
        let p = b.build();
        let result = heuristic_assignment(&p);
        assert_eq!(
            result.assignment.layout_of(a),
            Some(&Layout::row_major(2)),
            "the costlier nest's preference must win"
        );
        // The big nest is processed first.
        assert_eq!(result.processing_order[0], mlo_ir::NestId::new(0));
    }

    #[test]
    fn assignment_is_always_complete() {
        let mut b = ProgramBuilder::new("sparse");
        let _a = b.array("A", vec![16, 16], 4);
        let _b2 = b.array("B", vec![32], 4);
        let _c = b.array("Unreferenced", vec![4, 4, 4], 8);
        b.nest("empty_like", vec![("i", 0, 4)], |_| {});
        let p = b.build();
        let result = heuristic_assignment(&p);
        for array in p.arrays() {
            assert!(
                result.assignment.contains(array.id()),
                "array {} missing a layout",
                array.name()
            );
        }
        assert!(result.elapsed.as_nanos() > 0);
    }
}
