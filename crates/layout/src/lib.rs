//! Hyperplane-based memory layouts, locality analysis and constraint
//! derivation.
//!
//! This crate implements Sections 2 and 3 of the DATE'05 paper plus the
//! heuristic baseline it compares against:
//!
//! * [`Hyperplane`] / [`Layout`] — the linear-algebraic layout
//!   representation: a layout of a `k`-dimensional array is an ordered set
//!   of hyperplane vectors; two elements share spatial locality when they
//!   lie on the same hyperplane(s),
//! * [`locality`] — deriving the *preferred* layout of an array from the
//!   direction its references move per innermost-loop iteration (the
//!   `(y1 y2) · d1 = (y1 y2) · d2` condition of Section 2),
//! * [`candidates`] — enumerating each array's candidate layouts across all
//!   nests and legal loop restructurings (the domains `M_i`),
//! * [`constraints`] — building the binary constraint network `S` whose
//!   pairs are the per-nest, per-restructuring preferred layout
//!   combinations (Section 3),
//! * [`heuristic`] — the Leung–Zahorjan-style layout-propagation baseline
//!   summarized in Section 5,
//! * [`apply`] — turning a chosen layout into a concrete address mapping
//!   (linearization) that the cache simulator replays,
//! * [`quality`] — a static spatial-locality score used by the heuristic
//!   and for quick comparisons without running the simulator,
//! * [`weights`] — weighted constraint networks that favour the layout
//!   requirements of costly nests (the paper's first future direction),
//! * [`dynamic`] — per-segment dynamic layouts with re-layout copy costs
//!   (the paper's second future direction).
//!
//! # Example: Figure 2 of the paper
//!
//! ```
//! use mlo_ir::{ProgramBuilder, AccessBuilder};
//! use mlo_layout::{locality::preferred_layout, Layout};
//! use mlo_ir::LoopTransform;
//!
//! let n = 64;
//! let mut b = ProgramBuilder::new("figure2");
//! let q1 = b.array("Q1", vec![2 * n, n], 4);
//! let q2 = b.array("Q2", vec![2 * n, n], 4);
//! b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
//!     nest.read(q1, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [0, 1]).build());
//!     nest.read(q2, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [1, 0]).build());
//! });
//! let program = b.build();
//! let nest = &program.nests()[0];
//! let identity = LoopTransform::identity(2);
//!
//! // Q1 wants the diagonal layout (1 -1), Q2 the column-major layout (0 1).
//! let q1_layout = preferred_layout(nest.references()[0].access(), &identity).unwrap();
//! let q2_layout = preferred_layout(nest.references()[1].access(), &identity).unwrap();
//! assert_eq!(q1_layout, Layout::diagonal());
//! assert_eq!(q2_layout, Layout::column_major(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod candidates;
pub mod constraints;
pub mod dynamic;
pub mod heuristic;
pub mod hyperplane;
pub mod locality;
pub mod quality;
pub mod weights;

pub use apply::{AddressMap, LayoutAssignment};
pub use candidates::{candidate_layouts, CandidateOptions, CandidateSet};
pub use constraints::{build_network, build_network_from, LayoutNetwork};
pub use dynamic::{dynamic_plan, DynamicOptions, DynamicPlan, Segmentation};
pub use heuristic::{heuristic_assignment, HeuristicResult};
pub use hyperplane::{Hyperplane, Layout};
pub use quality::{assignment_score, nest_score};
pub use weights::{derive_weights, weighted_assignment, WeightOptions, WeightedOutcome};

/// Errors produced by the layout analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A layout's hyperplane dimensionality does not match the array rank.
    RankMismatch {
        /// The array rank.
        array_rank: usize,
        /// The hyperplane dimensionality found.
        layout_rank: usize,
    },
    /// No layout has been assigned to an array that needs one.
    MissingLayout(mlo_ir::ArrayId),
    /// The layout matrix could not be completed to full rank (degenerate
    /// hyperplanes).
    DegenerateLayout(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::RankMismatch {
                array_rank,
                layout_rank,
            } => write!(
                f,
                "layout hyperplanes have dimension {layout_rank} but the array rank is {array_rank}"
            ),
            LayoutError::MissingLayout(id) => write!(f, "no layout assigned to array {id}"),
            LayoutError::DegenerateLayout(msg) => write!(f, "degenerate layout: {msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LayoutError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LayoutError::RankMismatch {
            array_rank: 2,
            layout_rank: 3,
        };
        assert!(e.to_string().contains("rank is 2"));
        let e = LayoutError::MissingLayout(mlo_ir::ArrayId::new(4));
        assert!(e.to_string().contains("Q4"));
        let e = LayoutError::DegenerateLayout("zero hyperplane".into());
        assert!(e.to_string().contains("zero hyperplane"));
    }
}
