//! Hyperplane vectors and layouts.
//!
//! A *hyperplane vector* `(y1 … yk)` partitions a `k`-dimensional data space
//! into parallel hyperplanes: two elements `d1`, `d2` lie on the same
//! hyperplane iff `y · d1 = y · d2` (paper, Section 2).  A *layout* is an
//! ordered set of hyperplane vectors; elements that agree on every
//! hyperplane are stored contiguously.  For a two-dimensional array a single
//! vector suffices: `(1 0)` is row-major, `(0 1)` column-major, `(1 -1)`
//! diagonal and `(1 1)` anti-diagonal (Figure 1).

use mlo_linalg::{rank, IntMat, IntVec};
use std::fmt;

/// A single layout hyperplane vector, kept in canonical form (components
/// divided by their GCD, first non-zero component positive).
///
/// # Examples
///
/// ```
/// use mlo_layout::Hyperplane;
/// let h = Hyperplane::new(vec![2, -2]);
/// assert_eq!(h.to_string(), "(1 -1)");
/// // (5,3) and (7,5) are on the same diagonal; (5,3) and (5,4) are not.
/// assert!(h.same_hyperplane(&[5, 3], &[7, 5]));
/// assert!(!h.same_hyperplane(&[5, 3], &[5, 4]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hyperplane {
    coefficients: IntVec,
}

impl Hyperplane {
    /// Creates a hyperplane from its coefficient vector, canonicalizing it.
    ///
    /// # Panics
    ///
    /// Panics when every coefficient is zero (a zero vector does not define
    /// a hyperplane family).
    pub fn new(coefficients: impl Into<IntVec>) -> Self {
        let v: IntVec = coefficients.into();
        assert!(
            !v.is_zero(),
            "a hyperplane vector cannot be the zero vector"
        );
        Hyperplane {
            coefficients: v.canonicalized(),
        }
    }

    /// Fallible constructor used when the coefficients come from analysis
    /// results rather than literals.
    pub fn try_new(coefficients: impl Into<IntVec>) -> Option<Self> {
        let v: IntVec = coefficients.into();
        if v.is_zero() {
            None
        } else {
            Some(Hyperplane {
                coefficients: v.canonicalized(),
            })
        }
    }

    /// The canonical coefficient vector.
    pub fn coefficients(&self) -> &IntVec {
        &self.coefficients
    }

    /// Dimensionality of the data space this hyperplane lives in.
    pub fn dim(&self) -> usize {
        self.coefficients.dim()
    }

    /// The hyperplane constant `c = y · d` of a data point.
    ///
    /// # Panics
    ///
    /// Panics when `point` has the wrong dimensionality.
    pub fn constant_of(&self, point: &[i64]) -> i64 {
        self.coefficients
            .dot(&IntVec::from(point))
            .expect("point dimensionality must match the hyperplane")
    }

    /// Whether two data points lie on the same hyperplane of this family.
    ///
    /// # Panics
    ///
    /// Panics when either point has the wrong dimensionality.
    pub fn same_hyperplane(&self, a: &[i64], b: &[i64]) -> bool {
        self.constant_of(a) == self.constant_of(b)
    }

    /// Whether a movement direction `d` keeps an access inside one
    /// hyperplane (`y · d == 0`), i.e. the layout exhibits spatial locality
    /// along `d`.
    pub fn preserves_direction(&self, direction: &IntVec) -> bool {
        match self.coefficients.dot(direction) {
            Ok(v) => v == 0,
            Err(_) => false,
        }
    }
}

impl fmt::Display for Hyperplane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.coefficients)
    }
}

/// A complete memory layout: an ordered set of hyperplane vectors.
///
/// For a `k`-dimensional array, `k - 1` independent hyperplanes fully
/// determine which elements are contiguous; fewer rows describe a partial
/// layout (the paper's Section 2 uses one vector for two-dimensional
/// arrays and an ordered pair for three-dimensional ones).
///
/// # Examples
///
/// ```
/// use mlo_layout::Layout;
/// assert_eq!(Layout::row_major(2).to_string(), "[(1 0)]");
/// assert_eq!(Layout::column_major(3).to_string(), "[(0 0 1), (0 1 0)]");
/// assert_eq!(Layout::diagonal().to_string(), "[(1 -1)]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Layout {
    hyperplanes: Vec<Hyperplane>,
}

impl Layout {
    /// Creates a layout from an ordered list of hyperplanes.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or the hyperplanes have differing
    /// dimensionality.
    pub fn new(hyperplanes: Vec<Hyperplane>) -> Self {
        assert!(
            !hyperplanes.is_empty(),
            "a layout needs at least one hyperplane"
        );
        let dim = hyperplanes[0].dim();
        assert!(
            hyperplanes.iter().all(|h| h.dim() == dim),
            "all hyperplanes of a layout must have the same dimensionality"
        );
        Layout { hyperplanes }
    }

    /// Creates a layout from a single hyperplane vector.
    pub fn from_vector(coefficients: impl Into<IntVec>) -> Self {
        Layout::new(vec![Hyperplane::new(coefficients)])
    }

    /// The canonical row-major layout of a `rank`-dimensional array: the
    /// last index varies fastest, so the hyperplanes fix indices
    /// `0, 1, …, rank-2` in that order.
    ///
    /// # Panics
    ///
    /// Panics for `rank < 1`.
    pub fn row_major(rank: usize) -> Self {
        assert!(rank >= 1, "rank must be at least 1");
        if rank == 1 {
            return Layout::from_vector(vec![1]);
        }
        Layout::new(
            (0..rank - 1)
                .map(|d| Hyperplane::new(IntVec::unit(rank, d)))
                .collect(),
        )
    }

    /// The canonical column-major layout: the first index varies fastest.
    ///
    /// # Panics
    ///
    /// Panics for `rank < 1`.
    pub fn column_major(rank: usize) -> Self {
        assert!(rank >= 1, "rank must be at least 1");
        if rank == 1 {
            return Layout::from_vector(vec![1]);
        }
        Layout::new(
            (1..rank)
                .rev()
                .map(|d| Hyperplane::new(IntVec::unit(rank, d)))
                .collect(),
        )
    }

    /// The diagonal layout `(1 -1)` of a two-dimensional array.
    pub fn diagonal() -> Self {
        Layout::from_vector(vec![1, -1])
    }

    /// The anti-diagonal layout `(1 1)` of a two-dimensional array.
    pub fn anti_diagonal() -> Self {
        Layout::from_vector(vec![1, 1])
    }

    /// The ordered hyperplanes.
    pub fn hyperplanes(&self) -> &[Hyperplane] {
        &self.hyperplanes
    }

    /// The data-space dimensionality.
    pub fn dim(&self) -> usize {
        self.hyperplanes[0].dim()
    }

    /// Number of hyperplane vectors (a complete layout of a rank-`k` array
    /// has `k − 1`, except rank-1 arrays which use a single `(1)` vector).
    pub fn len(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Always false: layouts have at least one hyperplane.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The hyperplane coefficient matrix (one row per hyperplane).
    pub fn matrix(&self) -> IntMat {
        IntMat::from_rows(
            self.hyperplanes
                .iter()
                .map(|h| h.coefficients().clone())
                .collect(),
        )
    }

    /// Whether the hyperplanes are linearly independent.
    pub fn is_independent(&self) -> bool {
        rank(&self.matrix()) == self.hyperplanes.len()
    }

    /// Whether two data points are stored contiguously under this layout,
    /// i.e. they agree on every hyperplane.
    ///
    /// # Panics
    ///
    /// Panics when the points have the wrong dimensionality.
    pub fn same_block(&self, a: &[i64], b: &[i64]) -> bool {
        self.hyperplanes.iter().all(|h| h.same_hyperplane(a, b))
    }

    /// Whether a data-space movement direction stays within one block of
    /// the layout (spatial locality along that direction).
    pub fn preserves_direction(&self, direction: &IntVec) -> bool {
        self.hyperplanes
            .iter()
            .all(|h| h.preserves_direction(direction))
    }

    /// Whether this is the canonical row-major layout for its rank.
    pub fn is_row_major(&self) -> bool {
        *self == Layout::row_major(self.dim())
    }

    /// Whether this is the canonical column-major layout for its rank.
    pub fn is_column_major(&self) -> bool {
        *self == Layout::column_major(self.dim())
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, h) in self.hyperplanes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hyperplane_canonicalization() {
        assert_eq!(Hyperplane::new(vec![2, -2]), Hyperplane::new(vec![1, -1]));
        assert_eq!(Hyperplane::new(vec![-1, 1]), Hyperplane::new(vec![1, -1]));
        assert_eq!(Hyperplane::new(vec![0, 3]).to_string(), "(0 1)");
        assert!(Hyperplane::try_new(vec![0, 0]).is_none());
        assert!(Hyperplane::try_new(vec![0, 2]).is_some());
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn zero_hyperplane_panics() {
        let _ = Hyperplane::new(vec![0, 0]);
    }

    #[test]
    fn paper_diagonal_example() {
        // Section 2: (5 3) and (7 5) share a diagonal; (5 3) and (5 4) do not.
        let diag = Hyperplane::new(vec![1, -1]);
        assert!(diag.same_hyperplane(&[5, 3], &[7, 5]));
        assert!(!diag.same_hyperplane(&[5, 3], &[5, 4]));
        assert_eq!(diag.constant_of(&[5, 3]), 2);
    }

    #[test]
    fn row_major_groups_rows() {
        // Figure 1(a): row-major = (1 0); elements with equal row index are
        // on the same hyperplane.
        let rm = Layout::row_major(2);
        assert!(rm.same_block(&[3, 0], &[3, 7]));
        assert!(!rm.same_block(&[3, 0], &[4, 0]));
        assert!(rm.is_row_major());
        assert!(!rm.is_column_major());
    }

    #[test]
    fn three_dimensional_column_major() {
        // Section 2: a 3-D column-major layout is the ordered pair
        // (0 0 1), (0 1 0): same column iff indices agree except the first.
        let cm = Layout::column_major(3);
        assert_eq!(cm.len(), 2);
        assert_eq!(cm.hyperplanes()[0], Hyperplane::new(vec![0, 0, 1]));
        assert_eq!(cm.hyperplanes()[1], Hyperplane::new(vec![0, 1, 0]));
        assert!(cm.same_block(&[0, 4, 2], &[9, 4, 2]));
        assert!(!cm.same_block(&[0, 4, 2], &[0, 5, 2]));
        assert!(cm.is_independent());
    }

    #[test]
    fn direction_preservation() {
        // Moving along (1, 1) stays on a (1 -1) diagonal but leaves a row.
        let d = IntVec::from(vec![1, 1]);
        assert!(Layout::diagonal().preserves_direction(&d));
        assert!(!Layout::row_major(2).preserves_direction(&d));
        assert!(Layout::anti_diagonal().preserves_direction(&IntVec::from(vec![1, -1])));
        // Column-major preserves movement along the first index.
        assert!(Layout::column_major(2).preserves_direction(&IntVec::from(vec![1, 0])));
    }

    #[test]
    fn rank_one_layouts() {
        assert_eq!(Layout::row_major(1), Layout::column_major(1));
        assert_eq!(Layout::row_major(1).len(), 1);
    }

    #[test]
    fn layout_matrix_and_independence() {
        let l = Layout::new(vec![
            Hyperplane::new(vec![1, 0, 0]),
            Hyperplane::new(vec![1, 0, 0]),
        ]);
        assert!(!l.is_independent());
        assert_eq!(Layout::row_major(3).matrix().rows(), 2);
        assert!(!Layout::row_major(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "same dimensionality")]
    fn mixed_dimensionality_rejected() {
        let _ = Layout::new(vec![
            Hyperplane::new(vec![1, 0]),
            Hyperplane::new(vec![1, 0, 0]),
        ]);
    }

    proptest! {
        #[test]
        fn canonical_form_is_scale_invariant(
            a in -5i64..5, b in -5i64..5, k in 1i64..4
        ) {
            prop_assume!(a != 0 || b != 0);
            let h1 = Hyperplane::new(vec![a, b]);
            let h2 = Hyperplane::new(vec![a * k, b * k]);
            prop_assert_eq!(h1, h2);
        }

        #[test]
        fn same_block_is_an_equivalence_on_samples(
            p in proptest::collection::vec(-8i64..8, 2),
            q in proptest::collection::vec(-8i64..8, 2),
            r in proptest::collection::vec(-8i64..8, 2),
        ) {
            let layout = Layout::diagonal();
            // Reflexive, symmetric, transitive on sampled points.
            prop_assert!(layout.same_block(&p, &p));
            prop_assert_eq!(layout.same_block(&p, &q), layout.same_block(&q, &p));
            if layout.same_block(&p, &q) && layout.same_block(&q, &r) {
                prop_assert!(layout.same_block(&p, &r));
            }
        }
    }
}
