//! Applying layouts: assignments and address linearization.
//!
//! Choosing a hyperplane layout only fixes *which* elements are contiguous;
//! to simulate cache behaviour we also need a concrete address for every
//! element.  [`AddressMap`] completes the layout's hyperplane matrix to a
//! full-rank integer map, computes the bounding box of the transformed index
//! space and linearizes it row-major (hyperplane coordinates slowest, the
//! completion coordinate fastest).  Skewed layouts such as the diagonal may
//! leave part of the bounding box unused — exactly the data-space expansion
//! the paper's footnote 2 mentions.

use crate::hyperplane::Layout;
use crate::LayoutError;
use mlo_ir::{ArrayDecl, ArrayId};
use mlo_linalg::{rank, IntMat, IntVec};
use std::collections::HashMap;
use std::fmt;

/// A program-wide layout assignment: one layout per array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutAssignment {
    layouts: HashMap<ArrayId, Layout>,
}

impl LayoutAssignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a layout to an array (replacing any previous one).
    pub fn set(&mut self, array: ArrayId, layout: Layout) {
        self.layouts.insert(array, layout);
    }

    /// The layout of an array, if assigned.
    pub fn layout_of(&self, array: ArrayId) -> Option<&Layout> {
        self.layouts.get(&array)
    }

    /// Whether the array has an assigned layout.
    pub fn contains(&self, array: ArrayId) -> bool {
        self.layouts.contains_key(&array)
    }

    /// Number of assigned arrays.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether no array has a layout yet.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }

    /// Iterates over `(array, layout)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&ArrayId, &Layout)> {
        self.layouts.iter()
    }

    /// Builds an assignment that gives every array of a program its
    /// canonical row-major layout (the "original code" baseline).
    pub fn all_row_major(program: &mlo_ir::Program) -> Self {
        let mut asg = Self::new();
        for a in program.arrays() {
            asg.set(a.id(), Layout::row_major(a.rank()));
        }
        asg
    }
}

impl fmt::Display for LayoutAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(&ArrayId, &Layout)> = self.layouts.iter().collect();
        entries.sort_by_key(|(a, _)| **a);
        for (i, (a, l)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={l}")?;
        }
        Ok(())
    }
}

/// A concrete index-to-offset mapping for one array under one layout.
#[derive(Debug, Clone)]
pub struct AddressMap {
    /// Full-rank transformation applied to index vectors.
    transform: IntMat,
    /// Minimum value of each transformed coordinate over the index box.
    minimums: Vec<i64>,
    /// Extent of each transformed coordinate over the index box.
    extents: Vec<i64>,
    element_size: u32,
}

impl AddressMap {
    /// Builds the address map of `array` under `layout`.
    ///
    /// # Errors
    ///
    /// * [`LayoutError::RankMismatch`] if the layout's dimensionality does
    ///   not match the array rank.
    /// * [`LayoutError::DegenerateLayout`] if the hyperplanes are linearly
    ///   dependent (they cannot be completed to a bijective map).
    pub fn new(array: &ArrayDecl, layout: &Layout) -> crate::Result<Self> {
        let rank_k = array.rank();
        if layout.dim() != rank_k {
            return Err(LayoutError::RankMismatch {
                array_rank: rank_k,
                layout_rank: layout.dim(),
            });
        }
        let mut rows: Vec<IntVec> = layout
            .hyperplanes()
            .iter()
            .map(|h| h.coefficients().clone())
            .collect();
        // For rank-1 arrays the single hyperplane (1) already is full rank.
        // Otherwise complete with unit vectors until the matrix has full
        // rank; the added unit vectors become the fastest-varying
        // coordinates.
        let mut matrix = IntMat::from_rows(rows.clone());
        if rank(&matrix) != rows.len() {
            return Err(LayoutError::DegenerateLayout(format!(
                "hyperplanes of layout {layout} are linearly dependent"
            )));
        }
        for d in 0..rank_k {
            if rows.len() == rank_k {
                break;
            }
            let candidate = IntVec::unit(rank_k, d);
            let mut extended = rows.clone();
            extended.push(candidate.clone());
            let m = IntMat::from_rows(extended.clone());
            if rank(&m) == extended.len() {
                rows = extended;
                matrix = m;
            }
        }
        if rows.len() != rank_k {
            return Err(LayoutError::DegenerateLayout(format!(
                "could not complete layout {layout} to a full-rank map"
            )));
        }
        // Bounding box of the transformed index space: extremes occur at
        // corners because the map is linear.
        let mut minimums = vec![i64::MAX; rank_k];
        let mut maximums = vec![i64::MIN; rank_k];
        for corner in 0..(1u32 << rank_k) {
            let point: IntVec = (0..rank_k)
                .map(|d| {
                    if corner & (1 << d) != 0 {
                        array.extent(d) - 1
                    } else {
                        0
                    }
                })
                .collect();
            let mapped = matrix.mul_vec(&point).expect("dimensions match");
            for d in 0..rank_k {
                minimums[d] = minimums[d].min(mapped[d]);
                maximums[d] = maximums[d].max(mapped[d]);
            }
        }
        let extents: Vec<i64> = minimums
            .iter()
            .zip(maximums.iter())
            .map(|(lo, hi)| hi - lo + 1)
            .collect();
        Ok(AddressMap {
            transform: matrix,
            minimums,
            extents,
            element_size: array.element_size(),
        })
    }

    /// The element offset (in elements, not bytes) of an index vector.
    ///
    /// # Panics
    ///
    /// Panics when the index has the wrong dimensionality.
    pub fn element_offset(&self, index: &IntVec) -> i64 {
        let mapped = self
            .transform
            .mul_vec(index)
            .expect("index dimensionality must match the array rank");
        let mut offset = 0i64;
        for d in 0..self.extents.len() {
            offset = offset * self.extents[d] + (mapped[d] - self.minimums[d]);
        }
        offset
    }

    /// The byte offset of an index vector.
    ///
    /// # Panics
    ///
    /// Panics when the index has the wrong dimensionality.
    pub fn byte_offset(&self, index: &IntVec) -> i64 {
        self.element_offset(index) * self.element_size as i64
    }

    /// Total number of element slots spanned by the map, including padding
    /// introduced by skewed layouts (the data-space expansion of the paper's
    /// footnote 2).
    pub fn span_elements(&self) -> i64 {
        self.extents.iter().product()
    }

    /// Total number of bytes spanned by the map.
    pub fn span_bytes(&self) -> i64 {
        self.span_elements() * self.element_size as i64
    }

    /// The element size in bytes.
    pub fn element_size(&self) -> u32 {
        self.element_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_ir::ArrayId;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn array_2d(rows: i64, cols: i64) -> ArrayDecl {
        ArrayDecl::new(ArrayId::new(0), "A", vec![rows, cols], 4)
    }

    #[test]
    fn row_major_matches_c_layout() {
        let a = array_2d(4, 6);
        let map = AddressMap::new(&a, &Layout::row_major(2)).unwrap();
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 0])), 0);
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 5])), 5);
        assert_eq!(map.element_offset(&IntVec::from(vec![1, 0])), 6);
        assert_eq!(map.element_offset(&IntVec::from(vec![3, 5])), 23);
        assert_eq!(map.span_elements(), 24);
        assert_eq!(map.byte_offset(&IntVec::from(vec![1, 0])), 24);
        assert_eq!(map.element_size(), 4);
    }

    #[test]
    fn column_major_matches_fortran_layout() {
        let a = array_2d(4, 6);
        let map = AddressMap::new(&a, &Layout::column_major(2)).unwrap();
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 0])), 0);
        assert_eq!(map.element_offset(&IntVec::from(vec![3, 0])), 3);
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 1])), 4);
        assert_eq!(map.span_elements(), 24);
        // Consecutive elements of a column are adjacent.
        let d = map.element_offset(&IntVec::from(vec![2, 3]))
            - map.element_offset(&IntVec::from(vec![1, 3]));
        assert_eq!(d, 1);
    }

    #[test]
    fn diagonal_layout_makes_diagonal_neighbours_adjacent() {
        let a = array_2d(8, 8);
        let map = AddressMap::new(&a, &Layout::diagonal()).unwrap();
        // Moving along (1, 1) stays within a diagonal: offsets differ by 1.
        let step = map.element_offset(&IntVec::from(vec![4, 4]))
            - map.element_offset(&IntVec::from(vec![3, 3]));
        assert_eq!(step.abs(), 1);
        // Moving along a row leaves the diagonal: offsets jump by at least a
        // full diagonal length.
        let jump = map.element_offset(&IntVec::from(vec![3, 4]))
            - map.element_offset(&IntVec::from(vec![3, 3]));
        assert!(jump.abs() >= 8);
        // The skewed bounding box wastes some space (footnote 2).
        assert!(map.span_elements() > 64);
    }

    #[test]
    fn mappings_are_injective() {
        let a = array_2d(5, 7);
        for layout in [
            Layout::row_major(2),
            Layout::column_major(2),
            Layout::diagonal(),
            Layout::anti_diagonal(),
        ] {
            let map = AddressMap::new(&a, &layout).unwrap();
            let mut seen = HashSet::new();
            for i in 0..5 {
                for j in 0..7 {
                    let off = map.element_offset(&IntVec::from(vec![i, j]));
                    assert!(off >= 0, "negative offset under {layout}");
                    assert!(
                        off < map.span_elements(),
                        "offset beyond span under {layout}"
                    );
                    assert!(seen.insert(off), "duplicate offset under {layout}");
                }
            }
        }
    }

    #[test]
    fn three_dimensional_row_major() {
        let a = ArrayDecl::new(ArrayId::new(0), "T", vec![2, 3, 4], 8);
        let map = AddressMap::new(&a, &Layout::row_major(3)).unwrap();
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 0, 1])), 1);
        assert_eq!(map.element_offset(&IntVec::from(vec![0, 1, 0])), 4);
        assert_eq!(map.element_offset(&IntVec::from(vec![1, 0, 0])), 12);
        assert_eq!(map.span_elements(), 24);
    }

    #[test]
    fn rank_and_degeneracy_errors() {
        let a = array_2d(4, 4);
        assert!(matches!(
            AddressMap::new(&a, &Layout::row_major(3)),
            Err(LayoutError::RankMismatch { .. })
        ));
        let degenerate = Layout::new(vec![
            crate::hyperplane::Hyperplane::new(vec![1, 0]),
            crate::hyperplane::Hyperplane::new(vec![2, 0]),
        ]);
        assert!(matches!(
            AddressMap::new(&a, &degenerate),
            Err(LayoutError::DegenerateLayout(_))
        ));
    }

    #[test]
    fn assignment_basics() {
        let mut asg = LayoutAssignment::new();
        assert!(asg.is_empty());
        asg.set(ArrayId::new(1), Layout::diagonal());
        asg.set(ArrayId::new(0), Layout::row_major(2));
        assert_eq!(asg.len(), 2);
        assert!(asg.contains(ArrayId::new(1)));
        assert_eq!(asg.layout_of(ArrayId::new(1)), Some(&Layout::diagonal()));
        assert_eq!(asg.layout_of(ArrayId::new(5)), None);
        assert_eq!(asg.to_string(), "Q0=[(1 0)], Q1=[(1 -1)]");
        assert_eq!(asg.iter().count(), 2);
    }

    #[test]
    fn all_row_major_covers_every_array() {
        let mut b = mlo_ir::ProgramBuilder::new("p");
        b.array("A", vec![4, 4], 4);
        b.array("B", vec![8], 4);
        let p = b.build();
        let asg = LayoutAssignment::all_row_major(&p);
        assert_eq!(asg.len(), 2);
        assert_eq!(asg.layout_of(ArrayId::new(1)), Some(&Layout::row_major(1)));
    }

    proptest! {
        #[test]
        fn offsets_stay_within_span(
            i in 0i64..6, j in 0i64..5,
            layout_idx in 0usize..4,
        ) {
            let a = array_2d(6, 5);
            let layouts = [
                Layout::row_major(2),
                Layout::column_major(2),
                Layout::diagonal(),
                Layout::anti_diagonal(),
            ];
            let map = AddressMap::new(&a, &layouts[layout_idx]).unwrap();
            let off = map.element_offset(&IntVec::from(vec![i, j]));
            prop_assert!(off >= 0);
            prop_assert!(off < map.span_elements());
        }

        #[test]
        fn contiguity_follows_the_hyperplane(
            i in 1i64..7, j in 1i64..7,
        ) {
            // Under the diagonal layout, (i, j) and (i+1, j+1) are on the
            // same hyperplane and must be closer together than (i, j) and
            // (i, j+1), which are on different hyperplanes.
            let a = array_2d(8, 8);
            let map = AddressMap::new(&a, &Layout::diagonal()).unwrap();
            let here = map.element_offset(&IntVec::from(vec![i, j]));
            let along = map.element_offset(&IntVec::from(vec![i - 1, j - 1]));
            let across = map.element_offset(&IntVec::from(vec![i, j - 1]));
            prop_assert!((here - along).abs() < (here - across).abs());
        }
    }
}
