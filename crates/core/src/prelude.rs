//! Convenience re-exports of the types most programs need.
//!
//! ```
//! use mlo_core::prelude::*;
//!
//! let program = Benchmark::MxM.program();
//! let outcome = Optimizer::new(OptimizerScheme::Heuristic).optimize(&program);
//! assert!(outcome.assignment.len() > 0);
//! ```

pub use crate::optimizer::{
    NetworkSummary, OptimizationOutcome, Optimizer, OptimizerOptions, OptimizerScheme,
};
pub use crate::report::TextTable;
pub use mlo_benchmarks::{Benchmark, RandomProgramSpec};
pub use mlo_cachesim::{MachineConfig, SimulationReport, Simulator, TraceOptions};
pub use mlo_csp::{ConstraintNetwork, Scheme, SearchEngine, SearchStats};
pub use mlo_ir::{AccessBuilder, ArrayId, LoopTransform, Program, ProgramBuilder};
pub use mlo_layout::{CandidateOptions, Hyperplane, Layout, LayoutAssignment};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile_together() {
        use super::*;
        let _ = MachineConfig::date05();
        let _ = Layout::diagonal();
        let _ = OptimizerScheme::Enhanced;
    }
}
