//! Convenience re-exports of the types most programs need.
//!
//! ```
//! use mlo_core::prelude::*;
//!
//! let program = Benchmark::MxM.program();
//! let report = Engine::new()
//!     .optimize(&program, &OptimizeRequest::strategy("heuristic"))
//!     .unwrap();
//! assert!(report.assignment.len() > 0);
//! ```

pub use crate::engine::{
    Engine, EngineBuilder, InstanceFeatures, NetworkSummary, OptimizeReport, Session, SolveHooks,
};
pub use crate::error::{Fallback, FallbackReason, OptimizeError};
pub use crate::report::TextTable;
pub use crate::request::{
    EvaluationOptions, FallbackPolicy, OptimizeRequest, SearchBudget, StrategyId,
};
pub use crate::strategy::{
    LayoutStrategy, PortfolioStrategy, StrategyContext, StrategyOutcome, StrategyRegistry,
};
pub use mlo_benchmarks::{Benchmark, RandomProgramSpec};
pub use mlo_cachesim::{MachineConfig, SimulationReport, Simulator, TraceOptions};
pub use mlo_csp::{
    ConstraintNetwork, ParallelBranchAndBound, ParallelPortfolioSearch, Scheme, SearchEngine,
    SearchLimits, SearchStats, WorkerPool,
};
pub use mlo_ir::{AccessBuilder, ArrayId, LoopTransform, Program, ProgramBuilder};
pub use mlo_layout::{CandidateOptions, CandidateSet, Hyperplane, Layout, LayoutAssignment};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile_together() {
        use super::*;
        let _ = MachineConfig::date05();
        let _ = Layout::diagonal();
        let _ = OptimizeRequest::strategy("enhanced");
        let _ = Engine::new();
    }
}
