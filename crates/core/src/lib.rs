//! End-to-end constraint-network memory layout optimization.
//!
//! `mlo-core` is the crate a downstream user adopts: it wires the substrate
//! crates together into the pipeline the DATE'05 paper describes.
//!
//! ```text
//!  Program (mlo-ir)
//!     │  candidate layouts per array            (mlo-layout::candidates)
//!     │  per-nest preferred layout pairs        (mlo-layout::constraints)
//!     ▼
//!  ConstraintNetwork<Layout> (mlo-csp)
//!     │  base / enhanced / FC search            (mlo-csp::solver)
//!     ▼
//!  LayoutAssignment (mlo-layout::apply)
//!     │  address maps + traces + caches         (mlo-cachesim)
//!     ▼
//!  cycles, hit rates, paper tables              (mlo_core::experiments)
//! ```
//!
//! # Quick start
//!
//! ```
//! use mlo_core::{Optimizer, OptimizerScheme};
//! use mlo_benchmarks::Benchmark;
//!
//! let program = Benchmark::MxM.program();
//! let outcome = Optimizer::new(OptimizerScheme::Enhanced).optimize(&program);
//! assert!(outcome.assignment.len() >= program.arrays().len());
//! println!("solved in {:?} ({} nodes)", outcome.solution_time,
//!          outcome.search_stats.map(|s| s.nodes_visited).unwrap_or(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod optimizer;
pub mod prelude;
pub mod report;

pub use optimizer::{
    NetworkSummary, OptimizationOutcome, Optimizer, OptimizerOptions, OptimizerScheme,
};
pub use report::TextTable;

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;

    #[test]
    fn doc_pipeline_smoke_test() {
        let program = Benchmark::MxM.program();
        let outcome = Optimizer::new(OptimizerScheme::Heuristic).optimize(&program);
        assert_eq!(outcome.scheme, OptimizerScheme::Heuristic);
        assert!(outcome.assignment.len() >= program.arrays().len());
    }
}
