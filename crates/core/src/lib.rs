//! End-to-end constraint-network memory layout optimization.
//!
//! `mlo-core` is the crate a downstream user adopts: it wires the substrate
//! crates together into the pipeline the DATE'05 paper describes.
//!
//! ```text
//!  Program (mlo-ir)
//!     │  candidate layouts per array            (mlo-layout::candidates)
//!     │  per-nest preferred layout pairs        (mlo-layout::constraints)
//!     ▼
//!  ConstraintNetwork<Layout> (mlo-csp)
//!     │  strategy-driven search                 (mlo_core::strategy)
//!     ▼
//!  LayoutAssignment (mlo-layout::apply)
//!     │  address maps + traces + caches         (mlo-cachesim)
//!     ▼
//!  cycles, hit rates, paper tables              (mlo_core::experiments)
//! ```
//!
//! # Quick start
//!
//! ```
//! use mlo_core::{Engine, OptimizeRequest};
//! use mlo_benchmarks::Benchmark;
//!
//! let engine = Engine::new();
//! let session = engine.session();
//! let program = Benchmark::MxM.program();
//! let report = session
//!     .optimize(&program, &OptimizeRequest::strategy("enhanced"))
//!     .unwrap();
//! assert!(report.assignment.len() >= program.arrays().len());
//! println!("solved in {:?} ({} nodes, {})", report.solution_time,
//!          report.search_stats.map(|s| s.nodes_visited).unwrap_or(0),
//!          report.fallback);
//! ```
//!
//! # The typed request surface (0.3 API redesign)
//!
//! Two request knobs became typed values in 0.3 (the PR-1 `Optimizer`
//! facade, deprecated since the engine API landed, was removed in the same
//! redesign):
//!
//! * **[`StrategyId`]** replaces the bare-string strategy name.  The nine
//!   built-ins are enum arms (`StrategyId::Enhanced`, ...); user-registered
//!   strategies go through [`StrategyId::Custom`].  String call sites keep
//!   working — `OptimizeRequest::strategy("enhanced")` parses via
//!   `From<&str>` — and [`StrategyRegistry::resolve`] is the typed lookup
//!   (the old `get(&str)` is deprecated).
//! * **[`SearchBudget`]** gathers the four budget knobs (`nodes`,
//!   `deadline`, `parallelism`, `parallel_threshold`) into one `Copy`
//!   value carried as [`OptimizeRequest::budget`].  Attach one with
//!   [`OptimizeRequest::with_budget`] (chainable) or the non-consuming
//!   [`OptimizeRequest::set_budget`] / [`OptimizeRequest::budget_mut`]
//!   family; the old per-knob setters (`node_limit`, `time_limit`,
//!   `parallelism`, `parallel_threshold`) still compile but are
//!   `#[deprecated]` forwarders.
//!
//! Serving layers on top of sessions get two more seams:
//! [`Session::optimize_with_hooks`] attaches [`SolveHooks`] (cooperative
//! cancellation via [`mlo_csp::CancelToken`], incumbent streaming via
//! [`mlo_csp::IncumbentObserver`]) to a single solve, and
//! [`Session::features`] extracts the [`InstanceFeatures`] the
//! `mlo-service` adaptive dispatcher keys on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod experiments;
pub mod prelude;
pub mod report;
pub mod request;
pub mod strategy;

pub use engine::{
    Engine, EngineBuilder, InstanceFeatures, NetworkSummary, OptimizeReport, PreparedProgram,
    Session, SolveHooks,
};
pub use error::{Fallback, FallbackReason, OptimizeError};
pub use report::TextTable;
pub use request::{EvaluationOptions, FallbackPolicy, OptimizeRequest, SearchBudget, StrategyId};
pub use strategy::{
    HeuristicStrategy, LayoutStrategy, LocalSearchStrategy, PortfolioStealStrategy,
    PortfolioStrategy, SchemeStrategy, StrategyContext, StrategyOutcome, StrategyRegistry,
    WeightedStrategy,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;

    #[test]
    fn doc_pipeline_smoke_test() {
        let program = Benchmark::MxM.program();
        let report = Engine::new()
            .optimize(&program, &OptimizeRequest::strategy("heuristic"))
            .unwrap();
        assert_eq!(report.strategy, "heuristic");
        assert!(report.assignment.len() >= program.arrays().len());
    }

    #[test]
    fn typed_request_surface_is_exported() {
        let program = Benchmark::MxM.program();
        let request = OptimizeRequest::strategy(StrategyId::Heuristic)
            .with_budget(SearchBudget::new().nodes(1_000));
        let report = Engine::new().optimize(&program, &request).unwrap();
        assert_eq!(report.strategy, StrategyId::Heuristic.as_str());
    }
}
