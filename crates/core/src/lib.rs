//! End-to-end constraint-network memory layout optimization.
//!
//! `mlo-core` is the crate a downstream user adopts: it wires the substrate
//! crates together into the pipeline the DATE'05 paper describes.
//!
//! ```text
//!  Program (mlo-ir)
//!     │  candidate layouts per array            (mlo-layout::candidates)
//!     │  per-nest preferred layout pairs        (mlo-layout::constraints)
//!     ▼
//!  ConstraintNetwork<Layout> (mlo-csp)
//!     │  strategy-driven search                 (mlo_core::strategy)
//!     ▼
//!  LayoutAssignment (mlo-layout::apply)
//!     │  address maps + traces + caches         (mlo-cachesim)
//!     ▼
//!  cycles, hit rates, paper tables              (mlo_core::experiments)
//! ```
//!
//! # Quick start
//!
//! ```
//! use mlo_core::{Engine, OptimizeRequest};
//! use mlo_benchmarks::Benchmark;
//!
//! let engine = Engine::new();
//! let session = engine.session();
//! let program = Benchmark::MxM.program();
//! let report = session
//!     .optimize(&program, &OptimizeRequest::strategy("enhanced"))
//!     .unwrap();
//! assert!(report.assignment.len() >= program.arrays().len());
//! println!("solved in {:?} ({} nodes, {})", report.solution_time,
//!          report.search_stats.map(|s| s.nodes_visited).unwrap_or(0),
//!          report.fallback);
//! ```
//!
//! # Migrating from `Optimizer` to `Engine`
//!
//! The `Optimizer::new(scheme).optimize(&program)` facade is deprecated; it
//! still works (it delegates here) but rebuilds all per-program state on
//! every call and folds every failure into one boolean.  The mapping:
//!
//! | old | new |
//! |-----|-----|
//! | `Optimizer::new(scheme)` | `Engine::new()` + [`OptimizeRequest::strategy`]`(scheme.strategy_name())` |
//! | `Optimizer::with_options(opts)` | `opts.to_request()` (see [`OptimizerOptions::to_request`]) |
//! | `optimizer.optimize(&p)` | `engine.session().optimize(&p, &request)?` |
//! | repeated `optimize` calls | one [`Session`] — candidates/networks are cached per program |
//! | `OptimizerScheme` enum arm | a [`LayoutStrategy`] value in the [`StrategyRegistry`] (add your own via [`Engine::builder`]) |
//! | `outcome.fell_back_to_heuristic` | [`OptimizeReport::fallback`] ([`Fallback::Heuristic`] carries the reason) or a typed [`OptimizeError`] with [`OptimizeRequest::fail_instead_of_fallback`] |
//! | sequential loops over programs/schemes | [`Session::optimize_many`] (parallel batch) |
//!
//! Per-request knobs that did not exist before: a wall-clock
//! [`OptimizeRequest::time_limit`], a per-request [`FallbackPolicy`], and
//! inline cache-simulation evaluation via [`OptimizeRequest::evaluate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod experiments;
pub mod optimizer;
pub mod prelude;
pub mod report;
pub mod request;
pub mod strategy;

pub use engine::{Engine, EngineBuilder, NetworkSummary, OptimizeReport, PreparedProgram, Session};
pub use error::{Fallback, FallbackReason, OptimizeError};
#[allow(deprecated)]
pub use optimizer::{OptimizationOutcome, Optimizer, OptimizerOptions, OptimizerScheme};
pub use report::TextTable;
pub use request::{EvaluationOptions, FallbackPolicy, OptimizeRequest};
pub use strategy::{
    HeuristicStrategy, LayoutStrategy, LocalSearchStrategy, PortfolioStealStrategy,
    PortfolioStrategy, SchemeStrategy, StrategyContext, StrategyOutcome, StrategyRegistry,
    WeightedStrategy,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;

    #[test]
    fn doc_pipeline_smoke_test() {
        let program = Benchmark::MxM.program();
        let report = Engine::new()
            .optimize(&program, &OptimizeRequest::strategy("heuristic"))
            .unwrap();
        assert_eq!(report.strategy, "heuristic");
        assert!(report.assignment.len() >= program.arrays().len());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_quickstart_still_compiles_and_runs() {
        let program = Benchmark::MxM.program();
        let outcome = Optimizer::new(OptimizerScheme::Heuristic).optimize(&program);
        assert_eq!(outcome.scheme, OptimizerScheme::Heuristic);
        assert!(outcome.assignment.len() >= program.arrays().len());
    }
}
