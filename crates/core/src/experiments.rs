//! Reusable runners for every table and figure of the paper.
//!
//! Each function returns plain data structures; the `mlo-bench` binaries
//! print them as paper-style tables and the Criterion benches time their
//! hot parts.  `EXPERIMENTS.md` records paper-vs-measured values produced by
//! these runners.

use crate::engine::Engine;
use crate::report::TextTable;
use crate::request::OptimizeRequest;
use mlo_benchmarks::Benchmark;
use mlo_cachesim::{MachineConfig, Simulator, TraceOptions};
use mlo_csp::{Scheme as CspScheme, SearchEngine, SearchStats, ValueOrdering, VariableOrdering};
use mlo_layout::{build_network, LayoutAssignment};
use std::time::Duration;

/// One row of Table 1: benchmark characteristics, paper vs. measured.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Published domain size.
    pub paper_domain_size: usize,
    /// Domain size of our reconstructed benchmark.
    pub measured_domain_size: usize,
    /// Published data size (KB).
    pub paper_data_kb: f64,
    /// Data size of our reconstructed benchmark (KB).
    pub measured_data_kb: f64,
    /// Number of arrays and nests in the reconstruction (extra context).
    pub arrays: usize,
    /// Number of nests in the reconstruction.
    pub nests: usize,
}

/// Runs the Table 1 characterization for all five benchmarks.
pub fn table1() -> Vec<Table1Row> {
    Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            let program = benchmark.program();
            let network = build_network(&program, &benchmark.candidate_options());
            Table1Row {
                benchmark,
                paper_domain_size: benchmark.paper_domain_size(),
                measured_domain_size: network.total_domain_size(),
                paper_data_kb: benchmark.paper_data_kb(),
                measured_data_kb: program.total_data_kb(),
                arrays: program.arrays().len(),
                nests: program.nests().len(),
            }
        })
        .collect()
}

/// Node budget given to the base scheme by the experiment runners.
///
/// The base scheme's random-order chronological backtracking does not
/// reliably terminate on the larger benchmark networks (that pathology is
/// exactly what Table 2 demonstrates); the runners therefore cap it and
/// report the cap.  The enhanced scheme never comes near this limit.
pub const BASE_SCHEME_NODE_LIMIT: u64 = 2_000_000;

/// One row of Table 2: layout solution time per scheme.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Wall-clock time of the heuristic baseline.
    pub heuristic: Duration,
    /// Wall-clock time of the base scheme.
    pub base: Duration,
    /// Wall-clock time of the enhanced scheme.
    pub enhanced: Duration,
    /// Search statistics of the base scheme.
    pub base_stats: SearchStats,
    /// Search statistics of the enhanced scheme.
    pub enhanced_stats: SearchStats,
    /// Whether the base scheme hit [`BASE_SCHEME_NODE_LIMIT`] (its true
    /// solution time is a lower bound in that case).
    pub base_capped: bool,
}

/// Runs the Table 2 experiment (layout-determination time) for one
/// benchmark.
///
/// All three schemes run through one [`Session`](crate::Session), so the
/// candidate sets and
/// the constraint network are built once per benchmark; the reported times
/// are pure layout-determination (search) times, exactly what Table 2
/// measures.
pub fn table2_for(benchmark: Benchmark) -> Table2Row {
    let session = Engine::new().session();
    let program = benchmark.program();
    let request = |strategy: &str, node_limit: Option<u64>| {
        let mut request =
            OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options());
        request.budget.nodes = node_limit;
        request
    };
    let run = |strategy: &str, node_limit: Option<u64>| {
        session
            .optimize(&program, &request(strategy, node_limit))
            .expect("table 2 requests use the heuristic fallback policy")
    };
    // Force the lazy candidate/network build now so no row's solution_time
    // is charged for network construction.
    session
        .prepared(&program, &benchmark.candidate_options())
        .network(&program);
    let heuristic = run("heuristic", None);
    let base = run("base", Some(BASE_SCHEME_NODE_LIMIT));
    let enhanced = run("enhanced", None);
    let base_stats = base.search_stats.unwrap_or_default();
    Table2Row {
        benchmark,
        heuristic: heuristic.solution_time,
        base: base.solution_time,
        enhanced: enhanced.solution_time,
        base_capped: base_stats.nodes_visited >= BASE_SCHEME_NODE_LIMIT,
        base_stats,
        enhanced_stats: enhanced.search_stats.unwrap_or_default(),
    }
}

/// Runs the Table 2 experiment for all benchmarks.
pub fn table2() -> Vec<Table2Row> {
    Benchmark::all().into_iter().map(table2_for).collect()
}

/// One row of Table 3: simulated execution time (cycles) per configuration.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Original code: row-major layouts, original loop order.
    pub original_cycles: u64,
    /// Heuristic-optimized layouts.
    pub heuristic_cycles: u64,
    /// Base-scheme layouts.
    pub base_cycles: u64,
    /// Enhanced-scheme layouts.
    pub enhanced_cycles: u64,
}

impl Table3Row {
    /// Percentage improvement of a configuration over the original code.
    pub fn improvement(&self, cycles: u64) -> f64 {
        if self.original_cycles == 0 {
            0.0
        } else {
            (self.original_cycles as f64 - cycles as f64) / self.original_cycles as f64 * 100.0
        }
    }
}

/// The trace options used by the Table 3 harness: large nests are
/// sub-sampled so the full five-benchmark sweep stays fast while preserving
/// stride behaviour.
pub fn table3_trace_options() -> TraceOptions {
    TraceOptions {
        max_trip_per_loop: 64,
        array_alignment: 64,
    }
}

/// Runs the Table 3 experiment (simulated execution time) for one benchmark
/// on a given machine.
pub fn table3_for(benchmark: Benchmark, machine: MachineConfig) -> Table3Row {
    let session = Engine::new().session();
    let program = benchmark.program();
    let simulator = Simulator::new(machine).trace_options(table3_trace_options());

    let original_assignment = LayoutAssignment::all_row_major(&program);
    let original = simulator
        .clone()
        .without_restructuring()
        .simulate(&program, &original_assignment)
        .expect("row-major layouts always linearize");

    let run = |strategy: &str, node_limit: Option<u64>| {
        let mut request =
            OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options());
        request.budget.nodes = node_limit;
        let report = session
            .optimize(&program, &request)
            .expect("table 3 requests use the heuristic fallback policy");
        simulator
            .simulate(&program, &report.assignment)
            .expect("engine assignments are complete")
            .total_cycles
    };

    // The base scheme gets the same node budget as in Table 2; when it runs
    // out it falls back to the heuristic layouts (see EXPERIMENTS.md).
    Table3Row {
        benchmark,
        original_cycles: original.total_cycles,
        heuristic_cycles: run("heuristic", None),
        base_cycles: run("base", Some(BASE_SCHEME_NODE_LIMIT)),
        enhanced_cycles: run("enhanced", None),
    }
}

/// Runs the Table 3 experiment for all benchmarks with the paper's machine.
pub fn table3() -> Vec<Table3Row> {
    Benchmark::all()
        .into_iter()
        .map(|b| table3_for(b, MachineConfig::date05()))
        .collect()
}

/// One row of Figure 4: how much of the enhanced scheme's saving comes from
/// each of the three improvements.
#[derive(Debug, Clone)]
pub struct Figure4Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Nodes visited by the base scheme.
    pub base_nodes: u64,
    /// Nodes after adding most-constraining variable ordering.
    pub with_variable_ordering_nodes: u64,
    /// Nodes after also adding least-constraining value ordering.
    pub with_value_ordering_nodes: u64,
    /// Nodes of the full enhanced scheme (adds backjumping).
    pub enhanced_nodes: u64,
    /// Share of the total node reduction attributed to variable selection,
    /// value selection and backjumping (sums to 100 when any saving exists).
    pub breakdown_percent: [f64; 3],
}

/// Runs the Figure 4 ablation for one benchmark: the three enhancements are
/// enabled cumulatively and the reduction in visited search nodes is
/// attributed to each step.
///
/// The paper attributes reductions in *solution time*; visited nodes are the
/// deterministic, machine-independent proxy (wall-clock times are reported
/// separately by the Criterion bench).
pub fn figure4_for(benchmark: Benchmark) -> Figure4Row {
    let program = benchmark.program();
    let network = build_network(&program, &benchmark.candidate_options());
    let base = SearchEngine::with_scheme(CspScheme::Base).node_limit(BASE_SCHEME_NODE_LIMIT);
    let mut with_variable = base.clone();
    with_variable.variable_ordering = VariableOrdering::MostConstraining;
    let mut with_value = with_variable.clone();
    with_value.value_ordering = ValueOrdering::LeastConstraining;
    let mut full = with_value.clone();
    full.backjumping = true;

    let base_nodes = base.solve(network.network()).stats.nodes_visited;
    let variable_nodes = with_variable.solve(network.network()).stats.nodes_visited;
    let value_nodes = with_value.solve(network.network()).stats.nodes_visited;
    let enhanced_nodes = full.solve(network.network()).stats.nodes_visited;

    let total_saving = base_nodes.saturating_sub(enhanced_nodes) as f64;
    let share = |from: u64, to: u64| -> f64 {
        if total_saving <= 0.0 {
            0.0
        } else {
            (from.saturating_sub(to)) as f64 / total_saving * 100.0
        }
    };
    Figure4Row {
        benchmark,
        base_nodes,
        with_variable_ordering_nodes: variable_nodes,
        with_value_ordering_nodes: value_nodes,
        enhanced_nodes,
        breakdown_percent: [
            share(base_nodes, variable_nodes),
            share(variable_nodes, value_nodes),
            share(value_nodes, enhanced_nodes),
        ],
    }
}

/// Runs the Figure 4 ablation for all benchmarks.
pub fn figure4() -> Vec<Figure4Row> {
    Benchmark::all().into_iter().map(figure4_for).collect()
}

/// The Figure 3 demonstration: on a crafted network where an irrelevant
/// variable sits between the culprit and the dead end, chronological
/// backtracking re-instantiates it while backjumping skips it.
#[derive(Debug, Clone)]
pub struct Figure3Demo {
    /// Nodes visited with chronological backtracking.
    pub backtracking_nodes: u64,
    /// Nodes visited with backjumping.
    pub backjumping_nodes: u64,
    /// Number of backjumps performed.
    pub backjumps: u64,
}

/// Runs the Figure 3 demonstration.
pub fn figure3() -> Figure3Demo {
    // Qk constrains Qj; Qi sits between them in the search order but shares
    // no constraint with Qj (the exact situation of Figure 3).
    let mut net: mlo_csp::ConstraintNetwork<i32> = mlo_csp::ConstraintNetwork::new();
    let qk = net.add_variable("Qk", (0..4).collect());
    let qi = net.add_variable("Qi", (0..4).collect());
    let qj = net.add_variable("Qj", (0..4).collect());
    // Only Qk = 3 supports any value of Qj.
    net.add_constraint(qk, qj, vec![(3, 0), (3, 1), (3, 2), (3, 3)])
        .expect("values are in the domains");
    // Qi is compatible with everything (purely an innocent bystander).
    let all_pairs: Vec<(i32, i32)> = (0..4).flat_map(|a| (0..4).map(move |b| (a, b))).collect();
    net.add_constraint(qk, qi, all_pairs)
        .expect("values are in the domains");

    let chronological = SearchEngine {
        variable_ordering: VariableOrdering::Lexicographic,
        value_ordering: ValueOrdering::DomainOrder,
        backjumping: false,
        forward_checking: false,
        ac3_preprocessing: false,
        node_limit: None,
        seed: 0,
    };
    let jumping = SearchEngine {
        backjumping: true,
        ..chronological.clone()
    };
    let bt = chronological.solve(&net);
    let bj = jumping.solve(&net);
    Figure3Demo {
        backtracking_nodes: bt.stats.nodes_visited,
        backjumping_nodes: bj.stats.nodes_visited,
        backjumps: bj.stats.backjumps,
    }
}

/// Formats Table 1 rows as a printable text table.
pub fn format_table1(rows: &[Table1Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Arrays",
        "Nests",
        "Domain (paper)",
        "Domain (measured)",
        "Data KB (paper)",
        "Data KB (measured)",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.name().into(),
            r.arrays.to_string(),
            r.nests.to_string(),
            r.paper_domain_size.to_string(),
            r.measured_domain_size.to_string(),
            format!("{:.2}", r.paper_data_kb),
            format!("{:.2}", r.measured_data_kb),
        ]);
    }
    t
}

/// Formats Table 2 rows as a printable text table.
pub fn format_table2(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Heuristic",
        "Base",
        "Enhanced",
        "Base nodes",
        "Enhanced nodes",
        "Backjumps",
    ]);
    for r in rows {
        let base_time = if r.base_capped {
            format!(">={:.2?} (capped)", r.base)
        } else {
            format!("{:.2?}", r.base)
        };
        t.row(vec![
            r.benchmark.name().into(),
            format!("{:.2?}", r.heuristic),
            base_time,
            format!("{:.2?}", r.enhanced),
            r.base_stats.nodes_visited.to_string(),
            r.enhanced_stats.nodes_visited.to_string(),
            r.enhanced_stats.backjumps.to_string(),
        ]);
    }
    t
}

/// Formats Table 3 rows as a printable text table (cycles plus improvement
/// percentages, mirroring how the paper reports averages).
pub fn format_table3(rows: &[Table3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Original",
        "Heuristic",
        "Base",
        "Enhanced",
        "Heur. impr.",
        "Base impr.",
        "Enh. impr.",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.name().into(),
            r.original_cycles.to_string(),
            r.heuristic_cycles.to_string(),
            r.base_cycles.to_string(),
            r.enhanced_cycles.to_string(),
            format!("{:.1}%", r.improvement(r.heuristic_cycles)),
            format!("{:.1}%", r.improvement(r.base_cycles)),
            format!("{:.1}%", r.improvement(r.enhanced_cycles)),
        ]);
    }
    t
}

/// Formats Figure 4 rows as a printable text table.
pub fn format_figure4(rows: &[Figure4Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Base nodes",
        "+Var order",
        "+Val order",
        "Enhanced",
        "Var %",
        "Val %",
        "Backjump %",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.name().into(),
            r.base_nodes.to_string(),
            r.with_variable_ordering_nodes.to_string(),
            r.with_value_ordering_nodes.to_string(),
            r.enhanced_nodes.to_string(),
            format!("{:.1}", r.breakdown_percent[0]),
            format!("{:.1}", r.breakdown_percent[1]),
            format!("{:.1}", r.breakdown_percent[2]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_all_benchmarks() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.measured_domain_size > 0);
            assert!(r.measured_data_kb > 0.0);
            assert!(r.arrays > 0 && r.nests > 0);
        }
        let printed = format_table1(&rows).to_string();
        assert!(printed.contains("Med-Im04"));
        assert!(printed.contains("Domain (paper)"));
    }

    #[test]
    fn table2_single_benchmark_runs_and_formats() {
        let row = table2_for(Benchmark::MxM);
        assert!(row.base_stats.nodes_visited > 0);
        assert!(row.enhanced_stats.nodes_visited > 0);
        let printed = format_table2(&[row]).to_string();
        assert!(printed.contains("MxM"));
    }

    #[test]
    fn figure3_demo_shows_backjumping_winning() {
        let demo = figure3();
        assert!(demo.backjumps > 0);
        assert!(demo.backjumping_nodes < demo.backtracking_nodes);
    }

    #[test]
    fn figure4_single_benchmark_breakdown_sums_to_100() {
        // MxM has the smallest network of the five, which keeps this debug
        // test fast on a single core; the release harness runs all five.
        let row = figure4_for(Benchmark::MxM);
        assert!(row.base_nodes >= row.enhanced_nodes);
        let sum: f64 = row.breakdown_percent.iter().sum();
        assert!(sum <= 100.0 + 1e-6, "breakdown sums to {sum}");
        assert!(row.breakdown_percent.iter().all(|&p| p >= 0.0));
        let printed = format_figure4(&[row]).to_string();
        assert!(printed.contains("Backjump"));
    }

    #[test]
    fn table3_small_benchmark_reproduces_the_ordering() {
        // Run the smallest benchmark (MxM: 7 arrays, 5 nests) through the
        // full Table 3 path and check the qualitative result the paper
        // reports: the heuristic improves over the original and the
        // constraint-network schemes do at least as well as the heuristic.
        // The release harness (`--bin table3`) runs all five benchmarks.
        let row = table3_for(Benchmark::MxM, MachineConfig::date05());
        assert!(row.heuristic_cycles < row.original_cycles);
        assert!(row.enhanced_cycles <= row.heuristic_cycles);
        assert!(row.base_cycles <= row.heuristic_cycles);
        let printed = format_table3(&[row]).to_string();
        assert!(printed.contains("MxM"));
    }
}
