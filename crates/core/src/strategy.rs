//! First-class, pluggable layout-determination strategies.
//!
//! The old facade hard-coded the seven schemes in an enum; here each scheme
//! is a value implementing the object-safe [`LayoutStrategy`] trait, looked
//! up by name in a [`StrategyRegistry`].  Downstream users register their
//! own strategies alongside the built-ins and submit them through the same
//! [`crate::OptimizeRequest`] / batch machinery.
//!
//! A strategy never builds candidates or networks itself: the
//! [`StrategyContext`] hands it the session-cached [`CandidateSet`] /
//! [`LayoutNetwork`] plus the request's seeded RNG and budget — the
//! narrowed `mlo-csp` seam ([`NetworkSearch`]) does the actual searching.

use crate::engine::{PreparedProgram, SessionInner, SolveHooks};
use crate::error::{FallbackReason, OptimizeError};
use crate::request::{OptimizeRequest, StrategyId};
use mlo_csp::{
    BranchAndBound, CancelToken, Coop, IncumbentObserver, MinConflicts, NetworkSearch,
    ParallelBranchAndBound, ParallelPortfolioSearch, Scheme as CspScheme, SearchEngine,
    SearchLimits, SearchStats, SharedIncumbent, SolveResult, StealScheduler, WeightedNetwork,
    WorkerPool,
};
use mlo_ir::Program;
use mlo_layout::{
    heuristic_assignment, weights, CandidateSet, Layout, LayoutAssignment, LayoutNetwork,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Everything a strategy may consult while determining layouts.
///
/// The expensive inputs (candidate sets, constraint networks) are owned by
/// the session and built at most once per program; the context only hands
/// out borrows.
pub struct StrategyContext<'a> {
    session: &'a SessionInner,
    program: &'a Program,
    prepared: &'a PreparedProgram,
    request: &'a OptimizeRequest,
    limits: SearchLimits,
    hooks: SolveHooks,
    network_used: std::cell::Cell<bool>,
}

impl<'a> StrategyContext<'a> {
    pub(crate) fn new(
        session: &'a SessionInner,
        program: &'a Program,
        prepared: &'a PreparedProgram,
        request: &'a OptimizeRequest,
        limits: SearchLimits,
    ) -> Self {
        StrategyContext {
            session,
            program,
            prepared,
            request,
            limits,
            hooks: SolveHooks::default(),
            network_used: std::cell::Cell::new(false),
        }
    }

    /// Attaches external solve hooks (cooperative cancellation, incumbent
    /// streaming) to the context.
    pub(crate) fn with_hooks(mut self, hooks: SolveHooks) -> Self {
        self.hooks = hooks;
        self
    }

    /// The external cancellation token, when the caller attached one.
    /// Built-in strategies poll it through their cancellable entry points;
    /// custom strategies should do the same (or ignore it, at the cost of
    /// cancellation latency).
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.hooks.cancel.as_ref()
    }

    /// The incumbent observer, when the caller asked to stream incumbent
    /// improvements.  Only meaningful for optimizing (weighted) strategies.
    pub fn incumbent_observer(&self) -> Option<&IncumbentObserver> {
        self.hooks.incumbent.as_ref()
    }

    /// The session's shared worker pool (created on first use) — the pool
    /// every parallelism-aware strategy and `optimize_many` batch draws
    /// workers from.
    pub fn worker_pool(&self) -> Arc<WorkerPool> {
        self.session.worker_pool()
    }

    /// The worker budget for this request: the request budget's
    /// [`parallelism`](crate::SearchBudget::parallelism) knob, falling back
    /// to the engine default.
    pub fn parallelism(&self) -> usize {
        self.request
            .budget
            .parallelism
            .unwrap_or_else(|| self.session.engine().default_parallelism())
            .max(1)
    }

    /// The adaptive-parallelism probe budget in search nodes: the request
    /// budget's
    /// [`parallel_threshold`](crate::SearchBudget::parallel_threshold)
    /// or the default.  Parallelism-aware strategies run their sequential
    /// path under this budget first and fan out only when it is exhausted
    /// ([`StrategyContext::probe_limits`] builds the capped limits);
    /// `0` disables the probe.
    pub fn parallel_threshold(&self) -> u64 {
        self.request
            .budget
            .parallel_threshold
            .unwrap_or(OptimizeRequest::DEFAULT_PARALLEL_THRESHOLD)
    }

    /// Whether the adaptive sequential probe pays off under the given
    /// effective node budget: when the request's own budget is at or below
    /// the probe threshold, a probe that fails would escalate to a
    /// parallel run of the *identical* budget — doubling the work for
    /// nothing — so the probe is only worthwhile while the threshold is
    /// the binding limit.
    pub fn probe_is_worthwhile(&self, effective_node_limit: Option<u64>) -> bool {
        let threshold = self.parallel_threshold();
        threshold > 0 && effective_node_limit.is_none_or(|own| own > threshold)
    }

    /// The request limits with the node budget tightened to the adaptive
    /// probe threshold.  A probe cut off by this node budget escalates to
    /// the parallel path (which re-applies the request's own limits); any
    /// other probe outcome — solved, proven unsatisfiable, deadline — is
    /// final and identical to what the parallel path would return.
    pub fn probe_limits(&self) -> SearchLimits {
        let limits = self.limits();
        SearchLimits {
            node_limit: Some(limits.node_limit.map_or(self.parallel_threshold(), |own| {
                own.min(self.parallel_threshold())
            })),
            deadline: limits.deadline,
        }
    }

    /// Whether this request's strategy consulted the constraint network
    /// (drives the report's `network` field — session cache state from
    /// earlier requests does not count).
    pub(crate) fn network_consulted(&self) -> bool {
        self.network_used.get()
    }

    /// The program being optimized.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The request being served.
    pub fn request(&self) -> &'a OptimizeRequest {
        self.request
    }

    /// The candidate layouts of every array (session-cached).
    pub fn candidates(&self) -> &CandidateSet {
        self.prepared.candidates(self.program)
    }

    /// The constraint network of the program (session-cached).
    pub fn network(&self) -> &LayoutNetwork {
        self.network_used.set(true);
        self.prepared.network(self.program)
    }

    /// The weighted constraint network derived with `options`
    /// (session-cached per distinct option set).  The returned `Arc` handle
    /// shares the hard network's constraint storage — serving a weighted
    /// request out of a warm session copies no tables at all, and the
    /// compiled [`WeightKernel`](mlo_csp::WeightKernel) riding in the
    /// cached network's spine is reused across requests.
    pub fn weighted_network(
        &self,
        options: &weights::WeightOptions,
    ) -> Arc<WeightedNetwork<Layout>> {
        self.network_used.set(true);
        self.prepared.weighted(self.program, options)
    }

    /// The compiled weighted execution kernel derived with `options`
    /// (session-cached alongside the weighted network; repeat requests
    /// return the identical `Arc`).
    pub fn weight_kernel(&self, options: &weights::WeightOptions) -> Arc<mlo_csp::WeightKernel> {
        self.network_used.set(true);
        self.prepared.weight_kernel(self.program, options)
    }

    /// The request's node/time budget in `mlo-csp` form.
    pub fn limits(&self) -> SearchLimits {
        self.limits
    }

    /// A fresh RNG seeded from the request: identical requests replay
    /// identical random decisions.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.request.seed)
    }

    /// Runs the heuristic baseline (never fails, not cached — it is cheap
    /// relative to any search).
    pub fn heuristic(&self) -> LayoutAssignment {
        heuristic_assignment(self.program).assignment
    }

    /// Converts a constraint-network solution into a complete layout
    /// assignment (arrays without a network variable get row-major).
    pub fn assignment_from_solution(
        &self,
        solution: &mlo_csp::Solution<Layout>,
    ) -> LayoutAssignment {
        assignment_from_solution(self.program, self.network(), solution)
    }

    /// Maps a completed `mlo-csp` solve onto a [`StrategyOutcome`],
    /// classifying limit hits and unsatisfiability — shared by every
    /// systematic-search strategy.
    pub fn outcome_from_solve(&self, result: SolveResult<Layout>) -> StrategyOutcome {
        match result.solution {
            Some(solution) => StrategyOutcome::Solved {
                assignment: self.assignment_from_solution(&solution),
                stats: Some(result.stats),
                proven_satisfiable: true,
            },
            None if result.hit_deadline => StrategyOutcome::Exhausted {
                reason: FallbackReason::DeadlineExceeded,
                stats: Some(result.stats),
            },
            None if result.hit_node_limit => StrategyOutcome::Exhausted {
                reason: FallbackReason::NodeBudgetExhausted,
                stats: Some(result.stats),
            },
            // The cancelled arm must precede the unsatisfiable one: a run
            // aborted by a CancelToken has no solution and no limit hits,
            // which would otherwise read as an UNSAT proof.
            None if result.cancelled => StrategyOutcome::Exhausted {
                reason: FallbackReason::Cancelled,
                stats: Some(result.stats),
            },
            None => StrategyOutcome::Unsatisfiable {
                stats: Some(result.stats),
            },
        }
    }
}

/// What a strategy's search concluded.
#[derive(Debug, Clone)]
pub enum StrategyOutcome {
    /// A complete assignment was produced.
    Solved {
        /// The layouts (complete over the program's arrays).
        assignment: LayoutAssignment,
        /// Search counters, when a search ran.
        stats: Option<SearchStats>,
        /// Whether the assignment is a proof of network satisfiability
        /// (`false` for e.g. the heuristic, which solves no network).
        proven_satisfiable: bool,
    },
    /// The network was proven to have no solution.
    Unsatisfiable {
        /// Search counters of the proving run.
        stats: Option<SearchStats>,
    },
    /// A budget ran out before the search could conclude.
    Exhausted {
        /// Which budget.
        reason: FallbackReason,
        /// Search counters accumulated before the cutoff.
        stats: Option<SearchStats>,
    },
}

/// An object-safe layout-determination strategy.
///
/// Implementations must be cheap to share (`Send + Sync`): one value serves
/// concurrent requests, with all per-request state coming in through the
/// [`StrategyContext`].
pub trait LayoutStrategy: Send + Sync {
    /// The registry name (lower-case, hyphenated by convention).
    fn name(&self) -> &str;

    /// One-line human description.
    fn description(&self) -> &str {
        ""
    }

    /// Determines layouts for the context's program.
    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError>;
}

impl fmt::Debug for dyn LayoutStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LayoutStrategy({})", self.name())
    }
}

/// The heuristic layout-propagation baseline (paper, Section 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicStrategy;

impl LayoutStrategy for HeuristicStrategy {
    fn name(&self) -> &str {
        "heuristic"
    }

    fn description(&self) -> &str {
        "layout propagation ordered by nest cost (the paper's baseline)"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        Ok(StrategyOutcome::Solved {
            assignment: ctx.heuristic(),
            stats: None,
            proven_satisfiable: false,
        })
    }
}

/// A systematic constraint search configured as one of the paper's schemes.
#[derive(Debug, Clone)]
pub struct SchemeStrategy {
    name: &'static str,
    description: &'static str,
    scheme: CspScheme,
}

impl SchemeStrategy {
    /// The paper's base scheme (random orderings, chronological
    /// backtracking).
    pub fn base() -> Self {
        SchemeStrategy {
            name: "base",
            description: "random orderings, chronological backtracking (paper base scheme)",
            scheme: CspScheme::Base,
        }
    }

    /// The paper's enhanced scheme.
    pub fn enhanced() -> Self {
        SchemeStrategy {
            name: "enhanced",
            description:
                "most-constraining variable, least-constraining value, backjumping (paper enhanced scheme)",
            scheme: CspScheme::Enhanced,
        }
    }

    /// Enhanced plus forward checking.
    pub fn forward_checking() -> Self {
        SchemeStrategy {
            name: "forward-checking",
            description: "enhanced scheme plus forward checking",
            scheme: CspScheme::ForwardChecking,
        }
    }

    /// Enhanced plus AC-3 preprocessing and forward checking.
    pub fn full_propagation() -> Self {
        SchemeStrategy {
            name: "full-propagation",
            description: "enhanced scheme plus AC-3 preprocessing and forward checking",
            scheme: CspScheme::FullPropagation,
        }
    }

    /// The underlying `mlo-csp` scheme.
    pub fn scheme(&self) -> CspScheme {
        self.scheme
    }
}

impl LayoutStrategy for SchemeStrategy {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> &str {
        self.description
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        let engine = SearchEngine::with_scheme(self.scheme);
        let mut rng = ctx.rng();
        let result = match ctx.cancel_token() {
            Some(token) => {
                engine.solve_cancellable(ctx.network().network(), &mut rng, &ctx.limits(), token)
            }
            None => engine.search(ctx.network().network(), &mut rng, &ctx.limits()),
        };
        Ok(ctx.outcome_from_solve(result))
    }
}

/// Weighted constraints solved with branch and bound (the paper's first
/// future direction).
#[derive(Debug, Clone)]
pub struct WeightedStrategy {
    /// How constraint weights are derived from nest costs.
    pub weights: weights::WeightOptions,
    /// Default node cap when the request sets none (branch and bound
    /// explores exhaustively and needs one on larger networks).
    pub default_node_limit: u64,
}

impl Default for WeightedStrategy {
    fn default() -> Self {
        WeightedStrategy {
            weights: weights::WeightOptions::default(),
            default_node_limit: 2_000_000,
        }
    }
}

impl LayoutStrategy for WeightedStrategy {
    fn name(&self) -> &str {
        "weighted"
    }

    fn description(&self) -> &str {
        "branch and bound over nest-cost-weighted constraints"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        // An Arc handle onto the session-cached weighted network: nothing is
        // copied — the hard constraint tables are shared with the cached
        // LayoutNetwork and the weight tables are derived at most once per
        // (program, options) pair.
        let weighted = ctx.weighted_network(&self.weights);
        let mut limits = ctx.limits();
        limits.node_limit = Some(limits.node_limit.unwrap_or(self.default_node_limit));
        let parallelism = ctx.parallelism();
        let result = if parallelism > 1 {
            // Portfolio branch and bound: helper shards/probes feed the
            // shared incumbent, the exhaustive primary returns the answer —
            // identical to the single-thread solution, sooner.  The
            // adaptive sequential probe lives inside the portfolio now
            // (`ParallelBranchAndBound::parallel_threshold`): the primary
            // runs alone under the threshold budget and only instances
            // that exhaust it pay for parallel dispatch.  A zero threshold
            // (probe not worthwhile: the request's own budget is no larger)
            // disables the probe rather than re-running the same budget.
            let threshold = if ctx.probe_is_worthwhile(limits.node_limit) {
                ctx.parallel_threshold()
            } else {
                0
            };
            let mut bnb = ParallelBranchAndBound::new(BranchAndBound::new())
                .with_pool(ctx.worker_pool())
                .parallelism(parallelism)
                .seed(ctx.request().seed)
                .parallel_threshold(threshold);
            if let Some(token) = ctx.cancel_token() {
                bnb = bnb.cancel_token(token.clone());
            }
            if let Some(observer) = ctx.incumbent_observer() {
                bnb = bnb.observe_incumbent(observer.clone());
            }
            bnb.optimize_detailed(&weighted, &limits).result
        } else {
            // Sequential branch and bound through the cooperation hooks:
            // with no hooks attached this is exactly `optimize_with`; an
            // observed incumbent never changes the result (the solver's own
            // bound dominates the shared strict-< prune when it feeds the
            // incumbent itself).
            let shared = ctx
                .incumbent_observer()
                .map(|observer| SharedIncumbent::observed(observer.clone()));
            let hooks = Coop {
                incumbent: shared.as_ref(),
                cancel: ctx.cancel_token(),
            };
            BranchAndBound::new().optimize_coop(&weighted, &limits, &hooks)
        };
        match result.solution {
            Some(solution) => Ok(StrategyOutcome::Solved {
                assignment: ctx.assignment_from_solution(&solution),
                stats: Some(result.stats),
                proven_satisfiable: true,
            }),
            None if result.hit_deadline => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::DeadlineExceeded,
                stats: Some(result.stats),
            }),
            None if result.hit_node_limit => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::NodeBudgetExhausted,
                stats: Some(result.stats),
            }),
            None if result.cancelled => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::Cancelled,
                stats: Some(result.stats),
            }),
            None => Ok(StrategyOutcome::Unsatisfiable {
                stats: Some(result.stats),
            }),
        }
    }
}

/// Min-conflicts local search with restarts (extension).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearchStrategy {
    /// The min-conflicts configuration (its seed is overridden by the
    /// request's RNG).
    pub config: MinConflicts,
}

impl LayoutStrategy for LocalSearchStrategy {
    fn name(&self) -> &str {
        "local-search"
    }

    fn description(&self) -> &str {
        "min-conflicts local search with restarts (cannot prove unsatisfiability)"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        let mut rng = ctx.rng();
        let network = ctx.network().network();
        let result = match ctx.cancel_token() {
            Some(token) => self
                .config
                .solve_cancellable(network, &mut rng, &ctx.limits(), token),
            None => self.config.solve_with(network, &mut rng, &ctx.limits()),
        };
        match result.solution {
            Some(solution) => Ok(StrategyOutcome::Solved {
                assignment: ctx.assignment_from_solution(&solution),
                stats: Some(result.stats),
                proven_satisfiable: true,
            }),
            None if result.hit_deadline => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::DeadlineExceeded,
                stats: Some(result.stats),
            }),
            None if result.cancelled => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::Cancelled,
                stats: Some(result.stats),
            }),
            // Local search cannot prove unsatisfiability: an exhausted
            // budget is always inconclusive.
            None => Ok(StrategyOutcome::Exhausted {
                reason: FallbackReason::Inconclusive,
                stats: Some(result.stats),
            }),
        }
    }
}

/// The parallel portfolio strategy: diverse solver configurations racing
/// on the session's worker pool (the tentpole of the scaling roadmap).
///
/// The portfolio members are `mlo-csp`'s canonical diverse roster
/// ([`ParallelPortfolioSearch::diverse`]): the three deterministic schemes
/// followed by seeded base-scheme members and a local-search member.  The
/// request's [`parallelism`](OptimizeRequest::parallelism) knob caps how
/// many race concurrently; the *result* is identical at every setting (the
/// winner is the lowest-index member that finds a solution, decided only
/// after every lower member completes), so batch pipelines can tune
/// latency without re-validating outputs.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioStrategy {
    /// Number of seeded base-scheme members in the race (plus one
    /// local-search member when nonzero).
    pub randomized: usize,
}

impl Default for PortfolioStrategy {
    fn default() -> Self {
        PortfolioStrategy { randomized: 4 }
    }
}

impl LayoutStrategy for PortfolioStrategy {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn description(&self) -> &str {
        "parallel race of diverse schemes and seeds (thread-count-independent result)"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        let network = ctx.network().network();
        let parallelism = ctx.parallelism();
        // Adaptive sequential probe: member 0 of the diverse race is the
        // deterministic enhanced scheme, and the race's
        // lowest-index-winner rule makes its verdict final — so running it
        // alone under the probe budget either decides the whole race
        // sequentially (every paper benchmark does) or proves the instance
        // big enough to be worth fanning out.  Skipped when the request's
        // own node budget is no larger than the threshold: a failed probe
        // would escalate to a race under the identical budget.
        if parallelism > 1 && ctx.probe_is_worthwhile(ctx.limits().node_limit) {
            let probe_limits = ctx.probe_limits();
            let engine = SearchEngine::with_scheme(CspScheme::Enhanced);
            let mut rng = ctx.rng();
            let probe = match ctx.cancel_token() {
                Some(token) => engine.solve_cancellable(network, &mut rng, &probe_limits, token),
                None => engine.solve_with(network, &mut rng, &probe_limits),
            };
            if !probe.hit_node_limit || probe.cancelled {
                return Ok(ctx.outcome_from_solve(probe));
            }
            // Budget exhausted without a verdict: fall through to the race.
        }
        let mut search = ParallelPortfolioSearch::diverse(self.randomized).parallelism(parallelism);
        if parallelism > 1 {
            search = search.with_pool(ctx.worker_pool());
        }
        if let Some(token) = ctx.cancel_token() {
            search = search.cancel_token(token.clone());
        }
        let mut rng = ctx.rng();
        let result = search.search(network, &mut rng, &ctx.limits());
        Ok(ctx.outcome_from_solve(result))
    }
}

/// Work-stealing dynamic shard search: one search tree, partitioned
/// across the session's worker pool and re-partitioned on the fly as
/// workers go idle.
///
/// Where [`PortfolioStrategy`] races redundant solvers — which only pays
/// off on satisfiable instances, because every racer must walk the whole
/// tree to prove unsatisfiability — `portfolio-steal` shards the tree
/// itself, so *UNSAT proofs* and exhaustive tails parallelize too.  The
/// merge contract is deterministic (the lowest-canonical-index solution
/// wins every race), so the reported solution is identical at every
/// thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortfolioStealStrategy;

impl LayoutStrategy for PortfolioStealStrategy {
    fn name(&self) -> &str {
        "portfolio-steal"
    }

    fn description(&self) -> &str {
        "work-stealing dynamic shard search (parallel UNSAT proofs, thread-count-independent result)"
    }

    fn determine(&self, ctx: &StrategyContext<'_>) -> Result<StrategyOutcome, OptimizeError> {
        let network = ctx.network().network();
        let parallelism = ctx.parallelism();
        // Same adaptive sequential probe as `portfolio`: paper-sized
        // instances are decided by the enhanced scheme within the probe
        // budget and never pay for parallel dispatch.  Skipped when the
        // request's own node budget is no larger than the threshold.
        if parallelism > 1 && ctx.probe_is_worthwhile(ctx.limits().node_limit) {
            let probe_limits = ctx.probe_limits();
            let engine = SearchEngine::with_scheme(CspScheme::Enhanced);
            let mut rng = ctx.rng();
            let probe = match ctx.cancel_token() {
                Some(token) => engine.solve_cancellable(network, &mut rng, &probe_limits, token),
                None => engine.solve_with(network, &mut rng, &probe_limits),
            };
            if !probe.hit_node_limit || probe.cancelled {
                return Ok(ctx.outcome_from_solve(probe));
            }
            // Budget exhausted without a verdict: shard the tree.
        }
        let mut scheduler = StealScheduler::new().parallelism(parallelism);
        if parallelism > 1 {
            scheduler = scheduler.with_pool(ctx.worker_pool());
        }
        let result = scheduler
            .solve_detailed(network, &ctx.limits(), ctx.cancel_token())
            .result;
        Ok(ctx.outcome_from_solve(result))
    }
}

/// A name-indexed collection of strategies, preserving registration order.
///
/// [`StrategyRegistry::builtin`] registers the nine built-in strategies;
/// [`StrategyRegistry::register`] adds
/// (or replaces) entries, so downstream users plug in custom strategies
/// without touching this crate.
#[derive(Debug, Clone, Default)]
pub struct StrategyRegistry {
    entries: Vec<Arc<dyn LayoutStrategy>>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        StrategyRegistry::default()
    }

    /// The registry of the nine built-in strategies, in the canonical
    /// order (heuristic, base, enhanced, forward-checking,
    /// full-propagation, weighted, local-search, portfolio,
    /// portfolio-steal).
    pub fn builtin() -> Self {
        let mut registry = StrategyRegistry::empty();
        registry.register(Arc::new(HeuristicStrategy));
        registry.register(Arc::new(SchemeStrategy::base()));
        registry.register(Arc::new(SchemeStrategy::enhanced()));
        registry.register(Arc::new(SchemeStrategy::forward_checking()));
        registry.register(Arc::new(SchemeStrategy::full_propagation()));
        registry.register(Arc::new(WeightedStrategy::default()));
        registry.register(Arc::new(LocalSearchStrategy::default()));
        registry.register(Arc::new(PortfolioStrategy::default()));
        registry.register(Arc::new(PortfolioStealStrategy));
        registry
    }

    /// Registers a strategy, replacing any existing entry with the same
    /// name (the new entry keeps the old entry's position).
    pub fn register(&mut self, strategy: Arc<dyn LayoutStrategy>) {
        match self
            .entries
            .iter_mut()
            .find(|e| e.name() == strategy.name())
        {
            Some(slot) => *slot = strategy,
            None => self.entries.push(strategy),
        }
    }

    /// Looks a strategy up by typed id (a [`StrategyId::Custom`] resolves
    /// against registered names exactly like a built-in).
    pub fn resolve(&self, id: &StrategyId) -> Option<Arc<dyn LayoutStrategy>> {
        self.entries
            .iter()
            .find(|e| e.name() == id.as_str())
            .cloned()
    }

    /// Looks a strategy up by bare name.
    #[deprecated(
        since = "0.3.0",
        note = "strategy lookup is typed now: use `resolve(&StrategyId::from(name))`"
    )]
    pub fn get(&self, name: &str) -> Option<Arc<dyn LayoutStrategy>> {
        self.resolve(&StrategyId::from(name))
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name().to_string()).collect()
    }

    /// Iterates the registered strategies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn LayoutStrategy>> {
        self.entries.iter()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Converts a constraint-network solution into a complete layout assignment
/// (arrays without a network variable get their canonical row-major
/// layout).
pub(crate) fn assignment_from_solution(
    program: &Program,
    layout_network: &LayoutNetwork,
    solution: &mlo_csp::Solution<Layout>,
) -> LayoutAssignment {
    let mut assignment = LayoutAssignment::new();
    for array in program.arrays() {
        match layout_network.variable_of(array.id()) {
            Some(var) => assignment.set(array.id(), solution.value(var).clone()),
            None => assignment.set(array.id(), Layout::row_major(array.rank())),
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_nine_builtin_strategies() {
        let registry = StrategyRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec![
                "heuristic",
                "base",
                "enhanced",
                "forward-checking",
                "full-propagation",
                "weighted",
                "local-search",
                "portfolio",
                "portfolio-steal",
            ]
        );
        assert_eq!(registry.len(), 9);
        assert!(!registry.is_empty());
        assert!(registry.resolve(&StrategyId::Enhanced).is_some());
        assert!(registry.resolve(&StrategyId::Portfolio).is_some());
        assert!(registry.resolve(&StrategyId::PortfolioSteal).is_some());
        assert!(registry.resolve(&StrategyId::custom("nope")).is_none());
        #[allow(deprecated)]
        {
            assert!(registry.get("enhanced").is_some());
            assert!(registry.get("nope").is_none());
        }
    }

    #[test]
    fn register_replaces_by_name_in_place() {
        let mut registry = StrategyRegistry::builtin();
        // A "base" replacement that is really the enhanced scheme.
        #[derive(Debug)]
        struct FakeBase;
        impl LayoutStrategy for FakeBase {
            fn name(&self) -> &str {
                "base"
            }
            fn determine(
                &self,
                ctx: &StrategyContext<'_>,
            ) -> Result<StrategyOutcome, OptimizeError> {
                SchemeStrategy::enhanced().determine(ctx)
            }
        }
        registry.register(Arc::new(FakeBase));
        assert_eq!(registry.len(), 9);
        assert_eq!(registry.names()[1], "base");
        assert_eq!(
            format!("{:?}", registry.resolve(&StrategyId::Base).unwrap()),
            "LayoutStrategy(base)"
        );
    }

    #[test]
    fn strategies_describe_themselves() {
        for strategy in StrategyRegistry::builtin().iter() {
            assert!(!strategy.name().is_empty());
            assert!(!strategy.description().is_empty());
        }
    }
}
