//! Typed results of an optimization request.
//!
//! The old `Optimizer` facade reported failure as a silent
//! `fell_back_to_heuristic: bool`; callers could not tell *why* the search
//! produced no solution (proven unsatisfiable? node budget? deadline?) and
//! batch drivers could not route failures.  The engine API replaces that
//! flag with two typed values:
//!
//! * [`OptimizeError`] — the request failed and (per its
//!   [`FallbackPolicy`](crate::request::FallbackPolicy)) no fallback was
//!   wanted,
//! * [`Fallback`] — the request succeeded but the returned layouts came
//!   from the heuristic baseline, with the [`FallbackReason`] preserved.

use mlo_csp::SearchStats;
use std::fmt;

/// Why a strategy could not return a constraint-network solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The search proved the network has no solution.
    Unsatisfiable,
    /// The node budget ran out before the search finished.
    NodeBudgetExhausted,
    /// The wall-clock deadline passed before the search finished.
    DeadlineExceeded,
    /// The strategy's own budget ran out without a proof either way
    /// (e.g. local search restarts).
    Inconclusive,
    /// The request was cancelled cooperatively (a
    /// [`CancelToken`](mlo_csp::CancelToken) fired) before the search
    /// finished.
    Cancelled,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::Unsatisfiable => write!(f, "network proven unsatisfiable"),
            FallbackReason::NodeBudgetExhausted => write!(f, "node budget exhausted"),
            FallbackReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            FallbackReason::Inconclusive => write!(f, "search budget exhausted without a proof"),
            FallbackReason::Cancelled => write!(f, "request cancelled"),
        }
    }
}

/// Whether (and why) a report's layouts came from the heuristic baseline
/// instead of the requested strategy's own search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// The requested strategy produced the layouts itself.
    None,
    /// The layouts are the heuristic baseline's, because the strategy's
    /// search ended for the recorded reason.
    Heuristic(FallbackReason),
}

impl Fallback {
    /// Whether a fallback happened.
    pub fn fell_back(&self) -> bool {
        matches!(self, Fallback::Heuristic(_))
    }

    /// The reason, when a fallback happened.
    pub fn reason(&self) -> Option<FallbackReason> {
        match self {
            Fallback::None => None,
            Fallback::Heuristic(reason) => Some(*reason),
        }
    }
}

impl fmt::Display for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fallback::None => write!(f, "no fallback"),
            Fallback::Heuristic(reason) => write!(f, "heuristic fallback ({reason})"),
        }
    }
}

/// A failed optimization request.
#[derive(Debug, Clone)]
pub enum OptimizeError {
    /// The request named a strategy the registry does not know.
    UnknownStrategy {
        /// The requested name.
        name: String,
        /// The names the registry does know, for the error message.
        known: Vec<String>,
    },
    /// The constraint network was proven unsatisfiable and the request
    /// asked for an error instead of the heuristic fallback.
    Unsatisfiable {
        /// The strategy that ran.
        strategy: String,
        /// Search counters of the proving run, when available.
        stats: Option<SearchStats>,
    },
    /// A node or time budget ran out and the request asked for an error
    /// instead of the heuristic fallback.
    BudgetExhausted {
        /// The strategy that ran.
        strategy: String,
        /// Which budget ran out.
        reason: FallbackReason,
        /// Search counters accumulated before the cutoff, when available.
        stats: Option<SearchStats>,
    },
    /// The requested cache-simulation evaluation failed.
    Evaluation {
        /// The strategy that ran.
        strategy: String,
        /// The simulator's error rendering.
        message: String,
    },
    /// A strategy-specific failure (the catch-all for user strategies).
    Strategy {
        /// The strategy that ran.
        strategy: String,
        /// What went wrong.
        message: String,
    },
    /// The strategy panicked mid-solve.  The panic was contained by the
    /// worker pool (see [`mlo_csp::solver::WorkerPool`]): the pool stays
    /// usable and every waiter on the request observes this error instead
    /// of blocking forever.
    StrategyPanicked {
        /// The strategy that panicked.
        strategy: String,
        /// The captured panic payload rendered as text.
        message: String,
        /// The fault-injection site that triggered the panic, when the
        /// panic came from an armed failpoint (see [`mlo_csp::fault`]).
        failpoint: Option<String>,
    },
}

impl OptimizeError {
    /// The strategy the error came from, when one was resolved.
    pub fn strategy(&self) -> Option<&str> {
        match self {
            OptimizeError::UnknownStrategy { .. } => None,
            OptimizeError::Unsatisfiable { strategy, .. }
            | OptimizeError::BudgetExhausted { strategy, .. }
            | OptimizeError::Evaluation { strategy, .. }
            | OptimizeError::Strategy { strategy, .. }
            | OptimizeError::StrategyPanicked { strategy, .. } => Some(strategy),
        }
    }
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::UnknownStrategy { name, known } => {
                write!(
                    f,
                    "unknown strategy {name:?}; known strategies: {}",
                    known.join(", ")
                )
            }
            OptimizeError::Unsatisfiable { strategy, .. } => {
                write!(f, "{strategy}: constraint network proven unsatisfiable")
            }
            OptimizeError::BudgetExhausted {
                strategy, reason, ..
            } => {
                write!(f, "{strategy}: {reason}")
            }
            OptimizeError::Evaluation { strategy, message } => {
                write!(f, "{strategy}: cache evaluation failed: {message}")
            }
            OptimizeError::Strategy { strategy, message } => {
                write!(f, "{strategy}: {message}")
            }
            OptimizeError::StrategyPanicked {
                strategy,
                message,
                failpoint,
            } => {
                write!(f, "{strategy}: strategy panicked: {message}")?;
                if let Some(site) = failpoint {
                    write!(f, " (injected at failpoint `{site}`)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_accessors() {
        assert!(!Fallback::None.fell_back());
        assert_eq!(Fallback::None.reason(), None);
        let fb = Fallback::Heuristic(FallbackReason::Unsatisfiable);
        assert!(fb.fell_back());
        assert_eq!(fb.reason(), Some(FallbackReason::Unsatisfiable));
        assert!(fb.to_string().contains("unsatisfiable"));
    }

    #[test]
    fn error_display_names_the_strategy() {
        let e = OptimizeError::UnknownStrategy {
            name: "turbo".into(),
            known: vec!["base".into(), "enhanced".into()],
        };
        assert!(e.to_string().contains("turbo"));
        assert!(e.to_string().contains("enhanced"));
        assert_eq!(e.strategy(), None);

        let e = OptimizeError::BudgetExhausted {
            strategy: "base".into(),
            reason: FallbackReason::NodeBudgetExhausted,
            stats: None,
        };
        assert!(e.to_string().contains("node budget"));
        assert_eq!(e.strategy(), Some("base"));

        let e = OptimizeError::StrategyPanicked {
            strategy: "enhanced".into(),
            message: "index out of bounds".into(),
            failpoint: Some("engine.solve".into()),
        };
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("engine.solve"));
        assert_eq!(e.strategy(), Some("enhanced"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizeError>();
        assert_send_sync::<Fallback>();
    }
}
