//! The legacy `Optimizer` facade, kept as a thin shim over the engine API.
//!
//! This module predates the session-based engine
//! ([`crate::Engine`] / [`crate::Session`]); it rebuilds
//! the candidate sets and the constraint network on every call and reports
//! failure through the untyped `fell_back_to_heuristic` flag.  It is kept
//! so existing callers and the original quick start keep compiling, but
//! new code should issue [`crate::OptimizeRequest`]s
//! against a session — see the migration notes in the crate-level docs.

pub use crate::engine::NetworkSummary;
use crate::engine::{Engine, OptimizeReport};
use crate::request::OptimizeRequest;
use mlo_csp::SearchStats;
use mlo_ir::Program;
use mlo_layout::{build_network, CandidateOptions, LayoutAssignment, LayoutNetwork};
use std::fmt;
use std::time::Duration;

/// Which layout-determination scheme to run.
///
/// The engine API replaces this closed enum with named strategies in a
/// [`StrategyRegistry`](crate::StrategyRegistry); the enum is kept as a
/// convenience for the built-in seven and converts via
/// [`OptimizerScheme::strategy_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerScheme {
    /// The prior linear-algebra heuristic (layout propagation ordered by
    /// nest cost) — the paper's baseline.
    Heuristic,
    /// Constraint network solved with the paper's base scheme (random
    /// orderings, chronological backtracking).
    Base,
    /// Constraint network solved with the paper's enhanced scheme
    /// (most-constraining variable, least-constraining value, backjumping).
    Enhanced,
    /// Enhanced plus forward checking (extension).
    ForwardChecking,
    /// Enhanced plus AC-3 preprocessing and forward checking (extension).
    FullPropagation,
    /// Weighted constraint network solved with branch and bound: among all
    /// consistent layout combinations, picks the one with the largest total
    /// nest-cost-weighted locality benefit (the paper's future-work
    /// extension).
    Weighted,
    /// Min-conflicts local search with restarts (extension): cannot prove
    /// unsatisfiability, but scales to very large networks; falls back to
    /// the heuristic when its budget runs out.
    LocalSearch,
}

impl OptimizerScheme {
    /// All seven built-in schemes, in the canonical order.
    pub fn all() -> [OptimizerScheme; 7] {
        [
            OptimizerScheme::Heuristic,
            OptimizerScheme::Base,
            OptimizerScheme::Enhanced,
            OptimizerScheme::ForwardChecking,
            OptimizerScheme::FullPropagation,
            OptimizerScheme::Weighted,
            OptimizerScheme::LocalSearch,
        ]
    }

    /// The registry name of the equivalent built-in
    /// [`LayoutStrategy`](crate::LayoutStrategy).
    pub fn strategy_name(&self) -> &'static str {
        match self {
            OptimizerScheme::Heuristic => "heuristic",
            OptimizerScheme::Base => "base",
            OptimizerScheme::Enhanced => "enhanced",
            OptimizerScheme::ForwardChecking => "forward-checking",
            OptimizerScheme::FullPropagation => "full-propagation",
            OptimizerScheme::Weighted => "weighted",
            OptimizerScheme::LocalSearch => "local-search",
        }
    }
}

impl fmt::Display for OptimizerScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.strategy_name())
    }
}

/// Tuning knobs of the legacy optimizer facade.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// The scheme to run.
    pub scheme: OptimizerScheme,
    /// Candidate-layout enumeration options.
    pub candidates: CandidateOptions,
    /// Seed for the base scheme's random orderings.
    pub seed: u64,
    /// Node limit for the constraint search (`None` = unlimited).
    ///
    /// Behaviour change versus the pre-engine facade: for the
    /// [`OptimizerScheme::LocalSearch`] scheme this is now a **total** cap
    /// on repair steps across all restarts, where it used to be a
    /// per-restart step cap (so the old facade could do up to
    /// `max_restarts` times more work than the stated budget).
    pub node_limit: Option<u64>,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            scheme: OptimizerScheme::Enhanced,
            candidates: CandidateOptions::default(),
            seed: 0xC0FFEE,
            node_limit: None,
        }
    }
}

impl OptimizerOptions {
    /// The engine request equivalent to these options.
    pub fn to_request(&self) -> OptimizeRequest {
        OptimizeRequest {
            strategy: self.scheme.strategy_name().to_string(),
            candidates: self.candidates,
            seed: self.seed,
            node_limit: self.node_limit,
            ..OptimizeRequest::default()
        }
    }
}

/// The result of one legacy optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The layout chosen for every array (always complete).
    pub assignment: LayoutAssignment,
    /// The scheme that was run.
    pub scheme: OptimizerScheme,
    /// Time spent determining the layouts (the paper's Table 2 metric).
    pub solution_time: Duration,
    /// Search statistics, when a constraint search ran.
    pub search_stats: Option<SearchStats>,
    /// Whether the constraint network had a solution (`None` when no proof
    /// was attempted or reached).
    pub satisfiable: Option<bool>,
    /// Whether the optimizer fell back to the heuristic assignment because
    /// the network was unsatisfiable or the search ran out of budget.
    pub fell_back_to_heuristic: bool,
    /// Network shape, when one was built.
    pub network: Option<NetworkSummary>,
}

impl OptimizationOutcome {
    fn from_report(report: OptimizeReport, scheme: OptimizerScheme) -> Self {
        OptimizationOutcome {
            assignment: report.assignment,
            scheme,
            solution_time: report.solution_time,
            search_stats: report.search_stats,
            satisfiable: report.satisfiable,
            fell_back_to_heuristic: report.fallback.fell_back(),
            network: report.network,
        }
    }
}

/// The legacy end-to-end optimizer facade.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::session()` with `OptimizeRequest`s: sessions cache per-program state, \
            strategies are pluggable and failures are typed"
)]
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    options: OptimizerOptions,
}

#[allow(deprecated)]
impl Optimizer {
    /// Creates an optimizer running the given scheme with default options.
    pub fn new(scheme: OptimizerScheme) -> Self {
        Optimizer {
            options: OptimizerOptions {
                scheme,
                ..OptimizerOptions::default()
            },
        }
    }

    /// Creates an optimizer with explicit options.
    pub fn with_options(options: OptimizerOptions) -> Self {
        Optimizer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Builds (and returns) the constraint network of a program without
    /// solving it — useful for inspection, weighting experiments and the
    /// Table 1 harness.
    pub fn network(&self, program: &Program) -> LayoutNetwork {
        build_network(program, &self.options.candidates)
    }

    /// Determines memory layouts for every array of the program.
    ///
    /// Delegates to a throw-away [`Engine`] session; the typed errors of
    /// the engine API are folded back into the legacy
    /// `fell_back_to_heuristic` flag (the default request never errors).
    pub fn optimize(&self, program: &Program) -> OptimizationOutcome {
        let report = Engine::new()
            .optimize(program, &self.options.to_request())
            .expect("legacy requests use the heuristic fallback policy and known strategies");
        OptimizationOutcome::from_report(report, self.options.scheme)
    }

    /// Computes a per-segment **dynamic layout plan** (the paper's second
    /// future direction): the program's nests are split into windows of
    /// `window` consecutive nests and every array may change layout between
    /// windows when the re-layout copy pays for itself.
    pub fn dynamic_plan(&self, program: &Program, window: usize) -> mlo_layout::DynamicPlan {
        Engine::new()
            .session()
            .dynamic_plan(program, window, &self.options.candidates)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;
    use mlo_ir::{AccessBuilder, ProgramBuilder};
    use mlo_layout::quality::{assignment_score, ideal_score};

    fn figure2_program() -> Program {
        let n = 16;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(
                q1,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [0, 1])
                    .build(),
            );
            nest.read(
                q2,
                AccessBuilder::new(2, 2)
                    .row(0, [1, 1])
                    .row(1, [1, 0])
                    .build(),
            );
        });
        b.build()
    }

    #[test]
    fn every_scheme_produces_a_complete_assignment() {
        let p = figure2_program();
        for scheme in OptimizerScheme::all() {
            let outcome = Optimizer::new(scheme).optimize(&p);
            assert_eq!(outcome.scheme, scheme);
            for array in p.arrays() {
                assert!(
                    outcome.assignment.contains(array.id()),
                    "{scheme} left {} without a layout",
                    array.name()
                );
            }
            // Figure 2 is satisfiable, so constraint schemes must not fall
            // back, and every scheme reaches the ideal locality score.
            assert!(!outcome.fell_back_to_heuristic, "{scheme} fell back");
            assert_eq!(
                assignment_score(&p, &outcome.assignment),
                ideal_score(&p),
                "{scheme} missed the ideal score"
            );
        }
    }

    #[test]
    fn network_summary_matches_the_network() {
        let p = figure2_program();
        let optimizer = Optimizer::new(OptimizerScheme::Enhanced);
        let outcome = optimizer.optimize(&p);
        let summary = outcome.network.unwrap();
        assert_eq!(summary.variables, 2);
        assert_eq!(summary.constraints, 1);
        assert!(summary.total_domain_size >= 4);
        assert!(summary.search_space >= 9.0);
        let ln = optimizer.network(&p);
        assert_eq!(ln.network().variable_count(), 2);
    }

    #[test]
    fn unsatisfiable_networks_fall_back_to_the_heuristic() {
        // MxM's matmul nests want mutually inconsistent layouts (no loop
        // order gives A, B and C locality at once), so the hard network has
        // no solution and the optimizer must fall back gracefully.
        let p = Benchmark::MxM.program();
        let outcome = Optimizer::new(OptimizerScheme::Enhanced).optimize(&p);
        assert_eq!(outcome.satisfiable, Some(false));
        assert!(outcome.fell_back_to_heuristic);
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
        // The heuristic scheme agrees with the fallback assignment.
        let heuristic = Optimizer::new(OptimizerScheme::Heuristic).optimize(&p);
        assert_eq!(outcome.assignment, heuristic.assignment);
    }

    #[test]
    fn pipeline_benchmark_is_satisfiable_and_beats_the_heuristic_statically() {
        let p = Benchmark::MedIm04.program();
        let optimizer = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::Enhanced,
            candidates: Benchmark::MedIm04.candidate_options(),
            ..OptimizerOptions::default()
        });
        let outcome = optimizer.optimize(&p);
        assert_eq!(outcome.satisfiable, Some(true));
        assert!(!outcome.fell_back_to_heuristic);
        let heuristic = Optimizer::new(OptimizerScheme::Heuristic).optimize(&p);
        let csp_score = assignment_score(&p, &outcome.assignment);
        let heuristic_score = assignment_score(&p, &heuristic.assignment);
        assert!(
            csp_score >= heuristic_score,
            "constraint network ({csp_score}) should not lose to the heuristic ({heuristic_score})"
        );
        assert_eq!(csp_score, ideal_score(&p));
    }

    #[test]
    fn node_limit_triggers_fallback() {
        let p = Benchmark::Radar.program();
        let outcome = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::Base,
            candidates: Benchmark::Radar.candidate_options(),
            seed: 5,
            node_limit: Some(3),
        })
        .optimize(&p);
        assert!(outcome.fell_back_to_heuristic);
        assert!(outcome.assignment.len() >= p.arrays().len());
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(OptimizerScheme::Heuristic.to_string(), "heuristic");
        assert_eq!(OptimizerScheme::Enhanced.to_string(), "enhanced");
        assert_eq!(OptimizerScheme::Weighted.to_string(), "weighted");
        assert_eq!(OptimizerScheme::LocalSearch.to_string(), "local-search");
    }

    #[test]
    fn local_search_falls_back_when_it_cannot_find_a_solution() {
        // MxM's network is unsatisfiable; local search exhausts its budget
        // and must fall back to the heuristic without claiming a proof.
        let p = Benchmark::MxM.program();
        let outcome = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::LocalSearch,
            node_limit: Some(200),
            ..OptimizerOptions::default()
        })
        .optimize(&p);
        assert!(outcome.fell_back_to_heuristic);
        assert_eq!(outcome.satisfiable, None);
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
    }

    #[test]
    fn dynamic_plan_covers_every_array_and_segment() {
        let p = Benchmark::Track.program();
        let optimizer = Optimizer::new(OptimizerScheme::Enhanced);
        let plan = optimizer.dynamic_plan(&p, 2);
        assert_eq!(plan.schedules.len(), p.arrays().len());
        for schedule in &plan.schedules {
            assert_eq!(schedule.per_segment.len(), plan.segmentation.len());
            assert!(schedule.cost <= schedule.static_cost + 1e-9);
        }
        // A window covering the whole program degenerates to one segment.
        let single = optimizer.dynamic_plan(&p, p.nests().len());
        assert_eq!(single.segmentation.len(), 1);
        assert!(single.dynamic_arrays().is_empty());
    }
}
