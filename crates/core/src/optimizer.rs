//! The optimizer facade: program in, layout assignment out.

use mlo_csp::{BranchAndBound, MinConflicts, Scheme as CspScheme, SearchEngine, SearchStats};
use mlo_ir::Program;
use mlo_layout::{
    build_network, heuristic_assignment, weights, CandidateOptions, Layout, LayoutAssignment,
    LayoutNetwork,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Which layout-determination scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerScheme {
    /// The prior linear-algebra heuristic (layout propagation ordered by
    /// nest cost) — the paper's baseline.
    Heuristic,
    /// Constraint network solved with the paper's base scheme (random
    /// orderings, chronological backtracking).
    Base,
    /// Constraint network solved with the paper's enhanced scheme
    /// (most-constraining variable, least-constraining value, backjumping).
    Enhanced,
    /// Enhanced plus forward checking (extension).
    ForwardChecking,
    /// Enhanced plus AC-3 preprocessing and forward checking (extension).
    FullPropagation,
    /// Weighted constraint network solved with branch and bound: among all
    /// consistent layout combinations, picks the one with the largest total
    /// nest-cost-weighted locality benefit (the paper's future-work
    /// extension).
    Weighted,
    /// Min-conflicts local search with restarts (extension): cannot prove
    /// unsatisfiability, but scales to very large networks; falls back to
    /// the heuristic when its budget runs out.
    LocalSearch,
}

impl fmt::Display for OptimizerScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerScheme::Heuristic => write!(f, "heuristic"),
            OptimizerScheme::Base => write!(f, "base"),
            OptimizerScheme::Enhanced => write!(f, "enhanced"),
            OptimizerScheme::ForwardChecking => write!(f, "forward-checking"),
            OptimizerScheme::FullPropagation => write!(f, "full-propagation"),
            OptimizerScheme::Weighted => write!(f, "weighted"),
            OptimizerScheme::LocalSearch => write!(f, "local-search"),
        }
    }
}

/// Tuning knobs of the optimizer.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// The scheme to run.
    pub scheme: OptimizerScheme,
    /// Candidate-layout enumeration options.
    pub candidates: CandidateOptions,
    /// Seed for the base scheme's random orderings.
    pub seed: u64,
    /// Node limit for the constraint search (`None` = unlimited).
    pub node_limit: Option<u64>,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            scheme: OptimizerScheme::Enhanced,
            candidates: CandidateOptions::default(),
            seed: 0xC0FFEE,
            node_limit: None,
        }
    }
}

/// Summary of the constraint network an optimization run worked on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSummary {
    /// Number of variables (arrays).
    pub variables: usize,
    /// Number of binary constraints.
    pub constraints: usize,
    /// Total domain size (the paper's Table 1 metric).
    pub total_domain_size: usize,
    /// Product of domain sizes (naive search-space size).
    pub search_space: f64,
}

/// The result of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The layout chosen for every array (always complete).
    pub assignment: LayoutAssignment,
    /// The scheme that was run.
    pub scheme: OptimizerScheme,
    /// Time spent determining the layouts (the paper's Table 2 metric).
    pub solution_time: Duration,
    /// Search statistics, when a constraint search ran.
    pub search_stats: Option<SearchStats>,
    /// Whether the constraint network had a solution (`None` for the
    /// heuristic scheme, which does not build a network).
    pub satisfiable: Option<bool>,
    /// Whether the optimizer fell back to the heuristic assignment because
    /// the network was unsatisfiable or the search hit its node limit.
    pub fell_back_to_heuristic: bool,
    /// Network shape, when one was built.
    pub network: Option<NetworkSummary>,
}

/// The end-to-end optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    options: OptimizerOptions,
}

impl Optimizer {
    /// Creates an optimizer running the given scheme with default options.
    pub fn new(scheme: OptimizerScheme) -> Self {
        Optimizer {
            options: OptimizerOptions {
                scheme,
                ..OptimizerOptions::default()
            },
        }
    }

    /// Creates an optimizer with explicit options.
    pub fn with_options(options: OptimizerOptions) -> Self {
        Optimizer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Builds (and returns) the constraint network of a program without
    /// solving it — useful for inspection, weighting experiments and the
    /// Table 1 harness.
    pub fn network(&self, program: &Program) -> LayoutNetwork {
        build_network(program, &self.options.candidates)
    }

    /// Determines memory layouts for every array of the program.
    pub fn optimize(&self, program: &Program) -> OptimizationOutcome {
        match self.options.scheme {
            OptimizerScheme::Heuristic => self.run_heuristic(program),
            OptimizerScheme::Weighted => self.run_weighted(program),
            OptimizerScheme::LocalSearch => self.run_local_search(program),
            _ => self.run_csp(program),
        }
    }

    /// Computes a per-segment **dynamic layout plan** (the paper's second
    /// future direction): the program's nests are split into windows of
    /// `window` consecutive nests and every array may change layout between
    /// windows when the re-layout copy pays for itself.
    pub fn dynamic_plan(&self, program: &Program, window: usize) -> mlo_layout::DynamicPlan {
        let options = mlo_layout::DynamicOptions {
            candidates: self.options.candidates,
            ..mlo_layout::DynamicOptions::default()
        };
        mlo_layout::dynamic_plan(
            program,
            &mlo_layout::Segmentation::by_window(program, window.max(1)),
            &options,
        )
    }

    fn run_heuristic(&self, program: &Program) -> OptimizationOutcome {
        let result = heuristic_assignment(program);
        OptimizationOutcome {
            assignment: result.assignment,
            scheme: OptimizerScheme::Heuristic,
            solution_time: result.elapsed,
            search_stats: None,
            satisfiable: None,
            fell_back_to_heuristic: false,
            network: None,
        }
    }

    fn engine(&self) -> SearchEngine {
        let scheme = match self.options.scheme {
            OptimizerScheme::Base => CspScheme::Base,
            OptimizerScheme::Enhanced => CspScheme::Enhanced,
            OptimizerScheme::ForwardChecking => CspScheme::ForwardChecking,
            OptimizerScheme::FullPropagation => CspScheme::FullPropagation,
            OptimizerScheme::Heuristic
            | OptimizerScheme::Weighted
            | OptimizerScheme::LocalSearch => CspScheme::Enhanced,
        };
        let mut engine = SearchEngine::with_scheme(scheme).seed(self.options.seed);
        if let Some(limit) = self.options.node_limit {
            engine = engine.node_limit(limit);
        }
        engine
    }

    fn run_csp(&self, program: &Program) -> OptimizationOutcome {
        let start = Instant::now();
        let layout_network = build_network(program, &self.options.candidates);
        let summary = summarize(&layout_network);
        let result = self.engine().solve(layout_network.network());
        let satisfiable = result.solution.is_some();
        let (assignment, fell_back) = match &result.solution {
            Some(solution) => (
                assignment_from_solution(program, &layout_network, solution),
                false,
            ),
            None => (heuristic_assignment(program).assignment, true),
        };
        OptimizationOutcome {
            assignment,
            scheme: self.options.scheme,
            solution_time: start.elapsed(),
            search_stats: Some(result.stats),
            satisfiable: Some(satisfiable),
            fell_back_to_heuristic: fell_back,
            network: Some(summary),
        }
    }

    fn run_weighted(&self, program: &Program) -> OptimizationOutcome {
        let start = Instant::now();
        // Weight every contributed pair by the cost of the nest that asked
        // for it, so the branch-and-bound optimizer prefers solutions that
        // favour the costly nests (the paper's future-work idea).
        let weighted_network = weights::build_weighted_network(
            program,
            &self.options.candidates,
            &weights::WeightOptions::default(),
        );
        let layout_network = weighted_network.layout_network();
        let summary = summarize(layout_network);
        let bb = BranchAndBound {
            node_limit: self.options.node_limit.or(Some(2_000_000)),
        };
        let result = bb.optimize(weighted_network.weighted());
        let satisfiable = result.solution.is_some();
        let (assignment, fell_back) = match &result.solution {
            Some(solution) => (
                assignment_from_solution(program, layout_network, solution),
                false,
            ),
            None => (heuristic_assignment(program).assignment, true),
        };
        OptimizationOutcome {
            assignment,
            scheme: OptimizerScheme::Weighted,
            solution_time: start.elapsed(),
            search_stats: Some(result.stats),
            satisfiable: Some(satisfiable),
            fell_back_to_heuristic: fell_back,
            network: Some(summary),
        }
    }

    fn run_local_search(&self, program: &Program) -> OptimizationOutcome {
        let start = Instant::now();
        let layout_network = build_network(program, &self.options.candidates);
        let summary = summarize(&layout_network);
        let mut config = MinConflicts::with_seed(self.options.seed);
        if let Some(limit) = self.options.node_limit {
            config = config.max_steps(limit);
        }
        let result = config.solve(layout_network.network());
        let found = result.solution.is_some();
        let (assignment, fell_back) = match &result.solution {
            Some(solution) => (
                assignment_from_solution(program, &layout_network, solution),
                false,
            ),
            None => (heuristic_assignment(program).assignment, true),
        };
        OptimizationOutcome {
            assignment,
            scheme: OptimizerScheme::LocalSearch,
            solution_time: start.elapsed(),
            search_stats: Some(result.stats),
            // Local search cannot prove unsatisfiability; only a positive
            // answer is reported.
            satisfiable: if found { Some(true) } else { None },
            fell_back_to_heuristic: fell_back,
            network: Some(summary),
        }
    }
}

fn summarize(layout_network: &LayoutNetwork) -> NetworkSummary {
    let network = layout_network.network();
    NetworkSummary {
        variables: network.variable_count(),
        constraints: network.constraint_count(),
        total_domain_size: network.total_domain_size(),
        search_space: network.search_space_size(),
    }
}

/// Converts a constraint-network solution into a complete layout assignment
/// (arrays without a network variable get their canonical row-major layout).
fn assignment_from_solution(
    program: &Program,
    layout_network: &LayoutNetwork,
    solution: &mlo_csp::Solution<Layout>,
) -> LayoutAssignment {
    let mut assignment = LayoutAssignment::new();
    for array in program.arrays() {
        match layout_network.variable_of(array.id()) {
            Some(var) => assignment.set(array.id(), solution.value(var).clone()),
            None => assignment.set(array.id(), Layout::row_major(array.rank())),
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;
    use mlo_ir::{AccessBuilder, ProgramBuilder};
    use mlo_layout::quality::{assignment_score, ideal_score};

    fn figure2_program() -> Program {
        let n = 16;
        let mut b = ProgramBuilder::new("figure2");
        let q1 = b.array("Q1", vec![2 * n, n], 4);
        let q2 = b.array("Q2", vec![2 * n, n], 4);
        b.nest("main", vec![("i1", 0, n), ("i2", 0, n)], |nest| {
            nest.read(q1, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [0, 1]).build());
            nest.read(q2, AccessBuilder::new(2, 2).row(0, [1, 1]).row(1, [1, 0]).build());
        });
        b.build()
    }

    #[test]
    fn every_scheme_produces_a_complete_assignment() {
        let p = figure2_program();
        for scheme in [
            OptimizerScheme::Heuristic,
            OptimizerScheme::Base,
            OptimizerScheme::Enhanced,
            OptimizerScheme::ForwardChecking,
            OptimizerScheme::FullPropagation,
            OptimizerScheme::Weighted,
            OptimizerScheme::LocalSearch,
        ] {
            let outcome = Optimizer::new(scheme).optimize(&p);
            assert_eq!(outcome.scheme, scheme);
            for array in p.arrays() {
                assert!(
                    outcome.assignment.contains(array.id()),
                    "{scheme} left {} without a layout",
                    array.name()
                );
            }
            // Figure 2 is satisfiable, so constraint schemes must not fall
            // back, and every scheme reaches the ideal locality score.
            assert!(!outcome.fell_back_to_heuristic, "{scheme} fell back");
            assert_eq!(
                assignment_score(&p, &outcome.assignment),
                ideal_score(&p),
                "{scheme} missed the ideal score"
            );
        }
    }

    #[test]
    fn network_summary_matches_the_network() {
        let p = figure2_program();
        let optimizer = Optimizer::new(OptimizerScheme::Enhanced);
        let outcome = optimizer.optimize(&p);
        let summary = outcome.network.unwrap();
        assert_eq!(summary.variables, 2);
        assert_eq!(summary.constraints, 1);
        assert!(summary.total_domain_size >= 4);
        assert!(summary.search_space >= 9.0);
        let ln = optimizer.network(&p);
        assert_eq!(ln.network().variable_count(), 2);
    }

    #[test]
    fn unsatisfiable_networks_fall_back_to_the_heuristic() {
        // MxM's matmul nests want mutually inconsistent layouts (no loop
        // order gives A, B and C locality at once), so the hard network has
        // no solution and the optimizer must fall back gracefully.
        let p = Benchmark::MxM.program();
        let outcome = Optimizer::new(OptimizerScheme::Enhanced).optimize(&p);
        assert_eq!(outcome.satisfiable, Some(false));
        assert!(outcome.fell_back_to_heuristic);
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
        // The heuristic scheme agrees with the fallback assignment.
        let heuristic = Optimizer::new(OptimizerScheme::Heuristic).optimize(&p);
        assert_eq!(outcome.assignment, heuristic.assignment);
    }

    #[test]
    fn pipeline_benchmark_is_satisfiable_and_beats_the_heuristic_statically() {
        let p = Benchmark::MedIm04.program();
        let optimizer = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::Enhanced,
            candidates: Benchmark::MedIm04.candidate_options(),
            ..OptimizerOptions::default()
        });
        let outcome = optimizer.optimize(&p);
        assert_eq!(outcome.satisfiable, Some(true));
        assert!(!outcome.fell_back_to_heuristic);
        let heuristic = Optimizer::new(OptimizerScheme::Heuristic).optimize(&p);
        let csp_score = assignment_score(&p, &outcome.assignment);
        let heuristic_score = assignment_score(&p, &heuristic.assignment);
        assert!(
            csp_score >= heuristic_score,
            "constraint network ({csp_score}) should not lose to the heuristic ({heuristic_score})"
        );
        assert_eq!(csp_score, ideal_score(&p));
    }

    #[test]
    fn node_limit_triggers_fallback() {
        let p = Benchmark::Radar.program();
        let outcome = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::Base,
            candidates: Benchmark::Radar.candidate_options(),
            seed: 5,
            node_limit: Some(3),
        })
        .optimize(&p);
        assert!(outcome.fell_back_to_heuristic);
        assert!(outcome.assignment.len() >= p.arrays().len());
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(OptimizerScheme::Heuristic.to_string(), "heuristic");
        assert_eq!(OptimizerScheme::Enhanced.to_string(), "enhanced");
        assert_eq!(OptimizerScheme::Weighted.to_string(), "weighted");
        assert_eq!(OptimizerScheme::LocalSearch.to_string(), "local-search");
    }

    #[test]
    fn local_search_falls_back_when_it_cannot_find_a_solution() {
        // MxM's network is unsatisfiable; local search exhausts its budget
        // and must fall back to the heuristic without claiming a proof.
        let p = Benchmark::MxM.program();
        let outcome = Optimizer::with_options(OptimizerOptions {
            scheme: OptimizerScheme::LocalSearch,
            node_limit: Some(200),
            ..OptimizerOptions::default()
        })
        .optimize(&p);
        assert!(outcome.fell_back_to_heuristic);
        assert_eq!(outcome.satisfiable, None);
        for array in p.arrays() {
            assert!(outcome.assignment.contains(array.id()));
        }
    }

    #[test]
    fn dynamic_plan_covers_every_array_and_segment() {
        let p = Benchmark::Track.program();
        let optimizer = Optimizer::new(OptimizerScheme::Enhanced);
        let plan = optimizer.dynamic_plan(&p, 2);
        assert_eq!(plan.schedules.len(), p.arrays().len());
        for schedule in &plan.schedules {
            assert_eq!(schedule.per_segment.len(), plan.segmentation.len());
            assert!(schedule.cost <= schedule.static_cost + 1e-9);
        }
        // A window covering the whole program degenerates to one segment.
        let single = optimizer.dynamic_plan(&p, p.nests().len());
        assert_eq!(single.segmentation.len(), 1);
        assert!(single.dynamic_arrays().is_empty());
    }
}
