//! Per-request knobs of the engine API.
//!
//! An [`OptimizeRequest`] carries everything that can vary between two runs
//! against the same [`Session`](crate::engine::Session): the strategy to
//! run (a typed [`StrategyId`]), candidate-enumeration options, the RNG
//! seed, the [`SearchBudget`], the fallback policy and an optional
//! cache-simulation evaluation.  Requests are plain values — clone one,
//! tweak a knob, and submit both in the same batch.

use crate::error::FallbackReason;
use mlo_cachesim::{MachineConfig, TraceOptions};
use mlo_layout::CandidateOptions;
use std::convert::Infallible;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// A typed strategy identifier: the nine built-ins as enum arms plus a
/// [`StrategyId::Custom`] escape hatch for user-registered strategies.
///
/// Replaces the old bare-string registry lookup: misspelling a built-in is
/// now a compile error instead of a runtime `UnknownStrategy`, while
/// [`FromStr`] / [`From<&str>`] keep string-driven call sites (CLIs, config
/// files) working — an unrecognized name parses to `Custom` and resolves
/// (or fails) against the registry exactly like before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StrategyId {
    /// Layout propagation ordered by nest cost (the paper's baseline).
    Heuristic,
    /// The paper's base scheme (random orderings, chronological
    /// backtracking).
    Base,
    /// The paper's enhanced scheme.
    Enhanced,
    /// Enhanced plus forward checking.
    ForwardChecking,
    /// Enhanced plus AC-3 preprocessing and forward checking.
    FullPropagation,
    /// Branch and bound over nest-cost-weighted constraints.
    Weighted,
    /// Min-conflicts local search with restarts.
    LocalSearch,
    /// The parallel portfolio race of diverse schemes and seeds.
    Portfolio,
    /// The work-stealing dynamic shard search.
    PortfolioSteal,
    /// A user-registered strategy, addressed by its registry name.
    Custom(String),
}

impl StrategyId {
    /// The nine built-in ids in canonical registry order.
    pub const BUILTIN: [StrategyId; 9] = [
        StrategyId::Heuristic,
        StrategyId::Base,
        StrategyId::Enhanced,
        StrategyId::ForwardChecking,
        StrategyId::FullPropagation,
        StrategyId::Weighted,
        StrategyId::LocalSearch,
        StrategyId::Portfolio,
        StrategyId::PortfolioSteal,
    ];

    /// The registry name this id resolves under.
    pub fn as_str(&self) -> &str {
        match self {
            StrategyId::Heuristic => "heuristic",
            StrategyId::Base => "base",
            StrategyId::Enhanced => "enhanced",
            StrategyId::ForwardChecking => "forward-checking",
            StrategyId::FullPropagation => "full-propagation",
            StrategyId::Weighted => "weighted",
            StrategyId::LocalSearch => "local-search",
            StrategyId::Portfolio => "portfolio",
            StrategyId::PortfolioSteal => "portfolio-steal",
            StrategyId::Custom(name) => name,
        }
    }

    /// A custom id for a user-registered strategy name.
    pub fn custom(name: impl Into<String>) -> Self {
        StrategyId::Custom(name.into())
    }
}

impl fmt::Display for StrategyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for StrategyId {
    type Err = Infallible;

    /// Never fails: a built-in name parses to its arm, anything else to
    /// [`StrategyId::Custom`] (resolution against the registry decides
    /// whether it exists).
    fn from_str(name: &str) -> Result<Self, Infallible> {
        Ok(StrategyId::BUILTIN
            .iter()
            .find(|id| id.as_str() == name)
            .cloned()
            .unwrap_or_else(|| StrategyId::Custom(name.to_string())))
    }
}

impl From<&str> for StrategyId {
    fn from(name: &str) -> Self {
        name.parse().expect("StrategyId parsing is infallible")
    }
}

impl From<String> for StrategyId {
    fn from(name: String) -> Self {
        StrategyId::from(name.as_str())
    }
}

impl From<&StrategyId> for StrategyId {
    fn from(id: &StrategyId) -> Self {
        id.clone()
    }
}

impl PartialEq<str> for StrategyId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for StrategyId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// What to do when a strategy cannot return a solution of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Return the heuristic baseline's layouts, recording the reason in the
    /// report's [`Fallback`](crate::Fallback).
    #[default]
    Heuristic,
    /// Fail the request with a typed [`OptimizeError`](crate::OptimizeError)
    /// instead.
    Error,
}

/// Optional cache-hierarchy evaluation of the chosen layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationOptions {
    /// The machine model to simulate.
    pub machine: MachineConfig,
    /// Trace-generation options (sub-sampling, alignment).
    pub trace: TraceOptions,
}

impl EvaluationOptions {
    /// Evaluation on the paper's machine with default trace options.
    pub fn date05() -> Self {
        EvaluationOptions {
            machine: MachineConfig::date05(),
            trace: TraceOptions::default(),
        }
    }

    /// Evaluation on an explicit machine with default trace options.
    pub fn on(machine: MachineConfig) -> Self {
        EvaluationOptions {
            machine,
            trace: TraceOptions::default(),
        }
    }

    /// Overrides the trace options.
    pub fn trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }
}

/// The search budget of one request: node/time limits and the worker
/// split, gathered into one value so pipelines can carry "how hard to try"
/// separately from "what to try".
///
/// `SearchBudget` is `Copy`; its chainable setters consume and return the
/// value, so both styles work:
///
/// ```
/// use mlo_core::SearchBudget;
/// use std::time::Duration;
///
/// // Chained.
/// let budget = SearchBudget::new()
///     .nodes(100_000)
///     .deadline(Duration::from_millis(50));
/// // Imperative (non-consuming, via the request's mutable accessor).
/// let mut request = mlo_core::OptimizeRequest::default();
/// request.budget_mut().nodes = budget.nodes;
/// # assert_eq!(request.budget.nodes, Some(100_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchBudget {
    /// Node budget for the search (`None` = unlimited).
    ///
    /// Two strategy-specific notes: the `local-search` strategy treats the
    /// budget as a total cap on repair steps across restarts, and the
    /// `weighted` strategy substitutes its own default cap (2,000,000
    /// branch-and-bound nodes — see
    /// [`WeightedStrategy`](crate::strategy::WeightedStrategy)) when `None`
    /// is given, because exhaustive branch and bound does not reliably
    /// terminate on large networks.
    pub nodes: Option<u64>,
    /// Wall-clock budget for the search (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// How many solver workers a parallelism-aware strategy (`portfolio`,
    /// `portfolio-steal`, `weighted`) may occupy on the session's shared
    /// pool (`None` = the engine default, which is
    /// [`EngineBuilder::parallelism`] or the machine's available
    /// parallelism; `Some(1)` = single-threaded).
    ///
    /// For searches that complete within their budgets, changing this knob
    /// never changes the *result*: portfolio strategies return the same
    /// solution and cost at every thread count for a fixed seed (see
    /// `mlo_csp::solver::portfolio`), so it is purely a latency/throughput
    /// trade-off.  A run truncated by a node limit or deadline returns the
    /// best answer found in time, which — like any budget-cut search — is
    /// not guaranteed identical across thread counts.
    ///
    /// [`EngineBuilder::parallelism`]: crate::engine::EngineBuilder::parallelism
    pub parallelism: Option<usize>,
    /// Adaptive-parallelism threshold, in search nodes: a
    /// parallelism-aware strategy first runs its *sequential* path under
    /// this node budget and only escalates to the parallel machinery when
    /// the budget is exhausted, so small instances stop paying
    /// worker-dispatch overhead.  The escalation never changes the result.
    /// `None` = the strategy default,
    /// [`OptimizeRequest::DEFAULT_PARALLEL_THRESHOLD`]; `Some(0)` disables
    /// the probe (always parallel when `parallelism > 1`).
    pub parallel_threshold: Option<u64>,
}

impl SearchBudget {
    /// An unlimited budget (every knob at its default).
    pub fn new() -> Self {
        SearchBudget::default()
    }

    /// Sets the node budget.
    pub fn nodes(mut self, nodes: u64) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Sets the wall-clock budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the solver parallelism (clamped to at least one worker).
    pub fn workers(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Overrides the adaptive-parallelism probe budget in nodes (`0`
    /// always runs the parallel path, `u64::MAX` effectively never does).
    pub fn parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }
}

/// One optimization request: a typed strategy id plus per-request knobs.
///
/// ```
/// use mlo_core::{Engine, OptimizeRequest, SearchBudget, StrategyId};
/// use mlo_benchmarks::Benchmark;
///
/// let engine = Engine::new();
/// let session = engine.session();
/// let program = Benchmark::MxM.program();
/// let request = OptimizeRequest::strategy(StrategyId::Enhanced)
///     .candidates(Benchmark::MxM.candidate_options())
///     .seed(7)
///     .with_budget(SearchBudget::new().nodes(100_000));
/// let report = session.optimize(&program, &request).unwrap();
/// assert!(report.assignment.len() >= program.arrays().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// The strategy to run.
    pub strategy: StrategyId,
    /// Candidate-layout enumeration options.
    pub candidates: CandidateOptions,
    /// Seed for the strategy's random decisions; identical requests give
    /// identical results (and identical `SearchStats`).
    pub seed: u64,
    /// Node/time limits and the worker split.
    pub budget: SearchBudget,
    /// What to do when the strategy cannot return its own solution.
    pub fallback: FallbackPolicy,
    /// When set, the chosen layouts are replayed on this simulated machine
    /// and the report carries the resulting
    /// [`SimulationReport`](mlo_cachesim::SimulationReport).
    pub evaluation: Option<EvaluationOptions>,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        OptimizeRequest {
            strategy: StrategyId::Enhanced,
            candidates: CandidateOptions::default(),
            seed: 0xC0FFEE,
            budget: SearchBudget::default(),
            fallback: FallbackPolicy::Heuristic,
            evaluation: None,
        }
    }
}

impl OptimizeRequest {
    /// The default adaptive-parallelism probe budget, in search nodes.
    /// Every paper benchmark completes sequentially within a few thousand
    /// nodes on the bitset kernel (well under a millisecond — BENCH_3
    /// measured 0.24–0.75x "speedups" when those solves were raced across
    /// workers anyway), while the workloads that benefit from the
    /// portfolio burn through this budget almost immediately.
    pub const DEFAULT_PARALLEL_THRESHOLD: u64 = 50_000;

    /// A request running the given strategy with default knobs.  Accepts a
    /// [`StrategyId`] or (via `From<&str>`) a name.
    pub fn strategy(id: impl Into<StrategyId>) -> Self {
        OptimizeRequest {
            strategy: id.into(),
            ..OptimizeRequest::default()
        }
    }

    /// Sets the candidate-enumeration options.
    pub fn candidates(mut self, candidates: CandidateOptions) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the whole search budget (chainable form).
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the whole search budget without consuming the request —
    /// the non-consuming builder form, for call sites that set knobs
    /// conditionally:
    ///
    /// ```
    /// use mlo_core::{OptimizeRequest, SearchBudget};
    ///
    /// let mut request = OptimizeRequest::default();
    /// if true {
    ///     request.set_budget(SearchBudget::new().nodes(10));
    /// }
    /// assert_eq!(request.budget.nodes, Some(10));
    /// ```
    pub fn set_budget(&mut self, budget: SearchBudget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Mutable access to the budget (non-consuming knob-by-knob form).
    pub fn budget_mut(&mut self) -> &mut SearchBudget {
        &mut self.budget
    }

    /// Sets the strategy without consuming the request.
    pub fn set_strategy(&mut self, id: impl Into<StrategyId>) -> &mut Self {
        self.strategy = id.into();
        self
    }

    /// Sets the RNG seed without consuming the request.
    pub fn set_seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the candidate-enumeration options without consuming the
    /// request.
    pub fn set_candidates(&mut self, candidates: CandidateOptions) -> &mut Self {
        self.candidates = candidates;
        self
    }

    /// Sets the fallback policy without consuming the request.
    pub fn set_fallback(&mut self, policy: FallbackPolicy) -> &mut Self {
        self.fallback = policy;
        self
    }

    /// Sets (or clears) the cache-simulation evaluation without consuming
    /// the request.
    pub fn set_evaluation(&mut self, options: Option<EvaluationOptions>) -> &mut Self {
        self.evaluation = options;
        self
    }

    /// Sets the node budget.
    #[deprecated(
        since = "0.3.0",
        note = "budget knobs moved into `SearchBudget`: use `with_budget(SearchBudget::new().nodes(n))` or `budget_mut().nodes`"
    )]
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.budget.nodes = Some(limit);
        self
    }

    /// Sets the wall-clock budget.
    #[deprecated(
        since = "0.3.0",
        note = "budget knobs moved into `SearchBudget`: use `with_budget(SearchBudget::new().deadline(d))` or `budget_mut().deadline`"
    )]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.budget.deadline = Some(limit);
        self
    }

    /// Sets the solver parallelism for this request (clamped to at least
    /// one worker).
    #[deprecated(
        since = "0.3.0",
        note = "budget knobs moved into `SearchBudget`: use `with_budget(SearchBudget::new().workers(n))` or `budget_mut().parallelism`"
    )]
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.budget.parallelism = Some(workers.max(1));
        self
    }

    /// Overrides the adaptive-parallelism probe budget in nodes.
    #[deprecated(
        since = "0.3.0",
        note = "budget knobs moved into `SearchBudget`: use `with_budget(SearchBudget::new().parallel_threshold(t))` or `budget_mut().parallel_threshold`"
    )]
    pub fn parallel_threshold(mut self, threshold: u64) -> Self {
        self.budget.parallel_threshold = Some(threshold);
        self
    }

    /// Makes the request fail with a typed error instead of falling back to
    /// the heuristic layouts.
    pub fn fail_instead_of_fallback(mut self) -> Self {
        self.fallback = FallbackPolicy::Error;
        self
    }

    /// Sets the fallback policy explicitly.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Requests a cache-simulation evaluation of the chosen layouts.
    pub fn evaluate(mut self, options: EvaluationOptions) -> Self {
        self.evaluation = Some(options);
        self
    }

    /// Whether `fallback` permits substituting the heuristic layouts for
    /// the given reason (`Heuristic` permits all reasons).
    pub(crate) fn allows_fallback(&self, _reason: FallbackReason) -> bool {
        self.fallback == FallbackPolicy::Heuristic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_every_knob() {
        let r = OptimizeRequest::strategy(StrategyId::Base)
            .candidates(CandidateOptions {
                include_diagonals: true,
                ..CandidateOptions::default()
            })
            .seed(42)
            .with_budget(
                SearchBudget::new()
                    .nodes(10)
                    .deadline(Duration::from_millis(5))
                    .workers(0)
                    .parallel_threshold(0),
            )
            .fail_instead_of_fallback()
            .evaluate(EvaluationOptions::date05());
        assert_eq!(r.strategy, StrategyId::Base);
        assert!(r.candidates.include_diagonals);
        assert_eq!(r.seed, 42);
        assert_eq!(r.budget.nodes, Some(10));
        assert_eq!(r.budget.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.budget.parallelism, Some(1), "parallelism clamps to one");
        assert_eq!(r.budget.parallel_threshold, Some(0));
        assert_eq!(r.fallback, FallbackPolicy::Error);
        assert!(r.evaluation.is_some());
        assert!(!r.allows_fallback(FallbackReason::Unsatisfiable));
    }

    #[test]
    fn non_consuming_builder_sets_every_knob() {
        let mut r = OptimizeRequest::default();
        r.set_strategy("portfolio-steal")
            .set_seed(9)
            .set_candidates(CandidateOptions {
                include_diagonals: true,
                ..CandidateOptions::default()
            })
            .set_fallback(FallbackPolicy::Error)
            .set_evaluation(Some(EvaluationOptions::date05()))
            .set_budget(SearchBudget::new().nodes(77));
        r.budget_mut().parallelism = Some(2);
        assert_eq!(r.strategy, StrategyId::PortfolioSteal);
        assert_eq!(r.seed, 9);
        assert!(r.candidates.include_diagonals);
        assert_eq!(r.fallback, FallbackPolicy::Error);
        assert!(r.evaluation.is_some());
        assert_eq!(r.budget.nodes, Some(77));
        assert_eq!(r.budget.parallelism, Some(2));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_budget_setters_forward_into_the_budget() {
        let r = OptimizeRequest::strategy("base")
            .node_limit(10)
            .time_limit(Duration::from_millis(5))
            .parallelism(0)
            .parallel_threshold(3);
        assert_eq!(r.budget.nodes, Some(10));
        assert_eq!(r.budget.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.budget.parallelism, Some(1));
        assert_eq!(r.budget.parallel_threshold, Some(3));
    }

    #[test]
    fn strategy_ids_round_trip_through_strings() {
        for id in StrategyId::BUILTIN {
            let parsed: StrategyId = id.as_str().parse().unwrap();
            assert_eq!(parsed, id);
            assert_eq!(id.to_string(), id.as_str());
            assert!(!matches!(parsed, StrategyId::Custom(_)));
        }
        let custom: StrategyId = "escalating".parse().unwrap();
        assert_eq!(custom, StrategyId::custom("escalating"));
        assert_eq!(custom.as_str(), "escalating");
        assert_eq!(StrategyId::from("enhanced"), StrategyId::Enhanced);
        assert_eq!(
            StrategyId::from("portfolio-steal".to_string()),
            StrategyId::PortfolioSteal
        );
        assert_eq!(StrategyId::Enhanced, "enhanced");
    }

    #[test]
    fn default_request_matches_the_old_optimizer_defaults() {
        let r = OptimizeRequest::default();
        assert_eq!(r.strategy, StrategyId::Enhanced);
        assert_eq!(r.seed, 0xC0FFEE);
        assert_eq!(r.budget, SearchBudget::default());
        assert_eq!(r.fallback, FallbackPolicy::Heuristic);
        assert!(r.allows_fallback(FallbackReason::DeadlineExceeded));
    }
}
