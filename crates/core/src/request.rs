//! Per-request knobs of the engine API.
//!
//! An [`OptimizeRequest`] carries everything that can vary between two runs
//! against the same [`Session`](crate::engine::Session): the strategy to
//! run, candidate-enumeration options, the RNG seed, node/time budgets, the
//! fallback policy and an optional cache-simulation evaluation.  Requests
//! are plain values — clone one, tweak a knob, and submit both in the same
//! batch.

use crate::error::FallbackReason;
use mlo_cachesim::{MachineConfig, TraceOptions};
use mlo_layout::CandidateOptions;
use std::time::Duration;

/// What to do when a strategy cannot return a solution of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Return the heuristic baseline's layouts, recording the reason in the
    /// report's [`Fallback`](crate::Fallback) (the classic `Optimizer`
    /// behaviour, minus the silence).
    #[default]
    Heuristic,
    /// Fail the request with a typed [`OptimizeError`](crate::OptimizeError)
    /// instead.
    Error,
}

/// Optional cache-hierarchy evaluation of the chosen layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationOptions {
    /// The machine model to simulate.
    pub machine: MachineConfig,
    /// Trace-generation options (sub-sampling, alignment).
    pub trace: TraceOptions,
}

impl EvaluationOptions {
    /// Evaluation on the paper's machine with default trace options.
    pub fn date05() -> Self {
        EvaluationOptions {
            machine: MachineConfig::date05(),
            trace: TraceOptions::default(),
        }
    }

    /// Evaluation on an explicit machine with default trace options.
    pub fn on(machine: MachineConfig) -> Self {
        EvaluationOptions {
            machine,
            trace: TraceOptions::default(),
        }
    }

    /// Overrides the trace options.
    pub fn trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }
}

/// One optimization request: a strategy name plus per-request knobs.
///
/// ```
/// use mlo_core::{Engine, OptimizeRequest};
/// use mlo_benchmarks::Benchmark;
///
/// let engine = Engine::new();
/// let session = engine.session();
/// let program = Benchmark::MxM.program();
/// let request = OptimizeRequest::strategy("enhanced")
///     .candidates(Benchmark::MxM.candidate_options())
///     .seed(7)
///     .node_limit(100_000);
/// let report = session.optimize(&program, &request).unwrap();
/// assert!(report.assignment.len() >= program.arrays().len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// The registry name of the strategy to run.
    pub strategy: String,
    /// Candidate-layout enumeration options.
    pub candidates: CandidateOptions,
    /// Seed for the strategy's random decisions; identical requests give
    /// identical results (and identical `SearchStats`).
    pub seed: u64,
    /// Node budget for the search (`None` = unlimited).
    ///
    /// Two strategy-specific notes: the `local-search` strategy treats the
    /// budget as a total cap on repair steps across restarts, and the
    /// `weighted` strategy substitutes its own default cap (2,000,000
    /// branch-and-bound nodes — see
    /// [`WeightedStrategy`](crate::strategy::WeightedStrategy)) when `None`
    /// is given, because exhaustive branch and bound does not reliably
    /// terminate on large networks.
    pub node_limit: Option<u64>,
    /// Wall-clock budget for the search (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// How many solver workers a parallelism-aware strategy (`portfolio`,
    /// `portfolio-steal`, `weighted`) may occupy on the session's shared
    /// pool (`None` = the
    /// engine default, which is [`EngineBuilder::parallelism`] or the
    /// machine's available parallelism; `Some(1)` = single-threaded).
    ///
    /// For searches that complete within their budgets, changing this knob
    /// never changes the *result*: portfolio strategies return the same
    /// solution and cost at every thread count for a fixed seed (see
    /// `mlo_csp::solver::portfolio`), so it is purely a latency/throughput
    /// trade-off.  A run truncated by a node limit or deadline returns the
    /// best answer found in time, which — like any budget-cut search — is
    /// not guaranteed identical across thread counts.
    ///
    /// [`EngineBuilder::parallelism`]: crate::engine::EngineBuilder::parallelism
    pub parallelism: Option<usize>,
    /// Adaptive-parallelism threshold, in search nodes: a
    /// parallelism-aware strategy (`portfolio`, `portfolio-steal`,
    /// `weighted`) first runs its
    /// *sequential* path under this node budget and only escalates to the
    /// parallel machinery when the budget is exhausted, so small instances
    /// (every paper benchmark solves in a few thousand nodes) stop paying
    /// worker-dispatch overhead.  The escalation never changes the result:
    /// a sequential probe that completes returns exactly the answer the
    /// parallel portfolio is contractually bound to return.  `None` = the
    /// strategy default, [`OptimizeRequest::DEFAULT_PARALLEL_THRESHOLD`];
    /// `Some(0)` disables the probe (always parallel when
    /// `parallelism > 1`).
    pub parallel_threshold: Option<u64>,
    /// What to do when the strategy cannot return its own solution.
    pub fallback: FallbackPolicy,
    /// When set, the chosen layouts are replayed on this simulated machine
    /// and the report carries the resulting
    /// [`SimulationReport`](mlo_cachesim::SimulationReport).
    pub evaluation: Option<EvaluationOptions>,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        OptimizeRequest {
            strategy: "enhanced".to_string(),
            candidates: CandidateOptions::default(),
            seed: 0xC0FFEE,
            node_limit: None,
            time_limit: None,
            parallelism: None,
            parallel_threshold: None,
            fallback: FallbackPolicy::Heuristic,
            evaluation: None,
        }
    }
}

impl OptimizeRequest {
    /// The default adaptive-parallelism probe budget, in search nodes.
    /// Every paper benchmark completes sequentially within a few thousand
    /// nodes on the bitset kernel (well under a millisecond — BENCH_3
    /// measured 0.24–0.75x "speedups" when those solves were raced across
    /// workers anyway), while the workloads that benefit from the
    /// portfolio burn through this budget almost immediately.
    pub const DEFAULT_PARALLEL_THRESHOLD: u64 = 50_000;
    /// A request running the named strategy with default knobs.
    pub fn strategy(name: impl Into<String>) -> Self {
        OptimizeRequest {
            strategy: name.into(),
            ..OptimizeRequest::default()
        }
    }

    /// Sets the candidate-enumeration options.
    pub fn candidates(mut self, candidates: CandidateOptions) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the node budget.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the solver parallelism for this request (clamped to at least
    /// one worker).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Overrides the adaptive-parallelism probe budget in nodes (`0`
    /// always runs the parallel path, `u64::MAX` effectively never does).
    pub fn parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }

    /// Makes the request fail with a typed error instead of falling back to
    /// the heuristic layouts.
    pub fn fail_instead_of_fallback(mut self) -> Self {
        self.fallback = FallbackPolicy::Error;
        self
    }

    /// Sets the fallback policy explicitly.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Requests a cache-simulation evaluation of the chosen layouts.
    pub fn evaluate(mut self, options: EvaluationOptions) -> Self {
        self.evaluation = Some(options);
        self
    }

    /// Whether `fallback` permits substituting the heuristic layouts for
    /// the given reason (`Heuristic` permits all reasons).
    pub(crate) fn allows_fallback(&self, _reason: FallbackReason) -> bool {
        self.fallback == FallbackPolicy::Heuristic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_every_knob() {
        let r = OptimizeRequest::strategy("base")
            .candidates(CandidateOptions {
                include_diagonals: true,
                ..CandidateOptions::default()
            })
            .seed(42)
            .node_limit(10)
            .time_limit(Duration::from_millis(5))
            .parallelism(0)
            .parallel_threshold(0)
            .fail_instead_of_fallback()
            .evaluate(EvaluationOptions::date05());
        assert_eq!(r.strategy, "base");
        assert!(r.candidates.include_diagonals);
        assert_eq!(r.seed, 42);
        assert_eq!(r.node_limit, Some(10));
        assert_eq!(r.time_limit, Some(Duration::from_millis(5)));
        assert_eq!(r.parallelism, Some(1), "parallelism clamps to one");
        assert_eq!(r.parallel_threshold, Some(0));
        assert_eq!(r.fallback, FallbackPolicy::Error);
        assert!(r.evaluation.is_some());
        assert!(!r.allows_fallback(FallbackReason::Unsatisfiable));
    }

    #[test]
    fn default_request_matches_the_old_optimizer_defaults() {
        let r = OptimizeRequest::default();
        assert_eq!(r.strategy, "enhanced");
        assert_eq!(r.seed, 0xC0FFEE);
        assert_eq!(r.node_limit, None);
        assert_eq!(r.fallback, FallbackPolicy::Heuristic);
        assert!(r.allows_fallback(FallbackReason::DeadlineExceeded));
    }
}
