//! The reusable optimization engine and its sessions.
//!
//! [`Engine`] owns the [`StrategyRegistry`] and the defaults; a
//! [`Session`] amortizes the expensive per-program work — candidate
//! enumeration and constraint-network construction — across requests, keyed
//! by program identity.  [`Session::optimize_many`] fans a batch of
//! (program, request) pairs out over worker threads, which is the shape
//! every future scaling layer (sharding, async serving, multi-backend)
//! builds on.
//!
//! ```
//! use mlo_core::{Engine, OptimizeRequest};
//! use mlo_benchmarks::Benchmark;
//!
//! let engine = Engine::new();
//! let session = engine.session();
//! let program = Benchmark::MedIm04.program();
//! let request = OptimizeRequest::strategy("enhanced")
//!     .candidates(Benchmark::MedIm04.candidate_options());
//! // Two requests, one network build: the session caches per program.
//! let first = session.optimize(&program, &request).unwrap();
//! let second = session.optimize(&program, &request.clone().seed(1)).unwrap();
//! assert_eq!(first.assignment, second.assignment);
//! assert_eq!(session.prepared_programs(), 1);
//! ```

use crate::error::{Fallback, FallbackReason, OptimizeError};
use crate::request::{EvaluationOptions, OptimizeRequest, StrategyId};
use crate::strategy::{LayoutStrategy, StrategyContext, StrategyOutcome, StrategyRegistry};
use mlo_cachesim::{SimulationReport, Simulator};
use mlo_csp::{
    lock_or_recover, CancelToken, IncumbentObserver, SearchLimits, SearchStats, WeightedNetwork,
    WorkerPool,
};
use mlo_ir::Program;
use mlo_layout::{
    heuristic_assignment, weights::WeightOptions, CandidateOptions, CandidateSet, Layout,
    LayoutAssignment, LayoutNetwork,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Summary of the constraint network an optimization run worked on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSummary {
    /// Number of variables (arrays).
    pub variables: usize,
    /// Number of binary constraints.
    pub constraints: usize,
    /// Total domain size (the paper's Table 1 metric).
    pub total_domain_size: usize,
    /// Product of domain sizes (naive search-space size).
    pub search_space: f64,
}

/// External hooks a caller may attach to one solve.
///
/// Both hooks are cooperative and optional; a request served without hooks
/// behaves (and *performs*) exactly as before — the solvers only check a
/// token or feed an observed incumbent when one is present.
#[derive(Debug, Clone, Default)]
pub struct SolveHooks {
    /// Cooperative cancellation: every built-in strategy polls the token at
    /// its deadline-poll points and aborts within microseconds of it
    /// firing, reporting
    /// [`FallbackReason::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Incumbent streaming: notified with each strictly-improving bound the
    /// weighted (branch-and-bound) strategies establish.  Ignored by
    /// satisfiability strategies, which have no incumbent.
    pub incumbent: Option<IncumbentObserver>,
}

impl SolveHooks {
    /// Hooks with only a cancellation token attached.
    pub fn cancellable(cancel: CancelToken) -> Self {
        SolveHooks {
            cancel: Some(cancel),
            incumbent: None,
        }
    }
}

/// Normalized per-instance shape features, extracted from a prepared
/// program's constraint network.  The adaptive dispatcher
/// (`mlo-service`) keys its nearest-neighbor strategy picks on these; they
/// are deliberately cheap to compute from session-cached artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Number of constraint variables (arrays with layout choices).
    pub variables: f64,
    /// Constraint density: constraints over possible variable pairs, in
    /// `[0, 1]`.
    pub density: f64,
    /// Mean domain size (candidate layouts per array).
    pub mean_domain: f64,
    /// Weight skew of the nest-cost weights: the largest per-constraint
    /// aggregate over the mean (`1.0` = perfectly uniform, larger = a few
    /// constraints dominate the objective).
    pub weight_skew: f64,
}

impl InstanceFeatures {
    /// The features as a fixed-order vector (the order the dispatch table
    /// serializes them in).
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.variables,
            self.density,
            self.mean_domain,
            self.weight_skew,
        ]
    }
}

impl NetworkSummary {
    fn of(network: &LayoutNetwork) -> Self {
        let net = network.network();
        NetworkSummary {
            variables: net.variable_count(),
            constraints: net.constraint_count(),
            total_domain_size: net.total_domain_size(),
            search_space: net.search_space_size(),
        }
    }
}

/// The per-program state a session caches: candidate layouts, the
/// constraint network (whose storage also carries the compiled bitset
/// kernel) and any derived weighted networks, all built lazily at most
/// once.
///
/// Every cached artifact is `Arc`-backed (see `mlo_layout` / `mlo_csp`), so
/// handing it to a strategy, a portfolio member or a batch job shares
/// storage instead of copying tables.  The weighted-network cache is a
/// small LRU capped by the session's
/// [`weighted_cache_cap`](Session::weighted_cache_cap), so long-lived
/// serving sessions that sweep many [`WeightOptions`] cannot grow it
/// without bound.
#[derive(Debug)]
pub struct PreparedProgram {
    options: CandidateOptions,
    candidates: OnceLock<CandidateSet>,
    network: OnceLock<LayoutNetwork>,
    /// Weighted networks derived from the cached hard network, one per
    /// distinct [`WeightOptions`], most recently used first (a short list:
    /// requests overwhelmingly reuse the strategy default).
    weighted: Mutex<Vec<(WeightOptions, Arc<WeightedNetwork<Layout>>)>>,
    /// Shared with the owning session: the LRU capacity of `weighted`.
    weighted_cap: Arc<AtomicUsize>,
}

impl Default for PreparedProgram {
    fn default() -> Self {
        PreparedProgram::new(
            CandidateOptions::default(),
            Arc::new(AtomicUsize::new(Session::DEFAULT_WEIGHTED_CACHE_CAP)),
        )
    }
}

impl PreparedProgram {
    fn new(options: CandidateOptions, weighted_cap: Arc<AtomicUsize>) -> Self {
        PreparedProgram {
            options,
            candidates: OnceLock::new(),
            network: OnceLock::new(),
            weighted: Mutex::new(Vec::new()),
            weighted_cap,
        }
    }

    /// The candidate set, enumerating it on first use.
    pub fn candidates(&self, program: &Program) -> &CandidateSet {
        self.candidates
            .get_or_init(|| CandidateSet::enumerate(program, &self.options))
    }

    /// The constraint network, building it (from the cached candidates) on
    /// first use.
    pub fn network(&self, program: &Program) -> &LayoutNetwork {
        self.network
            .get_or_init(|| mlo_layout::build_network_from(program, self.candidates(program)))
    }

    /// The compiled execution kernel of the cached network (forced on
    /// first use, then cached inside the shared network storage: every
    /// strategy, portfolio member and weighted derivation of this program
    /// reuses the identical `Arc`).
    pub fn kernel(&self, program: &Program) -> Arc<mlo_csp::BitKernel> {
        Arc::clone(self.network(program).kernel())
    }

    /// The weighted network derived with `options`, deriving (and caching)
    /// it on first use.  The returned handle shares the cached hard
    /// network's constraint storage — repeat weighted requests copy
    /// nothing.  The cache is LRU: the least recently used entry is
    /// evicted once the session cap is exceeded.
    pub fn weighted(
        &self,
        program: &Program,
        options: &WeightOptions,
    ) -> Arc<WeightedNetwork<Layout>> {
        if let Some(weighted) = self.weighted_hit(options) {
            return weighted;
        }
        // Derive outside the lock (it can be expensive); a racing request
        // deriving the same options loses benignly below.
        let derived = Arc::new(mlo_layout::weights::derive_weights(
            program,
            self.network(program),
            options,
        ));
        let mut cache = lock_or_recover(&self.weighted);
        if let Some(existing) = Self::promote(&mut cache, options) {
            return existing;
        }
        cache.insert(0, (*options, Arc::clone(&derived)));
        let cap = self.weighted_cap.load(Ordering::Relaxed).max(1);
        cache.truncate(cap);
        derived
    }

    /// The compiled weighted execution kernel of the cached weighted
    /// network (dense weight matrices + aggregates, see
    /// `mlo_csp::bitset::WeightKernel`), forced on first use and cached
    /// inside the shared weight spine: every weighted request served out of
    /// a warm session — and every portfolio member it fans out to — reuses
    /// the identical compiled kernel (`Arc::ptr_eq`-verifiable).
    pub fn weight_kernel(
        &self,
        program: &Program,
        options: &WeightOptions,
    ) -> Arc<mlo_csp::WeightKernel> {
        Arc::clone(self.weighted(program, options).weight_kernel())
    }

    /// Cache lookup with LRU promotion (most recent at the front).
    fn weighted_hit(&self, options: &WeightOptions) -> Option<Arc<WeightedNetwork<Layout>>> {
        Self::promote(&mut lock_or_recover(&self.weighted), options)
    }

    /// The one copy of the LRU discipline: finds `options`, moves its
    /// entry to the front and returns the shared handle.
    fn promote(
        cache: &mut Vec<(WeightOptions, Arc<WeightedNetwork<Layout>>)>,
        options: &WeightOptions,
    ) -> Option<Arc<WeightedNetwork<Layout>>> {
        let position = cache.iter().position(|(cached, _)| cached == options)?;
        let entry = cache.remove(position);
        let weighted = Arc::clone(&entry.1);
        cache.insert(0, entry);
        Some(weighted)
    }

    /// Extracts the normalized instance features the adaptive dispatcher
    /// keys on, from session-cached artifacts (the network and the default
    /// weighted kernel are built on first use and reused afterwards).
    pub fn features(&self, program: &Program) -> InstanceFeatures {
        let network = self.network(program).network();
        let variables = network.variable_count();
        let constraints = network.constraint_count();
        let pairs = variables.saturating_sub(1) * variables / 2;
        let density = if pairs == 0 {
            0.0
        } else {
            constraints as f64 / pairs as f64
        };
        let mean_domain = if variables == 0 {
            0.0
        } else {
            network.total_domain_size() as f64 / variables as f64
        };
        let kernel = self.weight_kernel(program, &WeightOptions::default());
        let count = kernel.constraint_count();
        let mut sum = 0.0f64;
        let mut max = f64::NEG_INFINITY;
        for index in 0..count {
            let allowed = kernel.constraint(index).max_allowed();
            sum += allowed;
            max = max.max(allowed);
        }
        let weight_skew = if count == 0 || sum <= 0.0 {
            1.0
        } else {
            max * count as f64 / sum
        };
        InstanceFeatures {
            variables: variables as f64,
            density,
            mean_domain,
            weight_skew,
        }
    }

    /// Number of weighted networks currently cached.
    pub fn weighted_cached(&self) -> usize {
        lock_or_recover(&self.weighted).len()
    }

    /// Whether the network has been built yet.
    pub fn network_built(&self) -> bool {
        self.network.get().is_some()
    }
}

/// The result of one successful optimization request.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// The layout chosen for every array (always complete).
    pub assignment: LayoutAssignment,
    /// The registry name of the strategy that ran.
    pub strategy: String,
    /// Time spent determining the layouts (the paper's Table 2 metric).
    pub solution_time: Duration,
    /// Search statistics, when a constraint search ran.
    pub search_stats: Option<SearchStats>,
    /// Whether the constraint network had a solution: `Some(true)` when the
    /// strategy proved one, `Some(false)` when it proved none exists,
    /// `None` when no proof was attempted or reached (heuristic, exhausted
    /// budgets, local search without a find).
    pub satisfiable: Option<bool>,
    /// Whether (and why) the layouts came from the heuristic baseline.
    pub fallback: Fallback,
    /// Network shape, when the strategy consulted the network.
    pub network: Option<NetworkSummary>,
    /// Cache-simulation results, when the request asked for evaluation.
    pub evaluation: Option<SimulationReport>,
    /// Whether the report was served by a *different* strategy than the
    /// request asked for, because the requested one faulted (panicked or
    /// kept failing) and a resilience ladder re-dispatched the work.
    /// Always `false` for reports produced by direct engine calls; the
    /// service front-end sets it when its retry/fallback ladder descends.
    pub degraded: bool,
}

impl OptimizeReport {
    /// Whether the layouts came from the heuristic fallback.
    pub fn fell_back(&self) -> bool {
        self.fallback.fell_back()
    }
}

/// Builds [`Engine`] values with a customized registry or defaults.
#[derive(Debug, Default)]
pub struct EngineBuilder {
    registry: Option<StrategyRegistry>,
    default_candidates: CandidateOptions,
    parallelism: Option<usize>,
}

impl EngineBuilder {
    /// Starts from the built-in registry and default options.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Replaces the whole registry.
    pub fn registry(mut self, registry: StrategyRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Registers one extra (or replacement) strategy on top of the
    /// built-ins.
    pub fn strategy(mut self, strategy: Arc<dyn LayoutStrategy>) -> Self {
        let mut registry = self.registry.unwrap_or_else(StrategyRegistry::builtin);
        registry.register(strategy);
        self.registry = Some(registry);
        self
    }

    /// Default candidate options for requests (requests can still override
    /// per run — this is the session-cache key default).
    pub fn default_candidates(mut self, options: CandidateOptions) -> Self {
        self.default_candidates = options;
        self
    }

    /// Sizes the session-shared worker pool: `optimize_many` batches and
    /// parallelism-aware strategies (`portfolio`, `portfolio-steal`,
    /// `weighted`) all draw
    /// their workers from it (default: available parallelism).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Finishes the engine.
    pub fn build(self) -> Engine {
        Engine {
            registry: Arc::new(self.registry.unwrap_or_else(StrategyRegistry::builtin)),
            default_candidates: self.default_candidates,
            parallelism: self.parallelism,
        }
    }
}

/// The reusable, thread-safe optimization engine.
///
/// An engine is cheap to clone (the registry is shared); per-program caches
/// live in [`Session`]s so callers control cache lifetime.
#[derive(Debug, Clone)]
pub struct Engine {
    registry: Arc<StrategyRegistry>,
    default_candidates: CandidateOptions,
    parallelism: Option<usize>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the nine built-in strategies.
    pub fn new() -> Self {
        EngineBuilder::new().build()
    }

    /// Starts a customized engine build.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The strategy registry.
    pub fn registry(&self) -> &StrategyRegistry {
        &self.registry
    }

    /// A request for the given strategy (a [`StrategyId`] or, via
    /// `From<&str>`, a name) pre-filled with the engine's default candidate
    /// options.
    pub fn request(&self, strategy: impl Into<StrategyId>) -> OptimizeRequest {
        OptimizeRequest::strategy(strategy).candidates(self.default_candidates)
    }

    /// Opens a session: requests submitted through one session share
    /// candidate sets, constraint networks *and one worker pool* per
    /// session.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::new(SessionInner {
                engine: self.clone(),
                prepared: Mutex::new(HashMap::new()),
                pool: OnceLock::new(),
                weighted_cache_cap: Arc::new(AtomicUsize::new(Session::DEFAULT_WEIGHTED_CACHE_CAP)),
            }),
        }
    }

    /// One-shot convenience: a throw-away session serving a single request.
    pub fn optimize(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<OptimizeReport, OptimizeError> {
        self.session().optimize(program, request)
    }

    /// The engine-wide worker budget: [`EngineBuilder::parallelism`] when
    /// set, otherwise the machine's available parallelism.
    pub(crate) fn default_parallelism(&self) -> usize {
        self.parallelism
            .or_else(|| thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1)
            .max(1)
    }
}

/// A cache key identifying one (program, candidate options) pair.
///
/// Program has no `Hash` impl; its `Debug` rendering covers the full
/// structure (arrays, nests, accesses) and is stable within a build.  The
/// full rendering is the key — not a truncated hash of it — so two distinct
/// programs can never silently share a cache entry.  Rendering is linear in
/// program size; every request also runs a search or the heuristic pass,
/// both of which are at least linear in program size themselves, so the key
/// is never the dominant per-request cost.
fn program_key(program: &Program, options: &CandidateOptions) -> String {
    format!("{options:?}\u{1f}{program:?}")
}

/// A scope that amortizes candidate enumeration, network construction and
/// one worker pool across requests, keyed by program identity.
///
/// Cloning a session is cheap and shares all of that state.
#[derive(Debug, Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

/// The shared state behind a [`Session`].
#[derive(Debug)]
pub(crate) struct SessionInner {
    engine: Engine,
    prepared: Mutex<HashMap<String, Arc<PreparedProgram>>>,
    /// The session's worker pool, created on first parallel use so purely
    /// sequential sessions never spawn a thread.
    pool: OnceLock<Arc<WorkerPool>>,
    /// Per-program weighted-network LRU capacity, shared with every
    /// [`PreparedProgram`] this session creates.
    weighted_cache_cap: Arc<AtomicUsize>,
}

impl Session {
    /// Default LRU capacity of the per-program weighted-network cache:
    /// plenty for benchmark sweeps (which reuse one or two
    /// [`WeightOptions`]) while bounding long-lived serving sessions.
    pub const DEFAULT_WEIGHTED_CACHE_CAP: usize = 8;

    /// The engine this session came from.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The current per-program weighted-network LRU capacity.
    pub fn weighted_cache_cap(&self) -> usize {
        self.inner.weighted_cache_cap.load(Ordering::Relaxed)
    }

    /// Caps the per-program weighted-network cache (clamped to at least 1;
    /// applies to existing prepared programs too — the next insert evicts
    /// down to the new cap).
    pub fn set_weighted_cache_cap(&self, cap: usize) {
        self.inner
            .weighted_cache_cap
            .store(cap.max(1), Ordering::Relaxed);
    }

    /// Number of distinct (program, candidate-options) pairs prepared so
    /// far.
    pub fn prepared_programs(&self) -> usize {
        lock_or_recover(&self.inner.prepared).len()
    }

    /// The prepared (cached) state of a program under the given candidate
    /// options, building the entry on first use.
    pub fn prepared(&self, program: &Program, options: &CandidateOptions) -> Arc<PreparedProgram> {
        self.inner.prepared(program, options)
    }

    /// The session's shared worker pool (created on first use, sized by
    /// [`EngineBuilder::parallelism`] or the machine), serving both
    /// [`Session::optimize_many`] batches and parallelism-aware strategies.
    pub fn worker_pool(&self) -> Arc<WorkerPool> {
        self.inner.worker_pool()
    }

    /// Serves one request.
    pub fn optimize(
        &self,
        program: &Program,
        request: &OptimizeRequest,
    ) -> Result<OptimizeReport, OptimizeError> {
        self.inner
            .optimize(program, request, &SolveHooks::default())
    }

    /// Serves one request with external [`SolveHooks`] attached
    /// (cooperative cancellation and/or incumbent streaming).  With default
    /// hooks this is exactly [`Session::optimize`].
    pub fn optimize_with_hooks(
        &self,
        program: &Program,
        request: &OptimizeRequest,
        hooks: &SolveHooks,
    ) -> Result<OptimizeReport, OptimizeError> {
        self.inner.optimize(program, request, hooks)
    }

    /// Extracts the adaptive-dispatch [`InstanceFeatures`] of a program
    /// under the request's candidate options, using (and warming) this
    /// session's prepared caches.
    pub fn features(&self, program: &Program, options: &CandidateOptions) -> InstanceFeatures {
        self.prepared(program, options).features(program)
    }
}

impl SessionInner {
    pub(crate) fn engine(&self) -> &Engine {
        &self.engine
    }

    pub(crate) fn worker_pool(&self) -> Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.engine.default_parallelism())))
            .clone()
    }

    fn prepared(&self, program: &Program, options: &CandidateOptions) -> Arc<PreparedProgram> {
        let key = program_key(program, options);
        let mut cache = lock_or_recover(&self.prepared);
        cache
            .entry(key)
            .or_insert_with(|| {
                Arc::new(PreparedProgram::new(
                    *options,
                    Arc::clone(&self.weighted_cache_cap),
                ))
            })
            .clone()
    }

    /// Serves one request end to end: solve, then (when requested) evaluate
    /// inline on the calling thread.  Batches instead route the evaluation
    /// through the worker pool — see [`Session::optimize_many`].
    fn optimize(
        &self,
        program: &Program,
        request: &OptimizeRequest,
        hooks: &SolveHooks,
    ) -> Result<OptimizeReport, OptimizeError> {
        let mut report = self.solve_request(program, request, hooks)?;
        if let Some(options) = &request.evaluation {
            let strategy = report.strategy.clone();
            report.evaluation =
                Some(self.evaluate(program, &report.assignment, &strategy, options)?);
        }
        Ok(report)
    }

    /// Runs the cache-simulation evaluation of a chosen assignment (the
    /// second, independently schedulable phase of a request).
    pub(crate) fn evaluate(
        &self,
        program: &Program,
        assignment: &LayoutAssignment,
        strategy: &str,
        options: &EvaluationOptions,
    ) -> Result<SimulationReport, OptimizeError> {
        let simulator = Simulator::new(options.machine).trace_options(options.trace);
        simulator
            .simulate(program, assignment)
            .map_err(|error| OptimizeError::Evaluation {
                strategy: strategy.to_string(),
                message: error.to_string(),
            })
    }

    /// The solve phase of a request: everything except the optional
    /// cache-simulation evaluation (`report.evaluation` is left `None`).
    fn solve_request(
        &self,
        program: &Program,
        request: &OptimizeRequest,
        hooks: &SolveHooks,
    ) -> Result<OptimizeReport, OptimizeError> {
        mlo_csp::fail_point!("engine.solve", |fault: mlo_csp::FaultError| {
            Err(OptimizeError::Strategy {
                strategy: request.strategy.to_string(),
                message: fault.to_string(),
            })
        });
        let strategy = self
            .engine
            .registry
            .resolve(&request.strategy)
            .ok_or_else(|| OptimizeError::UnknownStrategy {
                name: request.strategy.to_string(),
                known: self.engine.registry.names(),
            })?;
        let prepared = self.prepared(program, &request.candidates);

        let start = Instant::now();
        let limits = SearchLimits {
            node_limit: request.budget.nodes,
            deadline: request.budget.deadline.map(|budget| start + budget),
        };
        let ctx = StrategyContext::new(self, program, &prepared, request, limits)
            .with_hooks(hooks.clone());
        let outcome = strategy.determine(&ctx)?;
        let solution_time = start.elapsed();

        // Only report the network shape when *this* request's strategy
        // consulted it — a warm session cache from earlier requests must not
        // change what a heuristic report looks like.
        let network_summary = ctx
            .network_consulted()
            .then(|| NetworkSummary::of(prepared.network(program)));
        let report = match outcome {
            StrategyOutcome::Solved {
                assignment,
                stats,
                proven_satisfiable,
            } => OptimizeReport {
                assignment,
                strategy: strategy.name().to_string(),
                solution_time,
                search_stats: stats,
                satisfiable: proven_satisfiable.then_some(true),
                fallback: Fallback::None,
                network: network_summary,
                evaluation: None,
                degraded: false,
            },
            StrategyOutcome::Unsatisfiable { stats } => {
                if !request.allows_fallback(FallbackReason::Unsatisfiable) {
                    return Err(OptimizeError::Unsatisfiable {
                        strategy: strategy.name().to_string(),
                        stats,
                    });
                }
                OptimizeReport {
                    assignment: heuristic_assignment(program).assignment,
                    strategy: strategy.name().to_string(),
                    solution_time: start.elapsed(),
                    search_stats: stats,
                    satisfiable: Some(false),
                    fallback: Fallback::Heuristic(FallbackReason::Unsatisfiable),
                    network: network_summary,
                    evaluation: None,
                    degraded: false,
                }
            }
            StrategyOutcome::Exhausted { reason, stats } => {
                if !request.allows_fallback(reason) {
                    return Err(OptimizeError::BudgetExhausted {
                        strategy: strategy.name().to_string(),
                        reason,
                        stats,
                    });
                }
                OptimizeReport {
                    assignment: heuristic_assignment(program).assignment,
                    strategy: strategy.name().to_string(),
                    solution_time: start.elapsed(),
                    search_stats: stats,
                    satisfiable: None,
                    fallback: Fallback::Heuristic(reason),
                    network: network_summary,
                    evaluation: None,
                    degraded: false,
                }
            }
        };
        Ok(report)
    }
}

/// One message of the two-phase batch pipeline: a finished solve (which may
/// announce a follow-up evaluation job) or a finished evaluation.
enum BatchMessage {
    /// The solve phase of job `index` completed; `evaluation_spawned` says
    /// whether a second-stage evaluation job was submitted to the pool.
    /// The report is boxed so the channel moves a pointer, not the
    /// several-hundred-byte report (and the enum's variants stay close in
    /// size).
    Solved {
        index: usize,
        result: Box<Result<OptimizeReport, OptimizeError>>,
        evaluation_spawned: bool,
    },
    /// The evaluation phase of job `index` completed.
    Evaluated {
        index: usize,
        result: Result<SimulationReport, OptimizeError>,
    },
}

impl Session {
    /// Serves a batch of requests across the session's worker pool.
    ///
    /// Borrowed-program convenience over [`Session::optimize_many_shared`]:
    /// each *distinct* program is copied into an [`Arc`] once and shared by
    /// its jobs.  Callers that already hold `Arc<Program>` handles should
    /// submit them directly via `optimize_many_shared`, which copies
    /// nothing.
    pub fn optimize_many(
        &self,
        jobs: &[(&Program, OptimizeRequest)],
    ) -> Vec<Result<OptimizeReport, OptimizeError>> {
        // Sequential batches never reach the pool, so don't pay the
        // Arc-wrapping program copies either.
        if jobs.len() <= 1 || self.inner.engine.default_parallelism() <= 1 {
            return jobs
                .iter()
                .map(|(program, request)| self.optimize(program, request))
                .collect();
        }
        let mut owned: HashMap<*const Program, Arc<Program>> = HashMap::new();
        let shared: Vec<(Arc<Program>, OptimizeRequest)> = jobs
            .iter()
            .map(|(program, request)| {
                let program = owned
                    .entry(*program as *const Program)
                    .or_insert_with(|| Arc::new((*program).clone()))
                    .clone();
                (program, request.clone())
            })
            .collect();
        self.optimize_many_shared(&shared)
    }

    /// Serves a batch of requests across the session's worker pool, taking
    /// shared program handles (the zero-copy form — nothing is cloned on
    /// the way to the workers).
    ///
    /// Results come back in submission order, one per job, each
    /// independently a success or a typed error — one failed request never
    /// poisons the batch.  Jobs against the same program share this
    /// session's prepared networks, and the workers are the same pool the
    /// `portfolio` strategy races on (nested use is deadlock-free: waiters
    /// help drain the pool's queue).
    ///
    /// Requests that ask for a cache-simulation evaluation run it as a
    /// *separate pool job*: the solve phase frees its worker as soon as the
    /// layouts are chosen, so long simulations interleave with the
    /// remaining solves instead of serializing behind them.
    pub fn optimize_many_shared(
        &self,
        jobs: &[(Arc<Program>, OptimizeRequest)],
    ) -> Vec<Result<OptimizeReport, OptimizeError>> {
        if jobs.len() <= 1 || self.inner.engine.default_parallelism() <= 1 {
            return jobs
                .iter()
                .map(|(program, request)| self.optimize(program, request))
                .collect();
        }

        let pool = self.worker_pool();
        let (tx, rx) = channel::<BatchMessage>();
        for (index, (program, request)) in jobs.iter().enumerate() {
            let inner = Arc::clone(&self.inner);
            let program = Arc::clone(program);
            let request = request.clone();
            let tx = tx.clone();
            let worker_pool = Arc::clone(&pool);
            pool.execute(move || {
                // Contain strategy panics right here, where the job context
                // (index + strategy) is still known: the collector then
                // receives a typed error instead of observing a dropped
                // sender and guessing which job died.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.solve_request(&program, &request, &SolveHooks::default())
                }))
                .unwrap_or_else(|payload| {
                    Err(OptimizeError::StrategyPanicked {
                        strategy: request.strategy.to_string(),
                        message: mlo_csp::fault::panic_message(&*payload),
                        failpoint: mlo_csp::fault::take_last_triggered(),
                    })
                });
                // Successful solves with an evaluation request submit the
                // simulation as its own pool job before reporting, keeping
                // the channel's sender count equal to the number of live
                // jobs (a panicking worker then surfaces as a disconnect,
                // never a hang).
                let mut evaluation_spawned = false;
                if let (Ok(report), Some(options)) = (&result, request.evaluation) {
                    let strategy = report.strategy.clone();
                    let assignment = report.assignment.clone();
                    let eval_tx = tx.clone();
                    let eval_inner = Arc::clone(&inner);
                    let eval_program = Arc::clone(&program);
                    evaluation_spawned = true;
                    worker_pool.execute(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            eval_inner.evaluate(&eval_program, &assignment, &strategy, &options)
                        }))
                        .unwrap_or_else(|payload| {
                            Err(OptimizeError::StrategyPanicked {
                                strategy: strategy.clone(),
                                message: mlo_csp::fault::panic_message(&*payload),
                                failpoint: mlo_csp::fault::take_last_triggered(),
                            })
                        });
                        // A dropped receiver means the batch was abandoned.
                        let _ = eval_tx.send(BatchMessage::Evaluated { index, result });
                    });
                }
                let _ = tx.send(BatchMessage::Solved {
                    index,
                    result: Box::new(result),
                    evaluation_spawned,
                });
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<OptimizeReport, OptimizeError>>> =
            jobs.iter().map(|_| None).collect();
        let mut evaluations: Vec<Option<Result<SimulationReport, OptimizeError>>> =
            jobs.iter().map(|_| None).collect();
        let mut solves_received = 0usize;
        let mut evaluations_expected = 0usize;
        let mut evaluations_received = 0usize;
        while solves_received < jobs.len() || evaluations_received < evaluations_expected {
            match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(BatchMessage::Solved {
                    index,
                    result,
                    evaluation_spawned,
                }) => {
                    slots[index] = Some(*result);
                    solves_received += 1;
                    if evaluation_spawned {
                        evaluations_expected += 1;
                    }
                }
                Ok(BatchMessage::Evaluated { index, result }) => {
                    evaluations[index] = Some(result);
                    evaluations_received += 1;
                }
                // Help drain the queue so a batch submitted from inside a
                // pool worker cannot deadlock the pool.
                Err(RecvTimeoutError::Timeout) => {
                    pool.help_run_one();
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        slots
            .into_iter()
            .zip(evaluations)
            .enumerate()
            .map(|(index, (slot, evaluation))| {
                // A missing slot means that job's worker died without even
                // reaching the in-job containment above (it should be
                // unreachable) — degrade to a typed error rather than
                // panicking in the collector, which would poison the whole
                // batch for one lost job.
                let result = slot.unwrap_or_else(|| {
                    Err(OptimizeError::StrategyPanicked {
                        strategy: jobs[index].1.strategy.to_string(),
                        message: format!("batch job {index} died before reporting a result"),
                        failpoint: None,
                    })
                });
                match (result, evaluation) {
                    (Ok(mut report), Some(Ok(simulation))) => {
                        report.evaluation = Some(simulation);
                        Ok(report)
                    }
                    (Ok(report), None) => {
                        if jobs[index].1.evaluation.is_some() {
                            // The evaluation job died without reporting.
                            return Err(OptimizeError::StrategyPanicked {
                                strategy: report.strategy,
                                message: format!(
                                    "batch evaluation {index} died before reporting a result"
                                ),
                                failpoint: None,
                            });
                        }
                        Ok(report)
                    }
                    (Ok(_), Some(Err(error))) => Err(error),
                    (Err(error), _) => Err(error),
                }
            })
            .collect()
    }

    /// Computes a per-segment **dynamic layout plan** (the paper's second
    /// future direction) using this session's candidate defaults.
    pub fn dynamic_plan(
        &self,
        program: &Program,
        window: usize,
        candidates: &CandidateOptions,
    ) -> mlo_layout::DynamicPlan {
        let options = mlo_layout::DynamicOptions {
            candidates: *candidates,
            ..mlo_layout::DynamicOptions::default()
        };
        mlo_layout::dynamic_plan(
            program,
            &mlo_layout::Segmentation::by_window(program, window.max(1)),
            &options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{EvaluationOptions, SearchBudget};
    use crate::strategy::SchemeStrategy;
    use mlo_benchmarks::Benchmark;
    use mlo_cachesim::MachineConfig;
    use mlo_layout::quality::{assignment_score, ideal_score};

    #[test]
    fn unknown_strategies_are_reported_with_the_known_names() {
        let engine = Engine::new();
        let program = Benchmark::MxM.program();
        let err = engine
            .optimize(&program, &OptimizeRequest::strategy("turbo"))
            .unwrap_err();
        match err {
            OptimizeError::UnknownStrategy { name, known } => {
                assert_eq!(name, "turbo");
                assert!(known.contains(&"enhanced".to_string()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sessions_share_prepared_networks_across_requests() {
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::MedIm04.program();
        let request = OptimizeRequest::strategy("enhanced")
            .candidates(Benchmark::MedIm04.candidate_options());
        let a = session.optimize(&program, &request).unwrap();
        let b = session
            .optimize(&program, &request.clone().seed(99))
            .unwrap();
        assert_eq!(session.prepared_programs(), 1);
        assert_eq!(a.assignment, b.assignment);
        // Different candidate options are a different cache entry.
        let wide = request.clone().candidates(CandidateOptions {
            max_transforms_per_nest: 2,
            ..Benchmark::MedIm04.candidate_options()
        });
        session.optimize(&program, &wide).unwrap();
        assert_eq!(session.prepared_programs(), 2);
    }

    #[test]
    fn unsatisfiable_networks_fall_back_with_a_typed_reason() {
        let engine = Engine::new();
        let program = Benchmark::MxM.program();
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("enhanced")
                    .candidates(Benchmark::MxM.candidate_options()),
            )
            .unwrap();
        assert_eq!(report.satisfiable, Some(false));
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::Unsatisfiable)
        );
        let heuristic = engine
            .optimize(&program, &OptimizeRequest::strategy("heuristic"))
            .unwrap();
        assert_eq!(report.assignment, heuristic.assignment);
    }

    #[test]
    fn fallback_can_be_turned_into_a_typed_error() {
        let engine = Engine::new();
        let program = Benchmark::MxM.program();
        let err = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("enhanced")
                    .candidates(Benchmark::MxM.candidate_options())
                    .fail_instead_of_fallback(),
            )
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Unsatisfiable { .. }));
        assert_eq!(err.strategy(), Some("enhanced"));
    }

    #[test]
    fn node_budgets_produce_budget_exhausted_reports_and_errors() {
        let engine = Engine::new();
        let program = Benchmark::Radar.program();
        let request = OptimizeRequest::strategy("base")
            .candidates(Benchmark::Radar.candidate_options())
            .seed(5)
            .with_budget(SearchBudget::new().nodes(3));
        let report = engine.optimize(&program, &request).unwrap();
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::NodeBudgetExhausted)
        );
        assert_eq!(report.satisfiable, None);
        let err = engine
            .optimize(&program, &request.clone().fail_instead_of_fallback())
            .unwrap_err();
        assert!(matches!(
            err,
            OptimizeError::BudgetExhausted {
                reason: FallbackReason::NodeBudgetExhausted,
                ..
            }
        ));
    }

    #[test]
    fn local_search_node_budget_is_a_total_cap_across_restarts() {
        // MxM's network is unsatisfiable, so local search burns its whole
        // budget; the budget must bound the total repair steps, not the
        // per-restart steps (which would allow max_restarts times more).
        let engine = Engine::new();
        let program = Benchmark::MxM.program();
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("local-search")
                    .candidates(Benchmark::MxM.candidate_options())
                    .with_budget(SearchBudget::new().nodes(500)),
            )
            .unwrap();
        let stats = report.search_stats.expect("local search reports stats");
        assert!(
            stats.nodes_visited <= 500,
            "visited {} nodes under a 500-node budget",
            stats.nodes_visited
        );
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::Inconclusive)
        );
    }

    #[test]
    fn deadlines_are_honoured() {
        let engine = Engine::new();
        let program = Benchmark::Radar.program();
        // A deadline that has already passed: the search must abort almost
        // immediately and fall back.
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("base")
                    .candidates(Benchmark::Radar.candidate_options())
                    .with_budget(SearchBudget::new().deadline(Duration::ZERO)),
            )
            .unwrap();
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::DeadlineExceeded)
        );
        for array in program.arrays() {
            assert!(report.assignment.contains(array.id()));
        }
    }

    #[test]
    fn identical_requests_have_identical_stats() {
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::MxM.program();
        let request = OptimizeRequest::strategy("base")
            .candidates(Benchmark::MxM.candidate_options())
            .seed(1234);
        let a = session.optimize(&program, &request).unwrap();
        let b = session.optimize(&program, &request).unwrap();
        assert_eq!(a.search_stats, b.search_stats);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn heuristic_requests_never_build_the_network() {
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::Track.program();
        let report = session
            .optimize(&program, &OptimizeRequest::strategy("heuristic"))
            .unwrap();
        assert_eq!(report.network, None);
        assert_eq!(report.satisfiable, None);
        assert!(report.search_stats.is_none());
        let prepared = session.prepared(&program, &CandidateOptions::default());
        assert!(!prepared.network_built());
    }

    #[test]
    fn heuristic_reports_ignore_warm_session_network_state() {
        // An earlier request builds the cached network; a later heuristic
        // request on the same session must still report `network: None` —
        // the field reflects what *this* strategy consulted.
        let session = Engine::new().session();
        let program = Benchmark::MxM.program();
        let options = Benchmark::MxM.candidate_options();
        let enhanced = session
            .optimize(
                &program,
                &OptimizeRequest::strategy("enhanced").candidates(options),
            )
            .unwrap();
        assert!(enhanced.network.is_some());
        let heuristic = session
            .optimize(
                &program,
                &OptimizeRequest::strategy("heuristic").candidates(options),
            )
            .unwrap();
        assert_eq!(heuristic.network, None);
    }

    #[test]
    fn weighted_requests_honour_deadlines() {
        let engine = Engine::new();
        let program = Benchmark::Track.program();
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("weighted")
                    .candidates(Benchmark::Track.candidate_options())
                    .with_budget(SearchBudget::new().deadline(Duration::ZERO)),
            )
            .unwrap();
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::DeadlineExceeded)
        );
        for array in program.arrays() {
            assert!(report.assignment.contains(array.id()));
        }
    }

    #[test]
    fn optimize_many_through_the_pool_matches_sequential_results() {
        // Force the pooled batch path (a 1-core machine would otherwise
        // take the sequential shortcut) and include the portfolio strategy
        // so batch jobs submit nested portfolio work to the same pool.
        let engine = Engine::builder().parallelism(4).build();
        let session = engine.session();
        let programs: Vec<_> = [Benchmark::MedIm04, Benchmark::Track]
            .iter()
            .map(|b| (b.program(), b.candidate_options()))
            .collect();
        let mut jobs: Vec<(&Program, OptimizeRequest)> = Vec::new();
        for (program, options) in &programs {
            for strategy in ["enhanced", "portfolio", "heuristic"] {
                jobs.push((
                    program,
                    OptimizeRequest::strategy(strategy).candidates(*options),
                ));
            }
        }
        let batch = session.optimize_many(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for ((program, request), result) in jobs.iter().zip(&batch) {
            let sequential = session.optimize(program, request).unwrap();
            let pooled = result.as_ref().unwrap();
            assert_eq!(pooled.assignment, sequential.assignment);
            assert_eq!(pooled.satisfiable, sequential.satisfiable);
            assert_eq!(pooled.fallback, sequential.fallback);
        }
    }

    #[test]
    fn optimize_many_matches_sequential_results() {
        let engine = Engine::new();
        let session = engine.session();
        let programs: Vec<_> = [Benchmark::MxM, Benchmark::MedIm04, Benchmark::Track]
            .iter()
            .map(|b| (b.program(), b.candidate_options()))
            .collect();
        let mut jobs: Vec<(&Program, OptimizeRequest)> = Vec::new();
        for (program, options) in &programs {
            for strategy in ["heuristic", "enhanced"] {
                jobs.push((
                    program,
                    OptimizeRequest::strategy(strategy).candidates(*options),
                ));
            }
        }
        let batch = session.optimize_many(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for ((program, request), result) in jobs.iter().zip(&batch) {
            let sequential = session.optimize(program, request).unwrap();
            let parallel = result.as_ref().unwrap();
            assert_eq!(parallel.assignment, sequential.assignment);
            assert_eq!(parallel.satisfiable, sequential.satisfiable);
            assert_eq!(parallel.fallback, sequential.fallback);
        }
        // One prepared entry per program (both strategies share it).
        assert_eq!(session.prepared_programs(), 3);
    }

    #[test]
    fn weighted_networks_are_cached_and_share_storage() {
        // Two weighted requests against one session must reuse the identical
        // Arc'd weighted network, and that network's hard constraint tables
        // must share storage with the cached LayoutNetwork — zero copies on
        // the warm path.
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::Track.program();
        let options = Benchmark::Track.candidate_options();
        let prepared = session.prepared(&program, &options);
        let weight_options = mlo_layout::weights::WeightOptions::default();
        let a = prepared.weighted(&program, &weight_options);
        let b = prepared.weighted(&program, &weight_options);
        assert!(Arc::ptr_eq(&a, &b), "same options hit the cache");
        assert!(
            a.network()
                .shares_storage(prepared.network(&program).network()),
            "weighted networks share the hard network's storage"
        );
        // Distinct options derive a distinct network (still sharing the
        // hard storage).
        let unit = mlo_layout::weights::WeightOptions {
            use_nest_cost: false,
            ..mlo_layout::weights::WeightOptions::default()
        };
        let c = prepared.weighted(&program, &unit);
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(c
            .network()
            .shares_storage(prepared.network(&program).network()));
        // End to end: two weighted optimizations reuse the cache.
        let request = OptimizeRequest::strategy("weighted").candidates(options);
        let first = session.optimize(&program, &request).unwrap();
        let second = session
            .optimize(&program, &request.clone().seed(3))
            .unwrap();
        assert_eq!(first.assignment, second.assignment);
    }

    #[test]
    fn weighted_cache_is_a_capped_lru() {
        let engine = Engine::new();
        let session = engine.session();
        assert_eq!(
            session.weighted_cache_cap(),
            Session::DEFAULT_WEIGHTED_CACHE_CAP
        );
        session.set_weighted_cache_cap(0); // clamps to 1
        session.set_weighted_cache_cap(2);
        assert_eq!(session.weighted_cache_cap(), 2);
        let program = Benchmark::Track.program();
        let options = Benchmark::Track.candidate_options();
        let prepared = session.prepared(&program, &options);
        let mk = |bonus: f64| mlo_layout::weights::WeightOptions {
            identity_bonus: bonus,
            ..mlo_layout::weights::WeightOptions::default()
        };
        let a = prepared.weighted(&program, &mk(1.25));
        let b = prepared.weighted(&program, &mk(2.0));
        assert_eq!(prepared.weighted_cached(), 2);
        // Touch `a` so `b` becomes the LRU entry, then overflow the cap.
        let a_again = prepared.weighted(&program, &mk(1.25));
        assert!(Arc::ptr_eq(&a, &a_again));
        let _c = prepared.weighted(&program, &mk(3.0));
        assert_eq!(prepared.weighted_cached(), 2, "cap enforced");
        // `a` survived (recently used), `b` was evicted: re-deriving `b`
        // yields a fresh Arc while `a` still hits.
        let a_third = prepared.weighted(&program, &mk(1.25));
        assert!(Arc::ptr_eq(&a, &a_third), "recently used entry survives");
        let b_again = prepared.weighted(&program, &mk(2.0));
        assert!(!Arc::ptr_eq(&b, &b_again), "LRU entry was evicted");
    }

    #[test]
    fn weighted_cache_cap_zero_clamps_to_one() {
        // cap = 0 would make every insert evict itself; the setter clamps
        // to 1 so the most recent weighted network always stays cached.
        let session = Engine::new().session();
        session.set_weighted_cache_cap(0);
        assert_eq!(session.weighted_cache_cap(), 1);
        let program = Benchmark::Track.program();
        let options = Benchmark::Track.candidate_options();
        let prepared = session.prepared(&program, &options);
        let mk = |bonus: f64| mlo_layout::weights::WeightOptions {
            identity_bonus: bonus,
            ..mlo_layout::weights::WeightOptions::default()
        };
        let a = prepared.weighted(&program, &mk(1.25));
        assert_eq!(prepared.weighted_cached(), 1);
        // A repeat hit at cap 1 still returns the identical Arc.
        assert!(Arc::ptr_eq(&a, &prepared.weighted(&program, &mk(1.25))));
        // A different option set evicts the only entry.
        let b = prepared.weighted(&program, &mk(2.0));
        assert_eq!(prepared.weighted_cached(), 1);
        assert!(Arc::ptr_eq(&b, &prepared.weighted(&program, &mk(2.0))));
        assert!(!Arc::ptr_eq(&a, &prepared.weighted(&program, &mk(1.25))));
    }

    #[test]
    fn weighted_cache_hits_return_the_same_compiled_weight_kernel() {
        // A cache hit must hand back not just the same weighted network but
        // the identical compiled WeightKernel: the expensive dense
        // compilation runs once per (program, options) pair and is shared
        // across requests (ISSUE 5 satellite).
        let session = Engine::new().session();
        let program = Benchmark::Track.program();
        let options = Benchmark::Track.candidate_options();
        let prepared = session.prepared(&program, &options);
        let weight_options = mlo_layout::weights::WeightOptions::default();
        let first = prepared.weight_kernel(&program, &weight_options);
        let second = prepared.weight_kernel(&program, &weight_options);
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache hits share the compiled weight kernel"
        );
        // The kernel rides in the cached weighted network's spine.
        let weighted = prepared.weighted(&program, &weight_options);
        assert!(Arc::ptr_eq(&first, weighted.weight_kernel()));
        // An evicted entry recompiles: new Arc.
        session.set_weighted_cache_cap(1);
        let other = mlo_layout::weights::WeightOptions {
            identity_bonus: 3.5,
            ..weight_options
        };
        let _ = prepared.weighted(&program, &other); // evicts the default entry
        let recompiled = prepared.weight_kernel(&program, &weight_options);
        assert!(
            !Arc::ptr_eq(&first, &recompiled),
            "eviction drops the kernel"
        );
    }

    #[test]
    fn sessions_cache_the_compiled_kernel_alongside_the_network() {
        // The kernel is compiled once per cached network and shared by
        // every request artifact: the prepared program, the derived
        // weighted network and repeat calls all return the identical Arc.
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::Track.program();
        let options = Benchmark::Track.candidate_options();
        let prepared = session.prepared(&program, &options);
        let kernel = prepared.kernel(&program);
        assert!(Arc::ptr_eq(&kernel, prepared.network(&program).kernel()));
        let weighted = prepared.weighted(&program, &mlo_layout::weights::WeightOptions::default());
        assert!(Arc::ptr_eq(&kernel, weighted.network().kernel()));
        assert!(Arc::ptr_eq(&kernel, &prepared.kernel(&program)));
    }

    #[test]
    fn small_instances_fall_back_to_sequential_parallelism() {
        // Every paper benchmark completes the sequential probe within the
        // default node budget, so a parallel request must (a) return the
        // identical result to both the probe-disabled parallel path and
        // the parallelism(1) path, and (b) do the sequential amount of
        // search work (the BENCH_3 symptom was parallel node counts an
        // order of magnitude above sequential ones).
        let engine = Engine::builder().parallelism(4).build();
        let session = engine.session();
        let program = Benchmark::MedIm04.program();
        let options = Benchmark::MedIm04.candidate_options();
        for strategy in ["portfolio", "weighted"] {
            let request = OptimizeRequest::strategy(strategy)
                .candidates(options)
                .seed(7);
            let adaptive = session.optimize(&program, &request).unwrap();
            let forced = session
                .optimize(
                    &program,
                    &request
                        .clone()
                        .with_budget(SearchBudget::new().parallel_threshold(0)),
                )
                .unwrap();
            let sequential = session
                .optimize(
                    &program,
                    &request.clone().with_budget(SearchBudget::new().workers(1)),
                )
                .unwrap();
            assert_eq!(adaptive.assignment, forced.assignment, "{strategy}");
            assert_eq!(adaptive.assignment, sequential.assignment, "{strategy}");
            assert_eq!(adaptive.satisfiable, forced.satisfiable);
            let adaptive_nodes = adaptive.search_stats.unwrap().nodes_visited;
            let sequential_nodes = sequential.search_stats.unwrap().nodes_visited;
            assert_eq!(
                adaptive_nodes, sequential_nodes,
                "{strategy}: the probe must do exactly the sequential work"
            );
        }
        // The probe-limit arithmetic itself.
        let request = OptimizeRequest::strategy("portfolio")
            .candidates(options)
            .with_budget(SearchBudget::new().nodes(10));
        let prepared = session.prepared(&program, &options);
        let limits = SearchLimits::default().with_node_limit(10);
        let ctx = StrategyContext::new(&session.inner, &program, &prepared, &request, limits);
        assert_eq!(ctx.parallelism(), 4);
        assert_eq!(
            ctx.parallel_threshold(),
            OptimizeRequest::DEFAULT_PARALLEL_THRESHOLD
        );
        assert_eq!(
            ctx.probe_limits().node_limit,
            Some(10),
            "the request's own tighter budget wins"
        );
    }

    #[test]
    fn optimize_many_shared_reuses_program_handles() {
        let engine = Engine::builder().parallelism(4).build();
        let session = engine.session();
        let program = Arc::new(Benchmark::MedIm04.program());
        let jobs: Vec<(Arc<Program>, OptimizeRequest)> = ["heuristic", "enhanced", "portfolio"]
            .into_iter()
            .map(|strategy| {
                (
                    Arc::clone(&program),
                    OptimizeRequest::strategy(strategy)
                        .candidates(Benchmark::MedIm04.candidate_options()),
                )
            })
            .collect();
        let batch = session.optimize_many_shared(&jobs);
        assert_eq!(batch.len(), 3);
        for ((_, request), result) in jobs.iter().zip(&batch) {
            let sequential = session.optimize(&program, request).unwrap();
            let pooled = result.as_ref().unwrap();
            assert_eq!(pooled.assignment, sequential.assignment);
            assert_eq!(pooled.fallback, sequential.fallback);
        }
        // One prepared entry: every job shared the same handle and cache.
        assert_eq!(session.prepared_programs(), 1);
    }

    #[test]
    fn batch_evaluations_ride_the_worker_pool_and_match_inline_results() {
        // Requests with evaluation enabled run the cache simulation as a
        // second-stage pool job; the merged reports must be identical to the
        // inline (sequential) path, including evaluation errors staying
        // per-job.
        let engine = Engine::builder().parallelism(4).build();
        let session = engine.session();
        let trace = mlo_cachesim::TraceOptions {
            max_trip_per_loop: 8,
            array_alignment: 64,
        };
        let programs: Vec<_> = [Benchmark::MxM, Benchmark::Track]
            .iter()
            .map(|b| (b.program(), b.candidate_options()))
            .collect();
        let mut jobs: Vec<(&Program, OptimizeRequest)> = Vec::new();
        for (program, options) in &programs {
            for strategy in ["heuristic", "enhanced"] {
                jobs.push((
                    program,
                    OptimizeRequest::strategy(strategy)
                        .candidates(*options)
                        .evaluate(EvaluationOptions::on(MachineConfig::tiny()).trace(trace)),
                ));
            }
        }
        let batch = session.optimize_many(&jobs);
        assert_eq!(batch.len(), jobs.len());
        for ((program, request), result) in jobs.iter().zip(&batch) {
            let pooled = result.as_ref().unwrap();
            let inline = session.optimize(program, request).unwrap();
            let pooled_eval = pooled.evaluation.as_ref().expect("evaluation attached");
            let inline_eval = inline.evaluation.as_ref().expect("evaluation attached");
            assert_eq!(pooled_eval.total_cycles, inline_eval.total_cycles);
            assert_eq!(pooled.assignment, inline.assignment);
        }
    }

    #[test]
    fn evaluation_attaches_a_simulation_report() {
        let engine = Engine::new();
        let program = Benchmark::MxM.program();
        // Sub-sample aggressively: this asserts plumbing, not cycle counts.
        let trace = mlo_cachesim::TraceOptions {
            max_trip_per_loop: 8,
            array_alignment: 64,
        };
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("heuristic")
                    .evaluate(EvaluationOptions::on(MachineConfig::tiny()).trace(trace)),
            )
            .unwrap();
        let evaluation = report.evaluation.expect("evaluation requested");
        assert!(evaluation.total_cycles > 0);
    }

    #[test]
    fn custom_strategies_slot_into_the_engine() {
        #[derive(Debug)]
        struct EscalatingStrategy;
        impl LayoutStrategy for EscalatingStrategy {
            fn name(&self) -> &str {
                "escalating"
            }
            fn description(&self) -> &str {
                "enhanced, then forward-checking on exhaustion"
            }
            fn determine(
                &self,
                ctx: &StrategyContext<'_>,
            ) -> Result<StrategyOutcome, OptimizeError> {
                match SchemeStrategy::enhanced().determine(ctx)? {
                    StrategyOutcome::Exhausted { .. } => {
                        SchemeStrategy::forward_checking().determine(ctx)
                    }
                    done => Ok(done),
                }
            }
        }
        let engine = Engine::builder()
            .strategy(Arc::new(EscalatingStrategy))
            .build();
        assert_eq!(engine.registry().len(), 10);
        let program = Benchmark::MedIm04.program();
        let report = engine
            .optimize(
                &program,
                &OptimizeRequest::strategy("escalating")
                    .candidates(Benchmark::MedIm04.candidate_options()),
            )
            .unwrap();
        assert_eq!(report.strategy, "escalating");
        assert_eq!(report.satisfiable, Some(true));
        assert_eq!(
            assignment_score(&program, &report.assignment),
            ideal_score(&program)
        );
    }

    #[test]
    fn batch_contains_a_panicking_strategy_as_a_typed_error() {
        #[derive(Debug)]
        struct PanickingStrategy;
        impl LayoutStrategy for PanickingStrategy {
            fn name(&self) -> &str {
                "panicker"
            }
            fn determine(
                &self,
                _ctx: &StrategyContext<'_>,
            ) -> Result<StrategyOutcome, OptimizeError> {
                panic!("panicker always explodes");
            }
        }
        let engine = Engine::builder()
            .parallelism(2)
            .strategy(Arc::new(PanickingStrategy))
            .build();
        let session = engine.session();
        let program = Benchmark::MedIm04.program();
        let jobs: Vec<(&Program, OptimizeRequest)> = vec![
            (&program, OptimizeRequest::strategy("heuristic")),
            (&program, OptimizeRequest::strategy("panicker")),
            (&program, OptimizeRequest::strategy("heuristic")),
        ];
        let results = session.optimize_many(&jobs);
        assert!(results[0].is_ok(), "healthy jobs are unaffected");
        assert!(results[2].is_ok(), "healthy jobs are unaffected");
        match &results[1] {
            Err(OptimizeError::StrategyPanicked {
                strategy, message, ..
            }) => {
                assert_eq!(strategy, "panicker");
                assert!(message.contains("explodes"));
            }
            other => panic!("expected StrategyPanicked, got {other:?}"),
        }
        // The session pool survived: a follow-up request still works.
        assert!(session
            .optimize(&program, &OptimizeRequest::strategy("heuristic"))
            .is_ok());
    }

    #[test]
    fn portfolio_strategy_is_thread_count_invariant() {
        // The builtin portfolio must return the identical assignment and
        // satisfiability proof at 1, 2 and 8 workers for a fixed seed —
        // the property the CI perf gate relies on.
        let engine = Engine::builder().parallelism(4).build();
        let session = engine.session();
        let program = Benchmark::MedIm04.program();
        let request = OptimizeRequest::strategy("portfolio")
            .candidates(Benchmark::MedIm04.candidate_options())
            .seed(2024);
        let baseline = session
            .optimize(
                &program,
                &request.clone().with_budget(SearchBudget::new().workers(1)),
            )
            .unwrap();
        assert_eq!(baseline.satisfiable, Some(true));
        for workers in [2usize, 8] {
            let report = session
                .optimize(
                    &program,
                    &request
                        .clone()
                        .with_budget(SearchBudget::new().workers(workers)),
                )
                .unwrap();
            assert_eq!(
                report.assignment, baseline.assignment,
                "assignment changed at {workers} workers"
            );
            assert_eq!(report.satisfiable, baseline.satisfiable);
            assert_eq!(report.fallback, baseline.fallback);
        }
    }

    #[test]
    fn optimize_many_propagates_per_request_parallelism() {
        // Regression audit for the batch path: each pooled job's strategy
        // must see *its own* request's worker budget (or the engine default
        // when the request sets none), not a batch-wide value.
        #[derive(Default)]
        struct ParallelismRecorder {
            seen: Mutex<Vec<(u64, usize)>>,
        }
        impl LayoutStrategy for ParallelismRecorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn determine(
                &self,
                ctx: &StrategyContext<'_>,
            ) -> Result<StrategyOutcome, OptimizeError> {
                self.seen
                    .lock()
                    .unwrap()
                    .push((ctx.request().seed, ctx.parallelism()));
                Ok(StrategyOutcome::Solved {
                    assignment: ctx.heuristic(),
                    stats: None,
                    proven_satisfiable: false,
                })
            }
        }
        let recorder = Arc::new(ParallelismRecorder::default());
        let engine = Engine::builder()
            .parallelism(4)
            .strategy(Arc::clone(&recorder) as Arc<dyn LayoutStrategy>)
            .build();
        let session = engine.session();
        let program = Benchmark::MedIm04.program();
        let mut jobs: Vec<(&Program, OptimizeRequest)> = (1..=3usize)
            .map(|workers| {
                (
                    &program,
                    OptimizeRequest::strategy("recorder")
                        .seed(workers as u64)
                        .with_budget(SearchBudget::new().workers(workers)),
                )
            })
            .collect();
        // One job with no explicit worker budget: sees the engine default.
        jobs.push((&program, OptimizeRequest::strategy("recorder").seed(99)));
        let results = session.optimize_many(&jobs);
        assert!(results.iter().all(Result::is_ok));
        let seen = recorder.seen.lock().unwrap();
        assert_eq!(seen.len(), jobs.len());
        for workers in 1..=3u64 {
            assert!(
                seen.contains(&(workers, workers as usize)),
                "request with workers({workers}) saw {seen:?}"
            );
        }
        assert!(
            seen.contains(&(99, 4)),
            "request without a worker budget must see the engine default: {seen:?}"
        );
    }

    #[test]
    fn solve_hooks_cancel_requests_cooperatively() {
        // A pre-fired token aborts the search almost immediately; the
        // report must say Cancelled, never Unsatisfiable (a cancelled run
        // has no limit hits, which used to read as an UNSAT proof).
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::Radar.program();
        let token = CancelToken::new();
        token.cancel();
        let report = session
            .optimize_with_hooks(
                &program,
                &OptimizeRequest::strategy("base").candidates(Benchmark::Radar.candidate_options()),
                &SolveHooks::cancellable(token),
            )
            .unwrap();
        assert_eq!(
            report.fallback,
            Fallback::Heuristic(FallbackReason::Cancelled)
        );
        assert_eq!(report.satisfiable, None);
        for array in program.arrays() {
            assert!(report.assignment.contains(array.id()));
        }
    }

    #[test]
    fn instance_features_are_extracted_from_cached_artifacts() {
        let session = Engine::new().session();
        let program = Benchmark::MedIm04.program();
        let options = Benchmark::MedIm04.candidate_options();
        let features = session.features(&program, &options);
        assert!(features.variables > 0.0);
        assert!(features.density > 0.0 && features.density <= 1.0);
        assert!(features.mean_domain >= 1.0);
        assert!(features.weight_skew >= 1.0);
        // Deterministic: a second extraction returns the identical vector.
        assert_eq!(
            features.as_array(),
            session.features(&program, &options).as_array()
        );
    }

    #[test]
    fn dynamic_plan_is_available_on_sessions() {
        let engine = Engine::new();
        let session = engine.session();
        let program = Benchmark::Track.program();
        let plan = session.dynamic_plan(&program, 2, &CandidateOptions::default());
        assert_eq!(plan.schedules.len(), program.arrays().len());
    }
}
