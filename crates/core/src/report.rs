//! Minimal plain-text table formatting for the experiment harness.

use std::fmt;

/// A simple column-aligned text table, used by the `mlo-bench` binaries to
/// print the paper's tables.
///
/// # Examples
///
/// ```
/// use mlo_core::TextTable;
/// let mut t = TextTable::new(vec!["Benchmark", "Heuristic", "Enhanced"]);
/// t.row(vec!["MxM".into(), "5.18".into(), "9.24".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Benchmark"));
/// assert!(s.contains("MxM"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TextTable {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.  Rows shorter than the header are padded with empty
    /// cells; longer rows are allowed and simply widen the table.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let columns = self.column_count();
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_aligned_columns() {
        let mut t = TextTable::new(vec!["A", "Longer"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A   "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("xxxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = TextTable::new(vec!["A"]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.to_string();
        assert!(s.contains("extra"));
        assert!(TextTable::new(vec!["only"]).is_empty());
    }
}
