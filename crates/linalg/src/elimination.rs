//! Exact Gaussian elimination over the rationals.
//!
//! Used to compute matrix rank (how many independent locality constraints a
//! reference imposes), to solve small linear systems when recovering layout
//! hyperplanes, and as the backbone of the kernel computation.

use crate::matrix::IntMat;
use crate::rational::Rational;
use crate::vector::IntVec;
use crate::LinalgError;

/// A matrix of rationals used internally by the elimination routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMat {
    /// Creates a rational matrix from an integer matrix.
    pub fn from_int(m: &IntMat) -> Self {
        let mut data = Vec::with_capacity(m.rows() * m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                data.push(Rational::from_int(m.get(r, c)));
            }
        }
        RatMat {
            rows: m.rows(),
            cols: m.cols(),
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, r: usize, c: usize) -> Rational {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    fn set(&mut self, r: usize, c: usize, v: Rational) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }

    /// Performs in-place reduced row-echelon elimination and returns the
    /// pivot column of every pivot row, in order.
    pub fn reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Find a non-zero pivot in this column at or below pivot_row.
            let found = (pivot_row..self.rows).find(|&r| !self.get(r, col).is_zero());
            let Some(r) = found else { continue };
            self.swap_rows(pivot_row, r);
            // Normalize the pivot row.
            let pivot = self.get(pivot_row, col);
            for c in col..self.cols {
                let v = self.get(pivot_row, c);
                self.set(pivot_row, c, v / pivot);
            }
            // Eliminate the column everywhere else.
            for r2 in 0..self.rows {
                if r2 == pivot_row {
                    continue;
                }
                let factor = self.get(r2, col);
                if factor.is_zero() {
                    continue;
                }
                for c in col..self.cols {
                    let v = self.get(r2, c) - factor * self.get(pivot_row, c);
                    self.set(r2, c, v);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }
}

/// The rank of an integer matrix (over the rationals).
///
/// # Examples
///
/// ```
/// use mlo_linalg::{rank, IntMat};
/// assert_eq!(rank(&IntMat::identity(3)), 3);
/// assert_eq!(rank(&IntMat::from_array([[1, 2], [2, 4]])), 1);
/// assert_eq!(rank(&IntMat::zeros(2, 2)), 0);
/// ```
pub fn rank(m: &IntMat) -> usize {
    if m.is_empty() {
        return 0;
    }
    let mut rm = RatMat::from_int(m);
    rm.reduce().len()
}

/// Returns the reduced row-echelon form of the matrix (as rationals) and the
/// pivot columns.
pub fn row_echelon(m: &IntMat) -> (RatMat, Vec<usize>) {
    let mut rm = RatMat::from_int(m);
    let pivots = rm.reduce();
    (rm, pivots)
}

/// Solves the linear system `A x = b` exactly over the rationals.
///
/// Returns one particular solution (free variables are set to zero).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.dim() != A.rows()`.
/// * [`LinalgError::Inconsistent`] if the system has no solution.
///
/// # Examples
///
/// ```
/// use mlo_linalg::{solve, IntMat, IntVec, Rational};
/// let a = IntMat::from_array([[2, 0], [0, 4]]);
/// let b = IntVec::from(vec![2, 2]);
/// let x = solve(&a, &b).unwrap();
/// assert_eq!(x, vec![Rational::ONE, Rational::new(1, 2)]);
/// ```
pub fn solve(a: &IntMat, b: &IntVec) -> crate::Result<Vec<Rational>> {
    if b.dim() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            expected: a.rows(),
            actual: b.dim(),
        });
    }
    // Build the augmented matrix [A | b].
    let mut aug = IntMat::zeros(a.rows(), a.cols() + 1);
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            aug.set(r, c, a.get(r, c));
        }
        aug.set(r, a.cols(), b[r]);
    }
    let mut rm = RatMat::from_int(&aug);
    let pivots = rm.reduce();
    // Inconsistent if a pivot falls in the augmented column.
    if pivots.contains(&a.cols()) {
        return Err(LinalgError::Inconsistent);
    }
    let mut x = vec![Rational::ZERO; a.cols()];
    for (row, &col) in pivots.iter().enumerate() {
        x[col] = rm.get(row, a.cols());
    }
    Ok(x)
}

/// Checks whether the rows of `m` are linearly independent.
pub fn rows_independent(m: &IntMat) -> bool {
    rank(m) == m.rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rank_examples() {
        assert_eq!(rank(&IntMat::identity(4)), 4);
        assert_eq!(rank(&IntMat::zeros(3, 5)), 0);
        assert_eq!(
            rank(&IntMat::from_array([[1, 2, 3], [2, 4, 6], [1, 0, 0]])),
            2
        );
        assert_eq!(rank(&IntMat::from_array([[1, 1], [1, -1]])), 2);
        assert_eq!(rank(&IntMat::default()), 0);
    }

    #[test]
    fn solve_unique_system() {
        let a = IntMat::from_array([[1, 1], [1, -1]]);
        let b = IntVec::from(vec![3, 1]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![Rational::from_int(2), Rational::from_int(1)]);
    }

    #[test]
    fn solve_underdetermined_system() {
        // x + y = 2 has solutions; the particular one sets the free variable
        // to zero.
        let a = IntMat::from_array([[1, 1]]);
        let b = IntVec::from(vec![2]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![Rational::from_int(2), Rational::ZERO]);
    }

    #[test]
    fn solve_inconsistent_system() {
        let a = IntMat::from_array([[1, 1], [1, 1]]);
        let b = IntVec::from(vec![1, 2]);
        assert_eq!(solve(&a, &b), Err(LinalgError::Inconsistent));
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = IntMat::identity(2);
        let b = IntVec::from(vec![1, 2, 3]);
        assert!(matches!(
            solve(&a, &b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn row_echelon_reports_pivots() {
        let (_, pivots) = row_echelon(&IntMat::from_array([[0, 1, 2], [0, 0, 3]]));
        assert_eq!(pivots, vec![1, 2]);
        assert!(rows_independent(&IntMat::from_array([[1, 0], [1, 1]])));
        assert!(!rows_independent(&IntMat::from_array([[1, 0], [2, 0]])));
    }

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = IntMat> {
        proptest::collection::vec(proptest::collection::vec(-6i64..6, cols), rows)
            .prop_map(|rows| IntMat::from_rows(rows.into_iter().map(IntVec::from).collect()))
    }

    proptest! {
        #[test]
        fn rank_bounded_by_dimensions(m in small_matrix(3, 4)) {
            let r = rank(&m);
            prop_assert!(r <= 3);
            prop_assert!(r <= 4);
        }

        #[test]
        fn rank_of_transpose_equal(m in small_matrix(3, 4)) {
            prop_assert_eq!(rank(&m), rank(&m.transpose()));
        }

        #[test]
        fn solution_satisfies_system(m in small_matrix(3, 3),
                                     xs in proptest::collection::vec(-5i64..5, 3)) {
            // Construct b = A x so the system is guaranteed consistent, then
            // verify the returned solution reproduces b.
            let x_true = IntVec::from(xs);
            let b = m.mul_vec(&x_true).unwrap();
            let x = solve(&m, &b).unwrap();
            for r in 0..m.rows() {
                let mut acc = Rational::ZERO;
                for (c, &xc) in x.iter().enumerate() {
                    acc = acc + Rational::from_int(m.get(r, c)) * xc;
                }
                prop_assert_eq!(acc, Rational::from_int(b[r]));
            }
        }
    }
}
