//! Integer bases of matrix kernels (nullspaces).
//!
//! The central derivation of the paper's Section 2 is: given the direction
//! in which consecutive loop iterations move through an array's index space,
//! the desirable layout hyperplane vectors are exactly the integer vectors
//! orthogonal to that direction — i.e. a basis of the kernel of the matrix
//! whose rows are the "movement" directions.

use crate::elimination::row_echelon;
use crate::gcd::gcd_slice;
use crate::matrix::IntMat;
use crate::rational::Rational;
use crate::vector::IntVec;

/// Computes an integer basis of the (right) kernel of `m`, i.e. all `x` with
/// `m * x = 0`.
///
/// Each basis vector is scaled to integers (multiplying by the LCM of the
/// denominators) and canonicalized with [`IntVec::canonicalized`].  The
/// basis has `cols - rank` vectors; an empty vector list means the kernel is
/// trivial.
///
/// # Examples
///
/// ```
/// use mlo_linalg::{kernel_basis, IntMat, IntVec};
/// // Kernel of (1 1): spanned by (1 -1) — the diagonal layout direction.
/// let m = IntMat::from_array([[1, 1]]);
/// let basis = kernel_basis(&m);
/// assert_eq!(basis, vec![IntVec::from(vec![1, -1])]);
///
/// // A full-rank square matrix has a trivial kernel.
/// assert!(kernel_basis(&IntMat::identity(3)).is_empty());
/// ```
pub fn kernel_basis(m: &IntMat) -> Vec<IntVec> {
    if m.is_empty() {
        return Vec::new();
    }
    let cols = m.cols();
    let (rref, pivots) = row_echelon(m);
    let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_set.contains(c)).collect();
    let mut basis = Vec::with_capacity(free_cols.len());
    for &free in &free_cols {
        // Solution with this free variable = 1 and every other free
        // variable = 0.
        let mut x = vec![Rational::ZERO; cols];
        x[free] = Rational::ONE;
        for (row, &pc) in pivots.iter().enumerate() {
            // pivot variable = -(coefficient of the free column in this row)
            x[pc] = -rref.get(row, free);
        }
        basis.push(rationals_to_int_vec(&x));
    }
    basis
}

/// Computes an integer basis of the *left* kernel of `m`: all `y` with
/// `y * m = 0` (equivalently the kernel of the transpose).
///
/// This is the form used when searching for a layout hyperplane `y` that is
/// constant along given index-space directions (the columns of `m`).
pub fn left_kernel_basis(m: &IntMat) -> Vec<IntVec> {
    kernel_basis(&m.transpose())
}

/// Converts a rational vector to a canonical integer vector by clearing
/// denominators.
fn rationals_to_int_vec(x: &[Rational]) -> IntVec {
    let mut denom_lcm = 1i64;
    for r in x {
        denom_lcm = crate::gcd::lcm(denom_lcm, r.denominator());
        if denom_lcm == 0 {
            denom_lcm = 1;
        }
    }
    let ints: Vec<i64> = x
        .iter()
        .map(|r| r.numerator() * (denom_lcm / r.denominator()))
        .collect();
    let g = gcd_slice(&ints);
    let ints = if g > 1 {
        ints.into_iter().map(|v| v / g).collect()
    } else {
        ints
    };
    IntVec::from(ints).canonicalized()
}

/// Returns `true` when `x` lies in the kernel of `m` (i.e. `m * x == 0`).
pub fn in_kernel(m: &IntMat, x: &IntVec) -> bool {
    match m.mul_vec(x) {
        Ok(v) => v.is_zero(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::rank;
    use proptest::prelude::*;

    #[test]
    fn kernel_of_paper_examples() {
        // Figure 2, array Q1: movement direction between consecutive inner
        // iterations is (1, 1) in the data space, so the layout hyperplane
        // is (1 -1).
        let m = IntMat::from_array([[1, 1]]);
        assert_eq!(kernel_basis(&m), vec![IntVec::from(vec![1, -1])]);

        // Figure 2, array Q2: movement direction is (1, 0); the layout
        // hyperplane is (0 1) (column-major).
        let m = IntMat::from_array([[1, 0]]);
        assert_eq!(kernel_basis(&m), vec![IntVec::from(vec![0, 1])]);
    }

    #[test]
    fn kernel_of_identity_is_trivial() {
        assert!(kernel_basis(&IntMat::identity(2)).is_empty());
        assert!(kernel_basis(&IntMat::identity(4)).is_empty());
    }

    #[test]
    fn kernel_of_zero_matrix_is_full() {
        let basis = kernel_basis(&IntMat::zeros(2, 3));
        assert_eq!(basis.len(), 3);
        for (i, b) in basis.iter().enumerate() {
            assert_eq!(b, &IntVec::unit(3, i));
        }
    }

    #[test]
    fn left_kernel_example() {
        // Rows of m span a 1-D subspace of R^2; the left kernel is 1-D.
        let m = IntMat::from_array([[1, 2], [2, 4]]);
        let basis = left_kernel_basis(&m);
        assert_eq!(basis.len(), 1);
        // y * m == 0
        let y = &basis[0];
        let prod = IntMat::from_rows(vec![y.clone()]).mul_mat(&m).unwrap();
        assert!(prod.row(0).is_zero());
    }

    #[test]
    fn in_kernel_checks() {
        let m = IntMat::from_array([[1, 1]]);
        assert!(in_kernel(&m, &IntVec::from(vec![1, -1])));
        assert!(in_kernel(&m, &IntVec::from(vec![-2, 2])));
        assert!(!in_kernel(&m, &IntVec::from(vec![1, 1])));
        assert!(!in_kernel(&m, &IntVec::from(vec![1, 0, 0])));
    }

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = IntMat> {
        proptest::collection::vec(proptest::collection::vec(-5i64..5, cols), rows)
            .prop_map(|rows| IntMat::from_rows(rows.into_iter().map(IntVec::from).collect()))
    }

    proptest! {
        #[test]
        fn kernel_vectors_are_in_kernel(m in small_matrix(2, 4)) {
            for b in kernel_basis(&m) {
                prop_assert!(in_kernel(&m, &b), "basis vector {b} not in kernel");
                prop_assert!(!b.is_zero());
            }
        }

        #[test]
        fn kernel_dimension_is_cols_minus_rank(m in small_matrix(3, 4)) {
            let basis = kernel_basis(&m);
            prop_assert_eq!(basis.len(), 4 - rank(&m));
        }

        #[test]
        fn kernel_basis_is_independent(m in small_matrix(2, 4)) {
            let basis = kernel_basis(&m);
            if !basis.is_empty() {
                let bm = IntMat::from_rows(basis.clone());
                prop_assert_eq!(rank(&bm), basis.len());
            }
        }
    }
}
