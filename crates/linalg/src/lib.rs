//! Exact integer and rational linear algebra for memory-layout analysis.
//!
//! The hyperplane-based layout representation of the DATE'05 paper
//! *"A Constraint Network Based Approach to Memory Layout Optimization"*
//! manipulates small integer vectors and matrices: hyperplane (layout)
//! vectors, affine array-access matrices, loop-transformation matrices and
//! their kernels.  Floating point is never acceptable here — a layout vector
//! such as `(1 -1)` must be recovered *exactly* from the access pattern — so
//! this crate provides exact arithmetic over `i64` and over rationals, plus
//! the handful of decompositions the rest of the workspace needs:
//!
//! * [`gcd`](fn@gcd) / [`lcm`] / [`extended_gcd`] — elementary number
//!   theory,
//! * [`Rational`] — a normalized rational number,
//! * [`IntVec`] — a dense integer vector (hyperplane vectors, offsets),
//! * [`IntMat`] — a dense integer matrix (access matrices, transforms),
//! * fraction-free Gaussian [`elimination`] (rank, solving),
//! * integer [`kernel`] (nullspace) bases,
//! * [`hermite`] normal form,
//! * [`unimodular`] checks and inverses of unimodular matrices.
//!
//! # Example
//!
//! Recovering the diagonal layout of the paper's Figure 2: array `Q1` is
//! accessed as `Q1[i1+i2][i2]`, and two consecutive iterations of the inner
//! loop touch `(i1+i2, i2)` and `(i1+i2+1, i2+1)`.  The layout hyperplane
//! must be orthogonal to the difference `(1, 1)`:
//!
//! ```
//! use mlo_linalg::{IntMat, IntVec, kernel::kernel_basis};
//!
//! // One row per constraint: y . (1, 1) = 0
//! let constraint = IntMat::from_rows(vec![IntVec::from(vec![1, 1])]);
//! let basis = kernel_basis(&constraint);
//! assert_eq!(basis.len(), 1);
//! // The basis vector is (1, -1) up to sign: the diagonal layout.
//! let y = basis[0].clone().canonicalized();
//! assert_eq!(y, IntVec::from(vec![1, -1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elimination;
pub mod gcd;
pub mod hermite;
pub mod kernel;
pub mod matrix;
pub mod rational;
pub mod unimodular;
pub mod vector;

pub use elimination::{rank, row_echelon, solve};
pub use gcd::{extended_gcd, gcd, gcd_slice, lcm};
pub use hermite::hermite_normal_form;
pub use kernel::kernel_basis;
pub use matrix::IntMat;
pub use rational::Rational;
pub use unimodular::{determinant, is_unimodular, unimodular_inverse};
pub use vector::IntVec;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A matrix that was required to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix inverse was requested but the matrix is singular.
    Singular,
    /// A unimodular inverse was requested but the determinant is not ±1.
    NotUnimodular {
        /// The determinant that was found.
        determinant: i64,
    },
    /// A linear system has no solution.
    Inconsistent,
    /// Division by zero in rational arithmetic.
    DivisionByZero,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotUnimodular { determinant } => {
                write!(f, "matrix is not unimodular (determinant {determinant})")
            }
            LinalgError::Inconsistent => write!(f, "linear system has no solution"),
            LinalgError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = LinalgError::NotUnimodular { determinant: 4 };
        assert!(e.to_string().contains("4"));
        assert!(!format!("{:?}", LinalgError::Singular).is_empty());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
