//! Determinants, unimodularity checks and inverses of unimodular matrices.
//!
//! Loop transformations in the IR crate are represented by unimodular
//! matrices (determinant ±1): they map the iteration space bijectively onto
//! itself, which is what makes loop permutation / skewing legal to reason
//! about without changing the set of executed iterations.

use crate::matrix::IntMat;
use crate::rational::Rational;
use crate::LinalgError;

/// Computes the determinant of a square integer matrix exactly.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
///
/// # Examples
///
/// ```
/// use mlo_linalg::{determinant, IntMat};
/// assert_eq!(determinant(&IntMat::identity(3)), Ok(1));
/// assert_eq!(determinant(&IntMat::from_array([[0, 1], [1, 0]])), Ok(-1));
/// assert_eq!(determinant(&IntMat::from_array([[2, 0], [0, 3]])), Ok(6));
/// ```
pub fn determinant(m: &IntMat) -> crate::Result<i64> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Ok(1);
    }
    // Bareiss fraction-free elimination keeps all intermediates integral.
    let mut a: Vec<Vec<i64>> = (0..n)
        .map(|r| (0..n).map(|c| m.get(r, c)).collect())
        .collect();
    let mut sign = 1i64;
    let mut prev = 1i64;
    for k in 0..n - 1 {
        if a[k][k] == 0 {
            // Find a row below with a non-zero entry in column k.
            let swap = (k + 1..n).find(|&r| a[r][k] != 0);
            match swap {
                Some(r) => {
                    a.swap(k, r);
                    sign = -sign;
                }
                None => return Ok(0),
            }
        }
        for i in k + 1..n {
            for j in k + 1..n {
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) / prev;
            }
            a[i][k] = 0;
        }
        prev = a[k][k];
    }
    Ok(sign * a[n - 1][n - 1])
}

/// Whether the matrix is unimodular (square with determinant ±1).
///
/// # Examples
///
/// ```
/// use mlo_linalg::{is_unimodular, IntMat};
/// assert!(is_unimodular(&IntMat::identity(4)));
/// assert!(is_unimodular(&IntMat::from_array([[1, 1], [0, 1]])));  // skew
/// assert!(!is_unimodular(&IntMat::from_array([[2, 0], [0, 1]])));
/// ```
pub fn is_unimodular(m: &IntMat) -> bool {
    matches!(determinant(m), Ok(1) | Ok(-1))
}

/// Computes the exact inverse of a unimodular matrix; the inverse of a
/// unimodular matrix is again an integer (unimodular) matrix.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for non-square input.
/// * [`LinalgError::NotUnimodular`] when the determinant is not ±1.
///
/// # Examples
///
/// ```
/// use mlo_linalg::{unimodular_inverse, IntMat};
/// let skew = IntMat::from_array([[1, 1], [0, 1]]);
/// let inv = unimodular_inverse(&skew).unwrap();
/// assert_eq!(skew.mul_mat(&inv).unwrap(), IntMat::identity(2));
/// ```
// Explicit indices mirror the Gauss-Jordan formulation; iterator forms would
// obscure the row/column arithmetic.
#[allow(clippy::needless_range_loop)]
pub fn unimodular_inverse(m: &IntMat) -> crate::Result<IntMat> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let det = determinant(m)?;
    if det != 1 && det != -1 {
        return Err(LinalgError::NotUnimodular { determinant: det });
    }
    let n = m.rows();
    // Gauss-Jordan over the rationals on [M | I]; the result is integral
    // because det = ±1.
    let mut aug: Vec<Vec<Rational>> = (0..n)
        .map(|r| {
            (0..2 * n)
                .map(|c| {
                    if c < n {
                        Rational::from_int(m.get(r, c))
                    } else if c - n == r {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    }
                })
                .collect()
        })
        .collect();
    for col in 0..n {
        // Find pivot.
        let pivot_row = (col..n)
            .find(|&r| !aug[r][col].is_zero())
            .ok_or(LinalgError::Singular)?;
        aug.swap(col, pivot_row);
        let pivot = aug[col][col];
        for c in 0..2 * n {
            aug[col][c] = aug[col][c] / pivot;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = aug[r][col];
            if factor.is_zero() {
                continue;
            }
            for c in 0..2 * n {
                aug[r][c] = aug[r][c] - factor * aug[col][c];
            }
        }
    }
    let mut inv = IntMat::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            let v = aug[r][n + c];
            let int = v
                .to_integer()
                .expect("inverse of a unimodular matrix must be integral");
            inv.set(r, c, int);
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::IntVec;
    use proptest::prelude::*;

    #[test]
    fn determinant_examples() {
        assert_eq!(determinant(&IntMat::identity(1)), Ok(1));
        assert_eq!(determinant(&IntMat::from_array([[3]])), Ok(3));
        assert_eq!(determinant(&IntMat::from_array([[1, 2], [3, 4]])), Ok(-2));
        assert_eq!(
            determinant(&IntMat::from_array([[1, 2, 3], [4, 5, 6], [7, 8, 9]])),
            Ok(0)
        );
        assert_eq!(
            determinant(&IntMat::from_array([[2, 0, 0], [0, 3, 0], [0, 0, 4]])),
            Ok(24)
        );
        assert!(matches!(
            determinant(&IntMat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_with_zero_pivot_needs_swap() {
        let m = IntMat::from_array([[0, 1], [1, 0]]);
        assert_eq!(determinant(&m), Ok(-1));
        let m = IntMat::from_array([[0, 2, 1], [1, 0, 0], [0, 1, 0]]);
        assert_eq!(determinant(&m), Ok(1));
    }

    #[test]
    fn unimodularity() {
        // Loop interchange matrix.
        assert!(is_unimodular(&IntMat::from_array([[0, 1], [1, 0]])));
        // Loop skewing.
        assert!(is_unimodular(&IntMat::from_array([[1, 0], [1, 1]])));
        // Reversal.
        assert!(is_unimodular(&IntMat::from_array([[-1, 0], [0, 1]])));
        // Scaling is not unimodular.
        assert!(!is_unimodular(&IntMat::from_array([[2, 0], [0, 1]])));
        assert!(!is_unimodular(&IntMat::zeros(2, 2)));
    }

    #[test]
    fn inverse_roundtrip() {
        let cases = [
            IntMat::from_array([[0, 1], [1, 0]]),
            IntMat::from_array([[1, 1], [0, 1]]),
            IntMat::from_array([[1, 2], [1, 3]]),
            IntMat::from_array([[1, 0, 0], [2, 1, 0], [3, 4, 1]]),
        ];
        for m in cases {
            let inv = unimodular_inverse(&m).unwrap();
            assert_eq!(m.mul_mat(&inv).unwrap(), IntMat::identity(m.rows()));
            assert_eq!(inv.mul_mat(&m).unwrap(), IntMat::identity(m.rows()));
        }
    }

    #[test]
    fn inverse_rejects_non_unimodular() {
        assert!(matches!(
            unimodular_inverse(&IntMat::from_array([[2, 0], [0, 1]])),
            Err(LinalgError::NotUnimodular { determinant: 2 })
        ));
        assert!(matches!(
            unimodular_inverse(&IntMat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    /// Strategy producing random unimodular matrices by composing elementary
    /// operations (row swaps and adding multiples of one row to another).
    fn unimodular_strategy(n: usize) -> impl Strategy<Value = IntMat> {
        proptest::collection::vec((0..n, 0..n, -3i64..3), 0..8).prop_map(move |ops| {
            let mut m = IntMat::identity(n);
            for (a, b, k) in ops {
                if a != b {
                    // Add k * row b to row a (elementary, determinant 1).
                    for c in 0..n {
                        let v = m.get(a, c) + k * m.get(b, c);
                        m.set(a, c, v);
                    }
                }
            }
            m
        })
    }

    proptest! {
        #[test]
        fn generated_unimodular_matrices_are_unimodular(m in unimodular_strategy(3)) {
            prop_assert!(is_unimodular(&m));
        }

        #[test]
        fn inverse_of_unimodular_roundtrips(m in unimodular_strategy(3)) {
            let inv = unimodular_inverse(&m).unwrap();
            prop_assert_eq!(m.mul_mat(&inv).unwrap(), IntMat::identity(3));
            prop_assert!(is_unimodular(&inv));
        }

        #[test]
        fn determinant_of_product_is_product_of_determinants(
            a in unimodular_strategy(3),
            b in unimodular_strategy(3),
        ) {
            let prod = a.mul_mat(&b).unwrap();
            prop_assert_eq!(
                determinant(&prod).unwrap(),
                determinant(&a).unwrap() * determinant(&b).unwrap()
            );
        }

        #[test]
        fn determinant_sign_flips_on_row_swap(m in unimodular_strategy(3)) {
            let mut swapped = m.clone();
            swapped.swap_rows(0, 1);
            prop_assert_eq!(determinant(&swapped).unwrap(), -determinant(&m).unwrap());
        }

        #[test]
        fn unimodular_preserves_lattice_membership(
            m in unimodular_strategy(3),
            v in proptest::collection::vec(-5i64..5, 3),
        ) {
            // A unimodular map sends integer vectors to integer vectors and
            // its inverse brings them back.
            let v = IntVec::from(v);
            let mapped = m.mul_vec(&v).unwrap();
            let back = unimodular_inverse(&m).unwrap().mul_vec(&mapped).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
