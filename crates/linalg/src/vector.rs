//! Dense integer vectors.
//!
//! [`IntVec`] is the workhorse type of the workspace: hyperplane (layout)
//! vectors, iteration vectors, array subscripts, offset vectors and distance
//! vectors are all `IntVec`s.

use crate::gcd::gcd_slice;
use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense vector of `i64` components.
///
/// # Examples
///
/// ```
/// use mlo_linalg::IntVec;
/// let a = IntVec::from(vec![1, 2, 3]);
/// let b = IntVec::from(vec![4, 5, 6]);
/// assert_eq!(a.dot(&b), Ok(32));
/// assert_eq!((a + b).as_slice(), &[5, 7, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IntVec {
    data: Vec<i64>,
}

impl IntVec {
    /// Creates a vector from its components.
    pub fn new(data: Vec<i64>) -> Self {
        IntVec { data }
    }

    /// Creates a zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        IntVec { data: vec![0; dim] }
    }

    /// Creates the `i`-th standard basis vector of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn unit(dim: usize, i: usize) -> Self {
        assert!(i < dim, "unit index {i} out of range for dimension {dim}");
        let mut v = Self::zeros(dim);
        v.data[i] = 1;
        v
    }

    /// The dimension (number of components).
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Whether every component is zero (also true for the empty vector).
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }

    /// Returns the components as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Returns the components as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<i64> {
        self.data
    }

    /// Returns the component at `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<i64> {
        self.data.get(i).copied()
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = &i64> {
        self.data.iter()
    }

    /// The dot (inner) product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the dimensions differ.
    pub fn dot(&self, other: &IntVec) -> crate::Result<i64> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Multiplies every component by a scalar.
    pub fn scaled(&self, k: i64) -> IntVec {
        IntVec {
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Divides all components by their GCD and fixes the sign so the first
    /// non-zero component is positive.  The zero vector is returned
    /// unchanged.
    ///
    /// This is the canonical form used for hyperplane vectors: `(2 -2)`,
    /// `(-1 1)` and `(1 -1)` all describe the same layout family and all
    /// canonicalize to `(1 -1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlo_linalg::IntVec;
    /// assert_eq!(IntVec::from(vec![2, -2]).canonicalized(), IntVec::from(vec![1, -1]));
    /// assert_eq!(IntVec::from(vec![-1, 1]).canonicalized(), IntVec::from(vec![1, -1]));
    /// assert_eq!(IntVec::from(vec![0, 0]).canonicalized(), IntVec::from(vec![0, 0]));
    /// ```
    pub fn canonicalized(mut self) -> IntVec {
        let g = gcd_slice(&self.data);
        if g > 1 {
            for x in &mut self.data {
                *x /= g;
            }
        }
        if let Some(&first) = self.data.iter().find(|&&x| x != 0) {
            if first < 0 {
                for x in &mut self.data {
                    *x = -*x;
                }
            }
        }
        self
    }

    /// The sum of absolute values of the components (L1 norm).
    pub fn l1_norm(&self) -> i64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// The number of non-zero components.
    pub fn nonzero_count(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0).count()
    }

    /// Appends a component, returning the extended vector.
    pub fn extended_with(mut self, value: i64) -> IntVec {
        self.data.push(value);
        self
    }

    /// Element-wise addition, returning an error on dimension mismatch.
    pub fn checked_add(&self, other: &IntVec) -> crate::Result<IntVec> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(IntVec {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Element-wise subtraction, returning an error on dimension mismatch.
    pub fn checked_sub(&self, other: &IntVec) -> crate::Result<IntVec> {
        if self.dim() != other.dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(IntVec {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        })
    }
}

impl From<Vec<i64>> for IntVec {
    fn from(data: Vec<i64>) -> Self {
        IntVec { data }
    }
}

impl From<&[i64]> for IntVec {
    fn from(data: &[i64]) -> Self {
        IntVec {
            data: data.to_vec(),
        }
    }
}

impl<const N: usize> From<[i64; N]> for IntVec {
    fn from(data: [i64; N]) -> Self {
        IntVec {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<i64> for IntVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        IntVec {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<i64> for IntVec {
    fn extend<T: IntoIterator<Item = i64>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

impl IntoIterator for IntVec {
    type Item = i64;
    type IntoIter = std::vec::IntoIter<i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a IntVec {
    type Item = &'a i64;
    type IntoIter = std::slice::Iter<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Index<usize> for IntVec {
    type Output = i64;
    fn index(&self, index: usize) -> &i64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for IntVec {
    fn index_mut(&mut self, index: usize) -> &mut i64 {
        &mut self.data[index]
    }
}

impl Add for IntVec {
    type Output = IntVec;
    /// # Panics
    ///
    /// Panics when the dimensions differ; use [`IntVec::checked_add`] for a
    /// fallible version.
    fn add(self, rhs: IntVec) -> IntVec {
        self.checked_add(&rhs).expect("dimension mismatch in +")
    }
}

impl Sub for IntVec {
    type Output = IntVec;
    /// # Panics
    ///
    /// Panics when the dimensions differ; use [`IntVec::checked_sub`] for a
    /// fallible version.
    fn sub(self, rhs: IntVec) -> IntVec {
        self.checked_sub(&rhs).expect("dimension mismatch in -")
    }
}

impl Neg for IntVec {
    type Output = IntVec;
    fn neg(self) -> IntVec {
        self.scaled(-1)
    }
}

impl Mul<i64> for IntVec {
    type Output = IntVec;
    fn mul(self, rhs: i64) -> IntVec {
        self.scaled(rhs)
    }
}

impl fmt::Display for IntVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let v = IntVec::from(vec![1, -2, 3]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v[1], -2);
        assert_eq!(v.get(2), Some(3));
        assert_eq!(v.get(3), None);
        assert!(!v.is_zero());
        assert!(IntVec::zeros(4).is_zero());
        assert_eq!(IntVec::unit(3, 1).as_slice(), &[0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_out_of_range_panics() {
        let _ = IntVec::unit(2, 2);
    }

    #[test]
    fn dot_product() {
        let a = IntVec::from(vec![1, 0]);
        let b = IntVec::from(vec![5, 3]);
        assert_eq!(a.dot(&b), Ok(5));
        let c = IntVec::from(vec![1, -1]);
        assert_eq!(c.dot(&IntVec::from(vec![5, 3])), Ok(2));
        assert!(a.dot(&IntVec::from(vec![1, 2, 3])).is_err());
    }

    #[test]
    fn canonicalization_examples() {
        assert_eq!(
            IntVec::from(vec![2, -2]).canonicalized(),
            IntVec::from(vec![1, -1])
        );
        assert_eq!(
            IntVec::from(vec![0, -3]).canonicalized(),
            IntVec::from(vec![0, 1])
        );
        assert_eq!(
            IntVec::from(vec![-4, 6]).canonicalized(),
            IntVec::from(vec![2, -3])
        );
        assert!(IntVec::zeros(3).canonicalized().is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = IntVec::from(vec![1, 2]);
        let b = IntVec::from(vec![3, 4]);
        assert_eq!((a.clone() + b.clone()).as_slice(), &[4, 6]);
        assert_eq!((b.clone() - a.clone()).as_slice(), &[2, 2]);
        assert_eq!((-a.clone()).as_slice(), &[-1, -2]);
        assert_eq!((a.clone() * 3).as_slice(), &[3, 6]);
        assert_eq!(a.l1_norm(), 3);
        assert_eq!(a.nonzero_count(), 2);
        assert_eq!(IntVec::from(vec![0, 5]).nonzero_count(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(IntVec::from(vec![1, -1]).to_string(), "(1 -1)");
        assert_eq!(IntVec::from(vec![0, 0, 1]).to_string(), "(0 0 1)");
    }

    #[test]
    fn collect_and_extend() {
        let v: IntVec = (0..4).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        let mut w = IntVec::zeros(1);
        w.extend([5, 6]);
        assert_eq!(w.as_slice(), &[0, 5, 6]);
        let doubled: Vec<i64> = (&v).into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
    }

    fn vec_strategy(dim: usize) -> impl Strategy<Value = IntVec> {
        proptest::collection::vec(-20i64..20, dim).prop_map(IntVec::from)
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(a in vec_strategy(4), b in vec_strategy(4)) {
            prop_assert_eq!(a.dot(&b).unwrap(), b.dot(&a).unwrap());
        }

        #[test]
        fn canonicalized_is_idempotent(a in vec_strategy(3)) {
            let c = a.canonicalized();
            prop_assert_eq!(c.clone().canonicalized(), c);
        }

        #[test]
        fn canonicalized_preserves_direction(a in vec_strategy(3)) {
            // The canonical vector is parallel to the original: the 2x3
            // matrix [a; canon(a)] has rank <= 1.
            let c = a.clone().canonicalized();
            if !a.is_zero() {
                for i in 0..3 {
                    for j in 0..3 {
                        prop_assert_eq!(a[i] * c[j], a[j] * c[i]);
                    }
                }
            }
        }

        #[test]
        fn add_commutative(a in vec_strategy(5), b in vec_strategy(5)) {
            prop_assert_eq!(a.checked_add(&b).unwrap(), b.checked_add(&a).unwrap());
        }

        #[test]
        fn scaling_scales_dot(a in vec_strategy(4), b in vec_strategy(4), k in -5i64..5) {
            prop_assert_eq!(a.scaled(k).dot(&b).unwrap(), k * a.dot(&b).unwrap());
        }
    }
}
