//! A small, always-normalized rational number type.
//!
//! Rationals appear when solving the linear systems that recover hyperplane
//! vectors from access patterns and when computing exact per-reference cost
//! ratios.  The representation keeps the denominator strictly positive and
//! the fraction fully reduced, so equality is structural.

use crate::gcd::gcd;
use crate::LinalgError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is always `> 0` and `gcd(|num|, den) == 1`
/// (with `0` represented as `0/1`).
///
/// # Examples
///
/// ```
/// use mlo_linalg::Rational;
/// let a = Rational::new(2, 4);
/// assert_eq!(a, Rational::new(1, 2));
/// assert_eq!((a + Rational::new(1, 3)).to_string(), "5/6");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational `num / den`, normalizing sign and common
    /// factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.  Use [`Rational::checked_new`] for a fallible
    /// constructor.
    pub fn new(num: i64, den: i64) -> Self {
        Self::checked_new(num, den).expect("denominator must be non-zero")
    }

    /// Fallible constructor: returns an error when `den == 0`.
    pub fn checked_new(num: i64, den: i64) -> crate::Result<Self> {
        if den == 0 {
            return Err(LinalgError::DivisionByZero);
        }
        let mut num = num;
        let mut den = den;
        if den < 0 {
            num = -num;
            den = -den;
        }
        let g = gcd(num, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Ok(Rational { num, den })
    }

    /// Creates a rational from an integer.
    pub fn from_int(value: i64) -> Self {
        Rational { num: value, den: 1 }
    }

    /// The (reduced) numerator.
    pub fn numerator(&self) -> i64 {
        self.num
    }

    /// The (reduced, strictly positive) denominator.
    pub fn denominator(&self) -> i64 {
        self.den
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns the value as an integer if it is one.
    pub fn to_integer(&self) -> Option<i64> {
        if self.is_integer() {
            Some(self.num)
        } else {
            None
        }
    }

    /// Returns the reciprocal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DivisionByZero`] if this rational is zero.
    pub fn recip(&self) -> crate::Result<Self> {
        Rational::checked_new(self.den, self.num)
    }

    /// Returns this rational converted to `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns the absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Fallible division, returning an error instead of panicking on a zero
    /// divisor.
    pub fn checked_div(&self, rhs: &Rational) -> crate::Result<Self> {
        if rhs.is_zero() {
            return Err(LinalgError::DivisionByZero);
        }
        Ok(*self / *rhs)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_int(value)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics when dividing by zero; use [`Rational::checked_div`] to avoid
    /// the panic.
    fn div(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert_eq!(Rational::new(0, -7).denominator(), 1);
    }

    #[test]
    fn checked_new_rejects_zero_denominator() {
        assert_eq!(
            Rational::checked_new(1, 0),
            Err(LinalgError::DivisionByZero)
        );
    }

    #[test]
    fn arithmetic_matches_hand_calculation() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(2, 1) > Rational::ONE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::new(-3, 2).to_string(), "-3/2");
    }

    #[test]
    fn recip_and_integer_conversion() {
        assert_eq!(Rational::new(2, 3).recip().unwrap(), Rational::new(3, 2));
        assert!(Rational::ZERO.recip().is_err());
        assert_eq!(Rational::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
    }

    fn small_rational() -> impl Strategy<Value = Rational> {
        (-50i64..50, 1i64..20).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn add_is_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn mul_is_commutative(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn add_then_subtract_roundtrips(a in small_rational(), b in small_rational()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn normalization_invariant(a in small_rational()) {
            prop_assert!(a.denominator() > 0);
            prop_assert_eq!(gcd(a.numerator(), a.denominator()), if a.is_zero() { 1 } else { gcd(a.numerator(), a.denominator()) });
            prop_assert_eq!(gcd(a.numerator().abs(), a.denominator()).max(1), 1);
        }

        #[test]
        fn distributivity(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }
    }
}
