//! Dense integer matrices.
//!
//! [`IntMat`] represents affine access matrices (one row per array
//! dimension, one column per loop index), loop-transformation matrices and
//! layout matrices (one row per hyperplane).

use crate::vector::IntVec;
use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `i64` entries.
///
/// # Examples
///
/// ```
/// use mlo_linalg::{IntMat, IntVec};
/// // The access matrix of Q1[i1+i2][i2] from the paper's Figure 2.
/// let access = IntMat::from_rows(vec![
///     IntVec::from(vec![1, 1]),
///     IntVec::from(vec![0, 1]),
/// ]);
/// let iter = IntVec::from(vec![3, 4]);
/// assert_eq!(access.mul_vec(&iter).unwrap().as_slice(), &[7, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMat {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from a list of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: Vec<IntVec>) -> Self {
        if rows.is_empty() {
            return IntMat::default();
        }
        let cols = rows[0].dim();
        assert!(
            rows.iter().all(|r| r.dim() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            data.extend_from_slice(r.as_slice());
        }
        IntMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from nested arrays, mostly useful in tests and
    /// examples.
    ///
    /// ```
    /// use mlo_linalg::IntMat;
    /// let m = IntMat::from_array([[1, 0], [0, 1]]);
    /// assert_eq!(m, IntMat::identity(2));
    /// ```
    pub fn from_array<const R: usize, const C: usize>(rows: [[i64; C]; R]) -> Self {
        IntMat::from_rows(rows.iter().map(|r| IntVec::from(r.as_slice())).collect())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns the entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the entry at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, value: i64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = value;
    }

    /// Returns row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> IntVec {
        assert!(r < self.rows, "row index out of range");
        IntVec::from(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    pub fn col(&self, c: usize) -> IntVec {
        assert!(c < self.cols, "column index out of range");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterates over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = IntVec> + '_ {
        (0..self.rows).map(|r| self.row(r))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> IntMat {
        let mut t = IntMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.dim() != cols`.
    pub fn mul_vec(&self, v: &IntVec) -> crate::Result<IntVec> {
        if v.dim() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: v.dim(),
            });
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum::<i64>())
            .collect())
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn mul_mat(&self, other: &IntMat) -> crate::Result<IntMat> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = IntMat::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for c in 0..other.cols {
                let mut acc = 0;
                for k in 0..self.cols {
                    acc += self.get(r, k) * other.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }

    /// Stacks another matrix below this one.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the column counts
    /// differ (unless one of the matrices is empty).
    pub fn vstack(&self, other: &IntMat) -> crate::Result<IntMat> {
        if self.is_empty() {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.cols,
            });
        }
        let mut rows: Vec<IntVec> = self.iter_rows().collect();
        rows.extend(other.iter_rows());
        Ok(IntMat::from_rows(rows))
    }

    /// Returns a copy with row `r` removed.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn without_row(&self, r: usize) -> IntMat {
        assert!(r < self.rows, "row index out of range");
        IntMat::from_rows(
            self.iter_rows()
                .enumerate()
                .filter_map(|(i, row)| if i == r { None } else { Some(row) })
                .collect(),
        )
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }

    /// Whether this is a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether this matrix equals the identity.
    pub fn is_identity(&self) -> bool {
        self.is_square() && *self == IntMat::identity(self.rows)
    }
}

impl Add for IntMat {
    type Output = IntMat;
    /// # Panics
    ///
    /// Panics when the shapes differ.
    fn add(self, rhs: IntMat) -> IntMat {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "shape mismatch in matrix addition"
        );
        IntMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for IntMat {
    type Output = IntMat;
    /// # Panics
    ///
    /// Panics when the shapes differ.
    fn sub(self, rhs: IntMat) -> IntMat {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "shape mismatch in matrix subtraction"
        );
        IntMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for IntMat {
    type Output = IntMat;
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree; use [`IntMat::mul_mat`]
    /// for a fallible version.
    fn mul(self, rhs: IntMat) -> IntMat {
        self.mul_mat(&rhs).expect("dimension mismatch in *")
    }
}

impl fmt::Display for IntMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "[]");
        }
        for r in 0..self.rows {
            writeln!(f, "{}", self.row(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_and_access() {
        let id = IntMat::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.get(1, 1), 1);
        assert_eq!(id.get(0, 2), 0);
        assert_eq!(id.row(2).as_slice(), &[0, 0, 1]);
        assert_eq!(id.col(0).as_slice(), &[1, 0, 0]);
    }

    #[test]
    fn from_array_and_rows_agree() {
        let a = IntMat::from_array([[1, 2], [3, 4]]);
        let b = IntMat::from_rows(vec![IntVec::from(vec![1, 2]), IntVec::from(vec![3, 4])]);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
    }

    #[test]
    fn mul_vec_matches_hand_calculation() {
        let access = IntMat::from_array([[1, 1], [0, 1]]);
        let i = IntVec::from(vec![2, 5]);
        assert_eq!(access.mul_vec(&i).unwrap().as_slice(), &[7, 5]);
        assert!(access.mul_vec(&IntVec::from(vec![1])).is_err());
    }

    #[test]
    fn matrix_product() {
        let a = IntMat::from_array([[1, 2], [3, 4]]);
        let b = IntMat::from_array([[0, 1], [1, 0]]);
        assert_eq!(a.mul_mat(&b).unwrap(), IntMat::from_array([[2, 1], [4, 3]]));
        assert_eq!(a.clone() * IntMat::identity(2), a.clone());
        assert!(a.mul_mat(&IntMat::identity(3)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = IntMat::from_array([[1, 2, 3], [4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn stacking_and_row_removal() {
        let a = IntMat::from_array([[1, 2]]);
        let b = IntMat::from_array([[3, 4]]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.without_row(0), b);
        assert_eq!(s.without_row(1), a);
        assert!(a.vstack(&IntMat::from_array([[1, 2, 3]])).is_err());
        assert_eq!(a.vstack(&IntMat::default()).unwrap(), a);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = IntMat::from_array([[1, 2], [3, 4], [5, 6]]);
        m.swap_rows(0, 2);
        assert_eq!(m, IntMat::from_array([[5, 6], [3, 4], [1, 2]]));
        m.swap_rows(1, 1);
        assert_eq!(m.row(1).as_slice(), &[3, 4]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!IntMat::identity(2).to_string().is_empty());
        assert_eq!(IntMat::default().to_string(), "[]");
    }

    fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = IntMat> {
        proptest::collection::vec(-10i64..10, rows * cols).prop_map(move |data| IntMat {
            rows,
            cols,
            data,
        })
    }

    proptest! {
        #[test]
        fn identity_is_multiplicative_neutral(m in mat_strategy(3, 3)) {
            prop_assert_eq!(m.mul_mat(&IntMat::identity(3)).unwrap(), m.clone());
            prop_assert_eq!(IntMat::identity(3).mul_mat(&m).unwrap(), m);
        }

        #[test]
        fn transpose_of_product((a, b) in (mat_strategy(2, 3), mat_strategy(3, 2))) {
            // (AB)^T == B^T A^T
            let left = a.mul_mat(&b).unwrap().transpose();
            let right = b.transpose().mul_mat(&a.transpose()).unwrap();
            prop_assert_eq!(left, right);
        }

        #[test]
        fn mul_vec_is_linear(m in mat_strategy(3, 3),
                             v in proptest::collection::vec(-10i64..10, 3),
                             w in proptest::collection::vec(-10i64..10, 3)) {
            let v = IntVec::from(v);
            let w = IntVec::from(w);
            let sum = v.checked_add(&w).unwrap();
            let lhs = m.mul_vec(&sum).unwrap();
            let rhs = m.mul_vec(&v).unwrap().checked_add(&m.mul_vec(&w).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
