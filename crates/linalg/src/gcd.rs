//! Greatest common divisors, least common multiples and the extended
//! Euclidean algorithm.
//!
//! These primitives back the normalization of hyperplane vectors (a layout
//! `(2 -2)` is the same family as `(1 -1)`), the GCD dependence test in the
//! IR crate, and the Hermite-normal-form computation.

/// Returns the non-negative greatest common divisor of `a` and `b`.
///
/// `gcd(0, 0)` is defined to be `0`.
///
/// # Examples
///
/// ```
/// use mlo_linalg::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// assert_eq!(gcd(-4, 6), 2);
/// assert_eq!(gcd(0, 5), 5);
/// assert_eq!(gcd(0, 0), 0);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Returns the least common multiple of `a` and `b` (non-negative).
///
/// `lcm(0, x)` is `0`.
///
/// # Examples
///
/// ```
/// use mlo_linalg::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(0, 7), 0);
/// ```
///
/// # Panics
///
/// Panics on overflow in debug builds (the workspace only manipulates small
/// loop bounds and strides, far below `i64` limits).
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b) * b).abs()
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a*x + b*y == g == gcd(a, b)` with `g >= 0`.
///
/// # Examples
///
/// ```
/// use mlo_linalg::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        let tmp = old_r - q * r;
        old_r = r;
        r = tmp;
        let tmp = old_s - q * s;
        old_s = s;
        s = tmp;
        let tmp = old_t - q * t;
        old_t = t;
        t = tmp;
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// GCD of an entire slice (non-negative); `0` for an empty slice or a slice
/// of zeros.
///
/// # Examples
///
/// ```
/// use mlo_linalg::gcd_slice;
/// assert_eq!(gcd_slice(&[4, -6, 10]), 2);
/// assert_eq!(gcd_slice(&[]), 0);
/// assert_eq!(gcd_slice(&[0, 0]), 0);
/// ```
pub fn gcd_slice(values: &[i64]) -> i64 {
    values.iter().fold(0, |acc, &v| gcd(acc, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basic_cases() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(6, 4), 2);
        assert_eq!(gcd(4, 6), 2);
        assert_eq!(gcd(-6, -4), 2);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(100, 10), 10);
    }

    #[test]
    fn lcm_basic_cases() {
        assert_eq!(lcm(3, 5), 15);
        assert_eq!(lcm(-3, 5), 15);
        assert_eq!(lcm(6, 4), 12);
        assert_eq!(lcm(0, 0), 0);
        assert_eq!(lcm(1, 9), 9);
    }

    #[test]
    fn extended_gcd_identity_holds() {
        for (a, b) in [(240, 46), (0, 5), (5, 0), (-12, 18), (17, -5), (0, 0)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "bezout identity fails for ({a},{b})");
        }
    }

    #[test]
    fn gcd_slice_examples() {
        assert_eq!(gcd_slice(&[2, 4, 8]), 2);
        assert_eq!(gcd_slice(&[3]), 3);
        assert_eq!(gcd_slice(&[-3]), 3);
        assert_eq!(gcd_slice(&[5, 7]), 1);
    }

    proptest! {
        #[test]
        fn gcd_divides_both(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd(a, b);
            if g != 0 {
                prop_assert_eq!(a % g, 0);
                prop_assert_eq!(b % g, 0);
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn gcd_is_commutative(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            prop_assert_eq!(gcd(a, b), gcd(b, a));
        }

        #[test]
        fn gcd_is_associative(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            prop_assert_eq!(gcd(a, gcd(b, c)), gcd(gcd(a, b), c));
        }

        #[test]
        fn bezout_identity(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let (g, x, y) = extended_gcd(a, b);
            prop_assert_eq!(a * x + b * y, g);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert!(g >= 0);
        }

        #[test]
        fn lcm_times_gcd_is_product(a in 1i64..1000, b in 1i64..1000) {
            prop_assert_eq!(lcm(a, b) * gcd(a, b), a * b);
        }

        #[test]
        fn gcd_slice_divides_all(v in proptest::collection::vec(-500i64..500, 0..8)) {
            let g = gcd_slice(&v);
            if g != 0 {
                for x in &v {
                    prop_assert_eq!(x % g, 0);
                }
            }
        }
    }
}
