//! Bench behind Table 3: simulated execution of each benchmark under the
//! original, heuristic and constraint-network layouts.
//!
//! The full five-benchmark sweep is expensive, so the bench times the two
//! cheapest benchmarks per configuration; the `table3` binary prints the
//! complete table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_benchmarks::Benchmark;
use mlo_cachesim::{MachineConfig, Simulator};
use mlo_core::experiments::table3_trace_options;
use mlo_core::{Engine, OptimizeRequest};
use mlo_layout::LayoutAssignment;

fn execution_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_execution_time");
    group.sample_size(10);
    let engine = Engine::new();
    for benchmark in [Benchmark::Track, Benchmark::MedIm04] {
        let program = benchmark.program();
        let session = engine.session();
        let simulator =
            Simulator::new(MachineConfig::date05()).trace_options(table3_trace_options());

        let original = LayoutAssignment::all_row_major(&program);
        group.bench_with_input(
            BenchmarkId::new("original", benchmark.name()),
            &program,
            |b, program| {
                let sim = simulator.clone().without_restructuring();
                b.iter(|| sim.simulate(program, &original).expect("simulates"))
            },
        );

        for strategy in ["heuristic", "enhanced"] {
            let assignment = session
                .optimize(
                    &program,
                    &OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options()),
                )
                .expect("request succeeds")
                .assignment;
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), benchmark.name()),
                &program,
                |b, program| {
                    b.iter(|| simulator.simulate(program, &assignment).expect("simulates"))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, execution_time);
criterion_main!(benches);
