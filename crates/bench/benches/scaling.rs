//! Scaling study beyond the paper: solver behaviour on growing random
//! planted-satisfiable networks (ablation bench for the solver design
//! choices called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_csp::random::{satisfiable_network, RandomNetworkSpec};
use mlo_csp::{Scheme, SearchEngine};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(10);
    for &variables in &[10usize, 20, 40] {
        let spec = RandomNetworkSpec {
            variables,
            domain_size: 4,
            density: 0.35,
            tightness: 0.35,
            seed: 99,
        };
        let (network, _) = satisfiable_network(&spec);
        for scheme in [Scheme::Base, Scheme::Enhanced, Scheme::ForwardChecking] {
            let engine = SearchEngine::with_scheme(scheme);
            group.bench_with_input(
                BenchmarkId::new(format!("{scheme}"), variables),
                &network,
                |b, net| b.iter(|| engine.solve(net)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
