//! Criterion bench behind Table 2: time to determine the memory layouts of
//! every benchmark with the heuristic, base and enhanced schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_benchmarks::Benchmark;
use mlo_core::{Optimizer, OptimizerOptions, OptimizerScheme};

fn solution_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_solution_time");
    group.sample_size(10);
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        for scheme in [
            OptimizerScheme::Heuristic,
            OptimizerScheme::Base,
            OptimizerScheme::Enhanced,
        ] {
            // The base scheme's random backtracking does not reliably
            // terminate on the larger networks; cap it so the bench finishes
            // (the binary harness uses a larger cap and reports it).
            let node_limit = if scheme == OptimizerScheme::Base {
                Some(200_000)
            } else {
                None
            };
            let optimizer = Optimizer::with_options(OptimizerOptions {
                scheme,
                candidates: benchmark.candidate_options(),
                node_limit,
                ..OptimizerOptions::default()
            });
            group.bench_with_input(
                BenchmarkId::new(format!("{scheme}"), benchmark.name()),
                &program,
                |b, program| b.iter(|| optimizer.optimize(program)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, solution_time);
criterion_main!(benches);
