//! Bench behind Table 2: time to determine the memory layouts of every
//! benchmark with the heuristic, base and enhanced strategies.
//!
//! Each benchmark gets one engine session, so candidate enumeration and
//! network construction are amortized and the timed loop measures the
//! search itself — the paper's "solution time".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, OptimizeRequest};

fn solution_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_solution_time");
    group.sample_size(10);
    let engine = Engine::new();
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let session = engine.session();
        for strategy in ["heuristic", "base", "enhanced"] {
            // The base scheme's random backtracking does not reliably
            // terminate on the larger networks; cap it so the bench finishes
            // (the binary harness uses a larger cap and reports it).
            let mut request =
                OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options());
            if strategy == "base" {
                request = request.with_budget(mlo_core::SearchBudget::new().nodes(200_000));
            }
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), benchmark.name()),
                &program,
                |b, program| {
                    b.iter(|| {
                        session
                            .optimize(program, &request)
                            .expect("request succeeds")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, solution_time);
criterion_main!(benches);
