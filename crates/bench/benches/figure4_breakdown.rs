//! Criterion bench behind Figure 4: solver time as the three enhancements
//! (variable ordering, value ordering, backjumping) are enabled cumulatively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_benchmarks::Benchmark;
use mlo_csp::{Scheme, SearchEngine, ValueOrdering, VariableOrdering};
use mlo_layout::build_network;

fn breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_breakdown");
    group.sample_size(10);
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let network = build_network(&program, &benchmark.candidate_options());
        // Capped so the random-order configurations terminate on the larger
        // networks (see the `figure4` binary for the capped node counts).
        let base = SearchEngine::with_scheme(Scheme::Base).node_limit(200_000);
        let mut with_variable = base.clone();
        with_variable.variable_ordering = VariableOrdering::MostConstraining;
        let mut with_value = with_variable.clone();
        with_value.value_ordering = ValueOrdering::LeastConstraining;
        let mut enhanced = with_value.clone();
        enhanced.backjumping = true;

        let configs = [
            ("base", base),
            ("var_ordering", with_variable),
            ("var_val_ordering", with_value),
            ("enhanced", enhanced),
        ];
        for (label, engine) in configs {
            group.bench_with_input(
                BenchmarkId::new(label, benchmark.name()),
                network.network(),
                |b, net| b.iter(|| engine.solve(net)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, breakdown);
criterion_main!(benches);
