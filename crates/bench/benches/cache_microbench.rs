//! Microbenchmarks of the cache-simulator substrate: raw access throughput
//! and the layout sensitivity of a strided sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlo_cachesim::{Cache, CacheConfig, MachineConfig, MemoryHierarchy};

fn cache_access_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_microbench");
    // Sequential (unit-stride) vs. large-stride access streams.
    for &(label, stride) in &[
        ("unit_stride", 4u64),
        ("line_stride", 32),
        ("page_stride", 4096),
    ] {
        group.bench_with_input(
            BenchmarkId::new("l1_access", label),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let mut cache = Cache::new(CacheConfig::new(8 * 1024, 2, 32).expect("valid"));
                    let mut hits = 0u64;
                    for i in 0..10_000u64 {
                        if cache.access(i * stride) == mlo_cachesim::AccessOutcome::Hit {
                            hits += 1;
                        }
                    }
                    hits
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hierarchy_access", label),
            &stride,
            |b, &stride| {
                b.iter(|| {
                    let mut hierarchy = MemoryHierarchy::new(MachineConfig::date05());
                    let mut cycles = 0u64;
                    for i in 0..10_000u64 {
                        cycles += hierarchy.access(i * stride).1;
                    }
                    cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cache_access_throughput);
criterion_main!(benches);
