//! Demonstrates the paper's future-work extension: weighted constraints let
//! the optimizer distinguish between multiple solutions of one network.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin weighted_ext
//! ```

use mlo_benchmarks::Benchmark;
use mlo_core::{Optimizer, OptimizerOptions, OptimizerScheme, TextTable};
use mlo_layout::quality::{assignment_score, ideal_score};

fn main() {
    println!("Weighted-constraint extension (paper Section 6, future work)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Scheme",
        "Satisfiable",
        "Static locality score",
        "Ideal score",
        "Solution time",
    ]);
    for benchmark in [Benchmark::MedIm04, Benchmark::Track] {
        let program = benchmark.program();
        for scheme in [OptimizerScheme::Enhanced, OptimizerScheme::Weighted] {
            let outcome = Optimizer::with_options(OptimizerOptions {
                scheme,
                candidates: benchmark.candidate_options(),
                ..OptimizerOptions::default()
            })
            .optimize(&program);
            table.row(vec![
                benchmark.name().into(),
                scheme.to_string(),
                format!("{:?}", outcome.satisfiable),
                assignment_score(&program, &outcome.assignment).to_string(),
                ideal_score(&program).to_string(),
                format!("{:.2?}", outcome.solution_time),
            ]);
        }
    }
    println!("{table}");
    println!(
        "The weighted scheme maximizes the nest-cost-weighted benefit of the\n\
         selected pairs, so when several solutions exist it picks the one that\n\
         favours the costliest nests."
    );
}
