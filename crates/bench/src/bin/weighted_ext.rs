//! Demonstrates the paper's future-work extension: weighted constraints let
//! the optimizer distinguish between multiple solutions of one network.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin weighted_ext
//! ```

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, OptimizeRequest, TextTable};
use mlo_layout::quality::{assignment_score, ideal_score};

fn main() {
    println!("Weighted-constraint extension (paper Section 6, future work)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Strategy",
        "Satisfiable",
        "Static locality score",
        "Ideal score",
        "Solution time",
    ]);
    let engine = Engine::new();
    for benchmark in [Benchmark::MedIm04, Benchmark::Track] {
        // One session per benchmark: both strategies share the candidate
        // enumeration and the constraint network.
        let session = engine.session();
        let program = benchmark.program();
        for strategy in ["enhanced", "weighted"] {
            let report = session
                .optimize(
                    &program,
                    &OptimizeRequest::strategy(strategy).candidates(benchmark.candidate_options()),
                )
                .expect("built-in strategies with the fallback policy never error");
            table.row(vec![
                benchmark.name().into(),
                report.strategy.clone(),
                format!("{:?}", report.satisfiable),
                assignment_score(&program, &report.assignment).to_string(),
                ideal_score(&program).to_string(),
                format!("{:.2?}", report.solution_time),
            ]);
        }
    }
    println!("{table}");
    println!(
        "The weighted strategy maximizes the nest-cost-weighted benefit of the\n\
         selected pairs, so when several solutions exist it picks the one that\n\
         favours the costliest nests."
    );
}
