//! Regenerates Table 3: simulated execution time of the original code and of
//! the heuristic-, base- and enhanced-scheme layouts.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin table3
//! ```

use mlo_bench::{average_improvement, table3_with_paper};
use mlo_core::experiments::{format_table3, table3};

fn main() {
    let rows = table3();
    println!("Table 3: execution times (simulated cycles) achieved by different versions\n");
    println!("{}", format_table3(&rows));
    println!("{}", table3_with_paper(&rows));
    println!(
        "Average improvement over the original: heuristic {:.1}% | base {:.1}% | enhanced {:.1}%",
        average_improvement(&rows, |r| r.heuristic_cycles),
        average_improvement(&rows, |r| r.base_cycles),
        average_improvement(&rows, |r| r.enhanced_cycles),
    );
    println!("(Paper averages: heuristic 42.49%, base 57.17%, enhanced 57.95%.)");
}
