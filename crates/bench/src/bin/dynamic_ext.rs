//! Demonstrates the paper's second future-work extension: dynamic memory
//! layouts that change between program segments when the re-layout copy pays
//! for itself.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin dynamic_ext
//! ```

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, TextTable};

fn main() {
    println!("Dynamic-layout extension (paper Section 6, future work)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Segments (window=4)",
        "Arrays switching",
        "Static cost",
        "Dynamic cost",
        "Benefit",
    ]);
    let session = Engine::new().session();
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let plan = session.dynamic_plan(&program, 4, &benchmark.candidate_options());
        table.row(vec![
            benchmark.name().into(),
            plan.segmentation.len().to_string(),
            plan.dynamic_arrays().len().to_string(),
            format!("{:.0}", plan.total_static_cost()),
            format!("{:.0}", plan.total_cost()),
            format!(
                "{:.1}%",
                100.0 * plan.total_benefit() / plan.total_static_cost().max(1.0)
            ),
        ]);
    }
    println!("{table}");
    println!(
        "Costs are modelled reference misses plus re-layout copies (2 transfers\n\
         per element).  A benefit of 0% means the best static layout already\n\
         serves every segment; positive benefits identify the phase changes the\n\
         paper's dynamic-layout future work targets."
    );
}
