//! Demonstrates Figure 3: chronological backtracking re-instantiates an
//! irrelevant variable while backjumping skips straight to the culprit.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin figure3
//! ```

use mlo_core::experiments::figure3;

fn main() {
    let demo = figure3();
    println!("Figure 3: backtracking vs. backjumping on the Qk - Qi - Qj scenario\n");
    println!(
        "nodes visited with chronological backtracking: {}",
        demo.backtracking_nodes
    );
    println!(
        "nodes visited with backjumping:                {}",
        demo.backjumping_nodes
    );
    println!(
        "backjumps performed:                           {}",
        demo.backjumps
    );
    println!(
        "\nBackjumping skips re-instantiating Qi because Qi shares no constraint\n\
         with the dead-ended variable Qj (paper, Section 4 and Figure 3)."
    );
}
