//! Regenerates Table 1: benchmark characteristics (paper vs. measured).
//!
//! ```text
//! cargo run -p mlo-bench --release --bin table1
//! ```

use mlo_core::experiments::{format_table1, table1};

fn main() {
    let rows = table1();
    println!("Table 1: benchmark codes (paper vs. this reconstruction)\n");
    println!("{}", format_table1(&rows));
    println!(
        "Domain size = total number of candidate layouts across all arrays;\n\
         data size = total array footprint.  The reconstructed benchmarks are\n\
         synthetic kernels matched to the published characteristics (see DESIGN.md)."
    );
}
