//! Regenerates the committed adaptive-dispatch seed table by replaying
//! the bench corpus.
//!
//! For every benchmark in the suite, each candidate strategy solves the
//! instance once; the winner (solved without fallback, fastest wall
//! clock, canonical rank as the tie-break) becomes that instance's
//! `(features, strategy, outcome)` row.  The resulting table is what
//! [`mlo_service::DispatchTable::seed`] embeds.
//!
//! ```text
//! cargo run --release -p mlo-bench --bin dispatch_seed \
//!     [crates/service/data/seed_dispatch.json]
//! ```

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, OptimizeRequest, StrategyId};
use mlo_service::{BreakerMetadata, DispatchRow, DispatchTable};

/// Strategies the replay races per instance.  Heuristic is excluded (it
/// never proves anything, so "solved" would be vacuous) and the blocking
/// portfolio variants subsume their members.
const CANDIDATES: [StrategyId; 5] = [
    StrategyId::Enhanced,
    StrategyId::ForwardChecking,
    StrategyId::FullPropagation,
    StrategyId::Weighted,
    StrategyId::PortfolioSteal,
];

fn rank(strategy: &StrategyId) -> usize {
    StrategyId::BUILTIN
        .iter()
        .position(|id| id == strategy)
        .unwrap_or(usize::MAX)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crates/service/data/seed_dispatch.json".to_string());

    let engine = Engine::new();
    let session = engine.session();
    let mut table = DispatchTable::new();

    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        let features = session.features(&program, &OptimizeRequest::default().candidates);
        let mut best: Option<DispatchRow> = None;
        for strategy in &CANDIDATES {
            let request = OptimizeRequest::strategy(strategy.clone()).seed(0xC0FFEE);
            let report = match session.optimize(&program, &request) {
                Ok(report) => report,
                Err(error) => {
                    eprintln!("  {benchmark:?}/{strategy}: {error}");
                    continue;
                }
            };
            let row = DispatchRow {
                features: features.as_array(),
                strategy: strategy.clone(),
                solution_ms: report.solution_time.as_secs_f64() * 1e3,
                solved: !report.fell_back(),
            };
            eprintln!(
                "  {benchmark:?}/{strategy}: {:.3} ms, solved={}",
                row.solution_ms, row.solved
            );
            let better = match &best {
                None => true,
                Some(current) => {
                    (!current.solved && row.solved)
                        || (current.solved == row.solved
                            && (row.solution_ms, rank(&row.strategy))
                                < (current.solution_ms, rank(&current.strategy)))
                }
            };
            if better {
                best = Some(row);
            }
        }
        let winner = best.expect("at least one strategy produced a report");
        eprintln!("{benchmark:?} -> {}", winner.strategy);
        table.push(winner);
    }

    // Circuit-breaker metadata rides along with the table: default
    // thresholds and zero recorded failures for every raced strategy.
    // Picks never read it, so the committed rows stay byte-identical.
    let table = table.with_breaker(BreakerMetadata::zeroed(CANDIDATES.iter().cloned()));

    std::fs::write(&out, table.to_json()).expect("seed table written");
    eprintln!("wrote {} rows to {out}", table.len());
}
