//! A scaling study beyond the paper: how the base and enhanced schemes
//! behave as random layout networks grow.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin scaling
//! ```

use mlo_core::TextTable;
use mlo_csp::random::{satisfiable_network, RandomNetworkSpec};
use mlo_csp::{Scheme, SearchEngine};

fn main() {
    println!("Solver scaling on planted-satisfiable random networks\n");
    let mut table = TextTable::new(vec![
        "Variables",
        "Domain",
        "Density",
        "Tightness",
        "Base nodes",
        "Enhanced nodes",
        "FC nodes",
        "Base time",
        "Enhanced time",
    ]);
    for &(variables, domain, density, tightness) in &[
        (10usize, 4usize, 0.4, 0.3),
        (20, 4, 0.4, 0.3),
        (40, 5, 0.3, 0.35),
        (60, 5, 0.2, 0.4),
        (80, 6, 0.15, 0.4),
    ] {
        let spec = RandomNetworkSpec {
            variables,
            domain_size: domain,
            density,
            tightness,
            seed: 2024,
        };
        let (net, _) = satisfiable_network(&spec);
        let base = SearchEngine::with_scheme(Scheme::Base).solve(&net);
        let enhanced = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
        let fc = SearchEngine::with_scheme(Scheme::ForwardChecking).solve(&net);
        table.row(vec![
            variables.to_string(),
            domain.to_string(),
            format!("{density:.2}"),
            format!("{tightness:.2}"),
            base.stats.nodes_visited.to_string(),
            enhanced.stats.nodes_visited.to_string(),
            fc.stats.nodes_visited.to_string(),
            format!("{:.2?}", base.elapsed),
            format!("{:.2?}", enhanced.elapsed),
        ]);
    }
    println!("{table}");
}
