//! Regenerates Figure 4: how much of the enhanced scheme's saving comes from
//! variable selection, value selection and backjumping.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin figure4
//! ```

use mlo_core::experiments::{figure4, format_figure4};

fn main() {
    let rows = figure4();
    println!("Figure 4: breakdown of benefits coming from the enhanced scheme\n");
    println!("{}", format_figure4(&rows));
    println!(
        "Shares are computed from visited search nodes (deterministic proxy for\n\
         the paper's solution-time reductions): enhancements are enabled\n\
         cumulatively in the order variable selection, value selection,\n\
         backjumping, matching the stacking order of the paper's bar chart."
    );
}
