//! Regenerates Table 2: layout solution times for the heuristic, base and
//! enhanced schemes.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin table2
//! ```

use mlo_bench::table2_with_paper;
use mlo_core::experiments::{format_table2, table2};

fn main() {
    let rows = table2();
    println!("Table 2: solution times taken by different versions\n");
    println!("{}", format_table2(&rows));
    println!("{}", table2_with_paper(&rows));
    println!(
        "Published times are seconds on a 500 MHz Sparc (2005); only the ratios\n\
         (base much slower than enhanced, enhanced comparable to the heuristic)\n\
         are expected to transfer to this machine."
    );
}
