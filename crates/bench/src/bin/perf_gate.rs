//! Deterministic perf-gate harness: the parallel portfolio vs. the
//! single-thread baseline, wired into CI.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin perf_gate -- \
//!     [--threads N] [--out BENCH_2.json] [--min-speedup X]
//! ```
//!
//! Three benchmark groups run **at 1 worker and at N workers with the same
//! fixed seeds**:
//!
//! * `table2` — the paper benchmarks through the `portfolio` strategy
//!   (solution cost = layout quality score),
//! * `table3` — the paper benchmarks through the parallel `weighted`
//!   strategy, evaluated on the simulated DATE'05 machine (solution cost =
//!   simulated cycles),
//! * `scaling` — planted-optimum random weighted networks through the
//!   branch-and-bound portfolio (solution cost = canonical solution
//!   weight), the workload where cooperative bound sharing shows its
//!   wall-clock speedup.
//!
//! The harness emits `BENCH_2.json` (wall time, nodes explored, solution
//! cost, speedup per entry) and **exits nonzero when any parallel run's
//! solution cost differs from its single-thread baseline** — that cost
//! parity is the determinism contract of `mlo_csp::solver::portfolio`, and
//! it is what CI gates on.  Wall-clock numbers are reported for trend
//! tracking; `--min-speedup` optionally turns the aggregate `scaling`
//! speedup into a hard failure too.

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, EvaluationOptions, OptimizeRequest, TextTable};
use mlo_csp::random::{planted_weighted_network, RandomNetworkSpec};
use mlo_csp::{ParallelBranchAndBound, SearchLimits, WorkerPool};
use mlo_layout::quality::assignment_score;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Fixed seed for every request (the gate is meaningless without one).
const SEED: u64 = 0x0DA7_E205;

/// One benchmark measured at 1 and N workers.
struct Entry {
    name: String,
    wall_ms_1t: f64,
    wall_ms_nt: f64,
    nodes_1t: u64,
    nodes_nt: u64,
    cost_1t: f64,
    cost_nt: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.wall_ms_nt > 0.0 {
            self.wall_ms_1t / self.wall_ms_nt
        } else {
            1.0
        }
    }

    /// Bit-exact cost parity (all costs here are exact integer sums).
    fn cost_match(&self) -> bool {
        self.cost_1t == self.cost_nt
    }
}

struct Config {
    threads: usize,
    out: String,
    min_speedup: f64,
    only: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        threads: 4,
        out: "BENCH_2.json".to_string(),
        min_speedup: 0.0,
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--threads" => {
                config.threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number")
            }
            "--out" => config.out = value("--out"),
            "--min-speedup" => {
                config.min_speedup = value("--min-speedup")
                    .parse()
                    .expect("--min-speedup takes a number")
            }
            "--only" => config.only = Some(value("--only")),
            other => {
                panic!("unknown argument {other:?} (try --threads/--out/--min-speedup/--only)")
            }
        }
    }
    config.threads = config.threads.max(2);
    config
}

/// Runs one engine request and pulls out (wall ms, nodes, cost).
fn measure_request(
    session: &mlo_core::Session,
    program: &mlo_ir::Program,
    request: &OptimizeRequest,
    cycles_as_cost: bool,
) -> (f64, u64, f64) {
    let report = session
        .optimize(program, request)
        .expect("perf-gate requests use the heuristic fallback policy");
    let nodes = report.search_stats.map(|s| s.nodes_visited).unwrap_or(0);
    let cost = if cycles_as_cost {
        report
            .evaluation
            .as_ref()
            .expect("evaluation requested")
            .total_cycles as f64
    } else {
        assignment_score(program, &report.assignment) as f64
    };
    (report.solution_time.as_secs_f64() * 1e3, nodes, cost)
}

/// table2/table3: the paper benchmarks through a strategy at 1 vs N workers.
fn engine_group(threads: usize, strategy: &str, cycles_as_cost: bool) -> Vec<Entry> {
    let engine = Engine::builder().parallelism(threads).build();
    let session = engine.session();
    Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            let program = benchmark.program();
            // Pre-build the cached network so both runs time pure search.
            session
                .prepared(&program, &benchmark.candidate_options())
                .network(&program);
            let mut request = OptimizeRequest::strategy(strategy)
                .candidates(benchmark.candidate_options())
                .seed(SEED);
            if cycles_as_cost {
                // Sub-sampled traces: the evaluation stays deterministic
                // (and comparable across thread counts) but the whole group
                // runs in seconds instead of minutes on one CI core.
                let trace = mlo_cachesim::TraceOptions {
                    max_trip_per_loop: 24,
                    ..mlo_cachesim::TraceOptions::default()
                };
                request = request.evaluate(EvaluationOptions::date05().trace(trace));
            }
            let (wall_ms_1t, nodes_1t, cost_1t) = measure_request(
                &session,
                &program,
                &request.clone().parallelism(1),
                cycles_as_cost,
            );
            let (wall_ms_nt, nodes_nt, cost_nt) = measure_request(
                &session,
                &program,
                &request.clone().parallelism(threads),
                cycles_as_cost,
            );
            Entry {
                name: benchmark.name().to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t,
                nodes_nt,
                cost_1t,
                cost_nt,
            }
        })
        .collect()
}

/// scaling: planted weighted networks through the branch-and-bound
/// portfolio.  The single-thread baseline is the plain exhaustive search;
/// the parallel run shares one bound across greedy probes, shards and
/// reshuffles.  Sizes are tuned so the whole group stays under ~half a
/// minute single-threaded on one CI core.
fn scaling_group(threads: usize, pool: &Arc<WorkerPool>) -> Vec<Entry> {
    let specs = [
        (
            "scale-18",
            RandomNetworkSpec {
                variables: 18,
                domain_size: 4,
                density: 0.5,
                tightness: 0.2,
                seed: 1_2024,
            },
        ),
        (
            "scale-20",
            RandomNetworkSpec {
                variables: 20,
                domain_size: 4,
                density: 0.5,
                tightness: 0.15,
                seed: 2_2024,
            },
        ),
        (
            "scale-24",
            RandomNetworkSpec {
                variables: 24,
                domain_size: 4,
                density: 0.45,
                tightness: 0.15,
                seed: 3_2024,
            },
        ),
        (
            "scale-26",
            RandomNetworkSpec {
                variables: 26,
                domain_size: 3,
                density: 0.45,
                tightness: 0.12,
                seed: 4_2024,
            },
        ),
    ];
    specs
        .into_iter()
        .map(|(name, spec)| {
            let (weighted, _) = planted_weighted_network(&spec, 60.0, 8);
            let limits = SearchLimits::none();

            let start = Instant::now();
            let baseline = ParallelBranchAndBound::default()
                .parallelism(1)
                .optimize_detailed(&weighted, &limits);
            let wall_ms_1t = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let parallel = ParallelBranchAndBound::default()
                .with_pool(Arc::clone(pool))
                .parallelism(threads)
                .optimize_detailed(&weighted, &limits);
            let wall_ms_nt = start.elapsed().as_secs_f64() * 1e3;

            assert!(
                baseline.optimal && parallel.optimal,
                "scaling runs must complete"
            );
            Entry {
                name: name.to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t: baseline.result.stats.nodes_visited,
                nodes_nt: parallel.result.stats.nodes_visited,
                cost_1t: baseline.canonical_weight.expect("satisfiable"),
                cost_nt: parallel.canonical_weight.expect("satisfiable"),
            }
        })
        .collect()
}

fn json_entries(buffer: &mut String, entries: &[Entry]) {
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            buffer,
            "      {{\"name\": \"{}\", \"wall_ms_1t\": {:.3}, \"wall_ms_nt\": {:.3}, \
             \"nodes_1t\": {}, \"nodes_nt\": {}, \"cost_1t\": {}, \"cost_nt\": {}, \
             \"speedup\": {:.3}, \"cost_match\": {}}}{comma}",
            e.name,
            e.wall_ms_1t,
            e.wall_ms_nt,
            e.nodes_1t,
            e.nodes_nt,
            e.cost_1t,
            e.cost_nt,
            e.speedup(),
            e.cost_match(),
        )
        .expect("writing to a String");
    }
}

fn print_group(title: &str, entries: &[Entry]) {
    println!("\n{title}");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Wall 1t",
        "Wall Nt",
        "Nodes 1t",
        "Nodes Nt",
        "Cost 1t",
        "Cost Nt",
        "Speedup",
        "Cost parity",
    ]);
    for e in entries {
        table.row(vec![
            e.name.clone(),
            format!("{:.2}ms", e.wall_ms_1t),
            format!("{:.2}ms", e.wall_ms_nt),
            e.nodes_1t.to_string(),
            e.nodes_nt.to_string(),
            format!("{}", e.cost_1t),
            format!("{}", e.cost_nt),
            format!("{:.2}x", e.speedup()),
            if e.cost_match() { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    println!("{table}");
}

fn main() -> ExitCode {
    let config = parse_args();
    println!(
        "perf_gate: portfolio vs single-thread baseline at {} workers (seed {SEED:#x})",
        config.threads
    );

    let pool = Arc::new(WorkerPool::new(config.threads));
    let wanted = |name: &str| config.only.as_deref().is_none_or(|only| only == name);
    let table2 = if wanted("table2") {
        engine_group(config.threads, "portfolio", false)
    } else {
        Vec::new()
    };
    let table3 = if wanted("table3") {
        engine_group(config.threads, "weighted", true)
    } else {
        Vec::new()
    };
    let scaling = if wanted("scaling") {
        scaling_group(config.threads, &pool)
    } else {
        Vec::new()
    };

    print_group(
        "table2 — portfolio strategy (cost = layout quality score)",
        &table2,
    );
    print_group(
        "table3 — weighted strategy (cost = simulated cycles)",
        &table3,
    );
    print_group(
        "scaling — branch-and-bound portfolio (cost = solution weight)",
        &scaling,
    );

    let scaling_1t: f64 = scaling.iter().map(|e| e.wall_ms_1t).sum();
    let scaling_nt: f64 = scaling.iter().map(|e| e.wall_ms_nt).sum();
    let scaling_speedup = if scaling_nt > 0.0 {
        scaling_1t / scaling_nt
    } else {
        1.0
    };
    let cost_parity = table2
        .iter()
        .chain(&table3)
        .chain(&scaling)
        .all(Entry::cost_match);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"BENCH_2\",").unwrap();
    writeln!(json, "  \"harness\": \"perf_gate\",").unwrap();
    writeln!(json, "  \"threads\": {},", config.threads).unwrap();
    writeln!(json, "  \"seed\": {SEED},").unwrap();
    writeln!(json, "  \"groups\": {{").unwrap();
    for (i, (name, entries)) in [
        ("table2", &table2),
        ("table3", &table3),
        ("scaling", &scaling),
    ]
    .into_iter()
    .enumerate()
    {
        writeln!(json, "    \"{name}\": [").unwrap();
        json_entries(&mut json, entries);
        writeln!(json, "    ]{}", if i < 2 { "," } else { "" }).unwrap();
    }
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"scaling_speedup\": {scaling_speedup:.3},").unwrap();
    writeln!(json, "  \"cost_parity\": {cost_parity}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&config.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", config.out));
    println!(
        "\nwrote {} (aggregate scaling speedup {scaling_speedup:.2}x at {} workers)",
        config.out, config.threads
    );

    if !cost_parity {
        eprintln!(
            "perf_gate FAILED: a parallel run's solution cost diverged from its \
             single-thread baseline (see the MISMATCH rows above)"
        );
        return ExitCode::FAILURE;
    }
    if config.min_speedup > 0.0 && scaling_speedup < config.min_speedup {
        eprintln!(
            "perf_gate FAILED: aggregate scaling speedup {scaling_speedup:.2}x is below \
             the required {:.2}x",
            config.min_speedup
        );
        return ExitCode::FAILURE;
    }
    println!("perf_gate passed: cost parity holds across thread counts");
    ExitCode::SUCCESS
}
