//! Deterministic perf-gate harness: the parallel schedulers vs. the
//! single-thread baseline, wired into CI.
//!
//! ```text
//! cargo run -p mlo-bench --release --bin perf_gate -- \
//!     [--threads N] [--out BENCH_10.json] [--baseline BENCH_9.json] \
//!     [--min-speedup X] [--wall-margin 0.25] [--no-wall-gate]
//! ```
//!
//! Four benchmark groups run **at 1 worker and at N workers with the same
//! fixed seeds**:
//!
//! * `table2` — the paper benchmarks through the `portfolio` strategy
//!   (solution cost = layout quality score),
//! * `table3` — the paper benchmarks through the parallel `weighted`
//!   strategy, evaluated on the simulated DATE'05 machine (solution cost =
//!   simulated cycles),
//! * `unsat` — pigeonhole UNSAT proofs through the work-stealing
//!   scheduler (solution "cost" = nodes visited, which the scheduler's
//!   exact node-disjoint partition keeps *identical* at every worker
//!   count — parallelism-honest work, not a redundant race),
//! * `enumerate` — full solution enumerations of loosely constrained
//!   random networks through the same scheduler (cost = exact solution
//!   count, also thread-count-independent).
//!
//! `unsat` + `enumerate` are the headline scaling workloads: their
//! aggregate wall-clock speedup at N workers is emitted as
//! `scaling_speedup`, and their steal telemetry is audited (**zero**
//! steals single-threaded, **nonzero** steals at N workers — the gate
//! fails if the scheduler stops sharding).
//!
//! A fifth group, `large`, is the zero-copy shared-data-model scenario: a
//! large planted weighted network is cloned and sharded the way the
//! portfolio does per solve, under a counting global allocator.  With
//! mask-based restriction a shard shares **every** constraint and weight
//! table (and the compiled bitset kernel) with its parent; the audit fails
//! the gate if a single table stops being shared.
//!
//! A sixth, `propagation`, is the bitset-kernel microbench: steady-state
//! AC-3 revision throughput on the compiled kernel (revisions/second —
//! each revision is one lane-wide AND support sweep of a constraint arc),
//! batched so per-batch wall-clock variance is reported alongside the
//! aggregate, plus the kernel's **bytes-touched-per-revision** audit: the
//! measured bytes per revision must stay within the ceiling the padded
//! lane layout implies (a cache-blocking regression fails the gate even
//! when wall clock hides it), and the allocation cost of a mask-based
//! domain shard split, which must copy **zero pair entries** (the gate
//! fails otherwise).
//!
//! A seventh, `weighted`, is the sharded branch-and-bound scenario:
//! *noise-dominant* planted instances (noise above the planted bonus, so
//! the search is real and the bound has to work) through the
//! work-stealing scheduler's branch and bound, reporting wall clock, node
//! and **bound-prune** counts at 1 and N workers; integer weights keep
//! the optima bit-comparable.  It rides with the incremental-recompilation
//! audit — a `set_weight` must recompile exactly one weight matrix (and
//! zero bit-matrices), a hard-constraint merge must recompile exactly one
//! bit-matrix, untouched compiled matrices must be reused by pointer, and
//! a weighted shard split must copy **zero dense weight entries**.  Any
//! audit violation fails the gate.
//!
//! An eighth, `service`, exercises the `mlo-service` front-end: a
//! fixed-seed burst of duplicate-heavy requests through the queued
//! submission path (reporting throughput and the coalescing hit rate), the
//! same burst through a tightly bounded intake (reporting the admission
//! shed count), and a served-vs-direct determinism audit — every report
//! served through the queue must be identical to the direct
//! `Session::optimize` call at the same worker count (the gate fails
//! otherwise).
//!
//! A ninth, `faults`, exercises the fault-injection resilience layer: the
//! disarmed failpoint cost on the hot path, a single injected
//! `engine.solve` panic that must recover through the service's
//! retry/fallback ladder as a degraded report (`ladder_ok`), and an
//! unbounded panic storm in which every waiter must still complete with a
//! typed error (`no_hung_waiters`) — both booleans are hard gates.
//!
//! The weighted group additionally carries a **node-budget gate**: with
//! the weighted bound-consistency propagator (`SoftAc3`) on every search
//! path, each noise instance's node count must stay at or below 25% of
//! its pre-propagation `BENCH_9` baseline.  The per-instance budget and
//! the run's `bound_deletions` counters are emitted next to the node
//! counts, and `weighted_nodes_ok` is a hard gate — a propagation
//! regression that re-inflates the tree fails CI even when wall clock
//! hides it.
//!
//! The harness emits `BENCH_10.json` (wall time, nodes explored, solution
//! cost, speedup per entry) and **exits nonzero when any parallel run's
//! solution cost differs from its single-thread baseline** — that cost
//! parity is the determinism contract of `mlo_csp::solver::portfolio` and
//! `mlo_csp::solver::steal`, and
//! it is what CI gates on.  `--baseline` reads a previous `BENCH_<pr>.json`
//! and embeds the old aggregate scaling speedup — plus the old
//! single-thread table2+table3 wall time — next to the new numbers.  The
//! deferred **wall-clock regression gate** is now on: when the baseline
//! artifact carries a single-thread wall time, this run's table2+table3
//! single-thread wall clock must stay within `--wall-margin` (default
//! ±25%, the characterized runner noise) of it, or the gate fails
//! (`--no-wall-gate` reverts to trend-tracking only); `--min-speedup`
//! optionally turns the aggregate `scaling_speedup` into a hard failure
//! too — enforced only when the runner actually has `--threads` cores
//! (the emitted `cores` field records what was available; on a smaller
//! machine an exhaustive N-worker run cannot beat 1 worker by physics,
//! and the speedup line measures scheduling overhead instead).

use mlo_benchmarks::Benchmark;
use mlo_core::{Engine, EvaluationOptions, OptimizeRequest, SearchBudget, TextTable};
use mlo_csp::random::{
    pigeonhole_network, planted_weighted_network, satisfiable_network, RandomNetworkSpec,
};
use mlo_csp::solver::{ac3_kernel, Ac3Outcome, SearchStats};
use mlo_csp::{
    bit_constraint_compiles, weight_constraint_compiles, SearchLimits, StealScheduler, WorkerPool,
};
use mlo_layout::quality::assignment_score;
use mlo_service::{MloService, ServiceConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fixed seed for every request (the gate is meaningless without one).
const SEED: u64 = 0x0DA7_E205;

/// Bytes currently live, total bytes ever allocated and the high-water
/// mark, maintained by [`CountingAllocator`].
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A system-allocator wrapper counting every allocation, so the `large`
/// group can report real bytes-per-clone and peak-allocation numbers
/// instead of estimates.
struct CountingAllocator;

/// Records a successful allocation of `size` bytes.
fn record_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: delegates every operation (including realloc/alloc_zeroed, so the
// in-place-growth and calloc fast paths survive) to the system allocator
// unchanged; the atomics only observe sizes.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Only growth counts toward the total; the live count follows
            // the size delta in either direction.
            let old_size = layout.size();
            if new_size >= old_size {
                let live = LIVE_BYTES.fetch_add(new_size - old_size, Ordering::Relaxed)
                    + (new_size - old_size);
                TOTAL_BYTES.fetch_add(new_size - old_size, Ordering::Relaxed);
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE_BYTES.fetch_sub(old_size - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and reports `(result, bytes allocated, peak live-byte growth)`.
fn measure_alloc<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    let total_before = TOTAL_BYTES.load(Ordering::Relaxed);
    let live_before = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live_before, Ordering::Relaxed);
    let out = f();
    let allocated = TOTAL_BYTES.load(Ordering::Relaxed) - total_before;
    let peak_growth = PEAK_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(live_before);
    (out, allocated, peak_growth)
}

/// One benchmark measured at 1 and N workers.
struct Entry {
    name: String,
    wall_ms_1t: f64,
    wall_ms_nt: f64,
    nodes_1t: u64,
    nodes_nt: u64,
    cost_1t: f64,
    cost_nt: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.wall_ms_nt > 0.0 {
            self.wall_ms_1t / self.wall_ms_nt
        } else {
            1.0
        }
    }

    /// Bit-exact cost parity (all costs here are exact integer sums).
    fn cost_match(&self) -> bool {
        self.cost_1t == self.cost_nt
    }
}

struct Config {
    threads: usize,
    out: String,
    baseline: Option<String>,
    min_speedup: f64,
    /// Allowed relative wall-clock regression vs the baseline artifact's
    /// single-thread table2+table3 time (0.25 = +25%).
    wall_margin: f64,
    /// Disables the wall-clock regression gate (trend tracking only).
    no_wall_gate: bool,
    only: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        threads: 4,
        out: "BENCH_10.json".to_string(),
        baseline: Some("BENCH_9.json".to_string()),
        min_speedup: 0.0,
        wall_margin: 0.25,
        no_wall_gate: false,
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--threads" => {
                config.threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number")
            }
            "--out" => config.out = value("--out"),
            "--baseline" => config.baseline = Some(value("--baseline")),
            "--no-baseline" => config.baseline = None,
            "--min-speedup" => {
                config.min_speedup = value("--min-speedup")
                    .parse()
                    .expect("--min-speedup takes a number")
            }
            "--wall-margin" => {
                config.wall_margin = value("--wall-margin")
                    .parse()
                    .expect("--wall-margin takes a number")
            }
            "--no-wall-gate" => config.no_wall_gate = true,
            "--only" => config.only = Some(value("--only")),
            other => {
                panic!(
                    "unknown argument {other:?} \
                     (try --threads/--out/--baseline/--no-baseline/--min-speedup/\
                     --wall-margin/--no-wall-gate/--only)"
                )
            }
        }
    }
    config.threads = config.threads.max(2);
    config
}

/// Pulls one top-level numeric field out of a previous `BENCH_<pr>.json`.
/// The *last* occurrence wins: `BENCH_3`-style files repeat the key inside
/// their nested `"baseline"` object, which the emitter always writes
/// before the top-level field.
fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let position = json.rfind(&marker)? + marker.len();
    let rest = json[position..].trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Sums every `"wall_ms_1t"` value inside one `"<group>": [...]` section of
/// a previous `BENCH_<pr>.json` — the single-thread wall-clock aggregate
/// the kernel refactor is measured against.
fn extract_group_wall_1t_sum(json: &str, group: &str) -> Option<f64> {
    let start = json.find(&format!("\"{group}\": ["))?;
    let section = &json[start..];
    let section = &section[..section.find(']')?];
    let marker = "\"wall_ms_1t\":";
    let mut sum = 0.0;
    let mut found = false;
    let mut rest = section;
    while let Some(position) = rest.find(marker) {
        let tail = rest[position + marker.len()..].trim_start();
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        if let Ok(value) = tail[..end].trim().parse::<f64>() {
            sum += value;
            found = true;
        }
        rest = &tail[end..];
    }
    found.then_some(sum)
}

/// Runs one engine request and pulls out (wall ms, nodes, cost).
fn measure_request(
    session: &mlo_core::Session,
    program: &mlo_ir::Program,
    request: &OptimizeRequest,
    cycles_as_cost: bool,
) -> (f64, u64, f64) {
    let report = session
        .optimize(program, request)
        .expect("perf-gate requests use the heuristic fallback policy");
    let nodes = report.search_stats.map(|s| s.nodes_visited).unwrap_or(0);
    let cost = if cycles_as_cost {
        report
            .evaluation
            .as_ref()
            .expect("evaluation requested")
            .total_cycles as f64
    } else {
        assignment_score(program, &report.assignment) as f64
    };
    (report.solution_time.as_secs_f64() * 1e3, nodes, cost)
}

/// table2/table3: the paper benchmarks through a strategy at 1 vs N workers.
fn engine_group(threads: usize, strategy: &str, cycles_as_cost: bool) -> Vec<Entry> {
    let engine = Engine::builder().parallelism(threads).build();
    let session = engine.session();
    Benchmark::all()
        .into_iter()
        .map(|benchmark| {
            let program = benchmark.program();
            // Pre-build the cached network so both runs time pure search.
            session
                .prepared(&program, &benchmark.candidate_options())
                .network(&program);
            let mut request = OptimizeRequest::strategy(strategy)
                .candidates(benchmark.candidate_options())
                .seed(SEED);
            if cycles_as_cost {
                // Sub-sampled traces: the evaluation stays deterministic
                // (and comparable across thread counts) but the whole group
                // runs in seconds instead of minutes on one CI core.
                let trace = mlo_cachesim::TraceOptions {
                    max_trip_per_loop: 24,
                    ..mlo_cachesim::TraceOptions::default()
                };
                request = request.evaluate(EvaluationOptions::date05().trace(trace));
            }
            let (wall_ms_1t, nodes_1t, cost_1t) = measure_request(
                &session,
                &program,
                &request.clone().with_budget(SearchBudget::new().workers(1)),
                cycles_as_cost,
            );
            let (wall_ms_nt, nodes_nt, cost_nt) = measure_request(
                &session,
                &program,
                &request
                    .clone()
                    .with_budget(SearchBudget::new().workers(threads)),
                cycles_as_cost,
            );
            Entry {
                name: benchmark.name().to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t,
                nodes_nt,
                cost_1t,
                cost_nt,
            }
        })
        .collect()
}

/// Steal/split counters summed across a group's single-thread and
/// N-worker passes — the telemetry the gate audits (a single-thread run
/// must never steal; an N-worker run on proof-sized trees must).
#[derive(Default)]
struct StealTotals {
    steals_1t: u64,
    steals_nt: u64,
    splits_1t: u64,
    splits_nt: u64,
}

impl StealTotals {
    fn absorb_1t(&mut self, telemetry: &mlo_csp::StealReport) {
        self.steals_1t += telemetry.steals;
        self.splits_1t += telemetry.splits;
    }

    fn absorb_nt(&mut self, telemetry: &mlo_csp::StealReport) {
        self.steals_nt += telemetry.steals;
        self.splits_nt += telemetry.splits;
    }
}

/// unsat: pigeonhole UNSAT proofs through the work-stealing scheduler.
///
/// `PHP(n+1, n)` refutation trees have no lucky exits — every node must be
/// visited — so this is the workload a redundant portfolio race cannot
/// speed up at all (every racer walks the whole tree) and dynamic tree
/// sharding speeds up almost linearly.  The scheduler's per-node work is a
/// pure function of the path, so the frames partition the tree *exactly*:
/// the entry's cost is the node count, and cost parity doubles as the
/// partition audit (1-worker and N-worker proofs must visit the identical
/// node total).
fn unsat_group(threads: usize, pool: &Arc<WorkerPool>, totals: &mut StealTotals) -> Vec<Entry> {
    [("php-9", 9usize), ("php-10", 10)]
        .into_iter()
        .map(|(name, holes)| {
            let network = pigeonhole_network(holes);
            let limits = SearchLimits::none();

            let start = Instant::now();
            let baseline = StealScheduler::new().solve_detailed(&network, &limits, None);
            let wall_ms_1t = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let parallel = StealScheduler::new()
                .with_pool(Arc::clone(pool))
                .parallelism(threads)
                .solve_detailed(&network, &limits, None);
            let wall_ms_nt = start.elapsed().as_secs_f64() * 1e3;

            assert!(
                baseline.result.proves_unsatisfiable() && parallel.result.proves_unsatisfiable(),
                "pigeonhole proofs must complete"
            );
            totals.absorb_1t(&baseline.telemetry);
            totals.absorb_nt(&parallel.telemetry);
            Entry {
                name: name.to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t: baseline.result.stats.nodes_visited,
                nodes_nt: parallel.result.stats.nodes_visited,
                cost_1t: baseline.result.stats.nodes_visited as f64,
                cost_nt: parallel.result.stats.nodes_visited as f64,
            }
        })
        .collect()
}

/// enumerate: exact full-solution counts of loosely constrained random
/// networks through the work-stealing scheduler.
///
/// Like UNSAT proofs, exhaustive enumeration has no early exit, so the
/// speedup measures honest tree sharding; the exact count is the entry's
/// cost and must be identical at every worker count.
fn enumerate_group(threads: usize, pool: &Arc<WorkerPool>, totals: &mut StealTotals) -> Vec<Entry> {
    let specs = [
        (
            "enum-24",
            RandomNetworkSpec {
                variables: 24,
                domain_size: 4,
                density: 0.28,
                tightness: 0.22,
                seed: 15_2026,
            },
        ),
        (
            "enum-26",
            RandomNetworkSpec {
                variables: 26,
                domain_size: 4,
                density: 0.28,
                tightness: 0.24,
                seed: 16_2026,
            },
        ),
    ];
    specs
        .into_iter()
        .map(|(name, spec)| {
            // Planted-satisfiable: the enumeration has at least one
            // solution, and the count is the instance's exact model count.
            let (network, _) = satisfiable_network(&spec);
            let limits = SearchLimits::none();

            let start = Instant::now();
            let baseline = StealScheduler::new().count_detailed(&network, &limits, None);
            let wall_ms_1t = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let parallel = StealScheduler::new()
                .with_pool(Arc::clone(pool))
                .parallelism(threads)
                .count_detailed(&network, &limits, None);
            let wall_ms_nt = start.elapsed().as_secs_f64() * 1e3;

            assert!(
                baseline.is_exact() && parallel.is_exact(),
                "enumeration runs must complete"
            );
            totals.absorb_1t(&baseline.telemetry);
            totals.absorb_nt(&parallel.telemetry);
            Entry {
                name: name.to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t: baseline.stats.nodes_visited,
                nodes_nt: parallel.stats.nodes_visited,
                cost_1t: baseline.solutions as f64,
                cost_nt: parallel.solutions as f64,
            }
        })
        .collect()
}

/// Metrics of the `large` zero-copy scenario: what cloning and sharding a
/// large network costs under the Arc-backed shared data model.
struct LargeInstance {
    variables: usize,
    constraints: usize,
    allowed_pairs: usize,
    build_ms: f64,
    clones: usize,
    clone_total_ms: f64,
    clone_bytes_per_clone: usize,
    shards_built: usize,
    shard_build_ms: f64,
    shard_alloc_bytes: usize,
    shard_peak_alloc_bytes: usize,
    shared_constraint_tables: usize,
    rebuilt_constraint_tables: usize,
    rebuilt_pair_entries: usize,
    total_pair_entries: usize,
    /// Every shard shares **every** table with the parent (mask-based
    /// restriction rebuilds nothing) — the structural invariant the gate
    /// enforces.
    sharing_ok: bool,
}

/// The clone-elimination evidence: a large planted weighted network is
/// cloned the way every portfolio member/batch job receives its handle, and
/// sharded the way the weighted portfolio partitions domains — both under
/// the counting allocator.  Before the shared-storage refactor each clone
/// and shard deep-copied every pair table; since the mask-based restriction
/// a clone allocates only the handle spine and a shard allocates only its
/// domain-mask overlay — zero constraint or weight tables.
fn large_instance_group(threads: usize) -> LargeInstance {
    let spec = RandomNetworkSpec {
        variables: 100,
        domain_size: 6,
        density: 0.4,
        tightness: 0.25,
        seed: 5_2025,
    };
    let start = Instant::now();
    let (weighted, _) = planted_weighted_network(&spec, 80.0, 8);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    let network = weighted.network();
    let constraints = network.constraint_count();
    let total_pair_entries: usize = network.constraints().iter().map(|c| c.pair_count()).sum();

    // 1. Handle clones: what every portfolio member / batch job pays.  The
    //    result buffer is allocated outside the measurement so the counter
    //    sees only what the clones themselves allocate.
    const CLONES: usize = 1_000;
    let mut handles = Vec::with_capacity(CLONES);
    let start = Instant::now();
    let (_, clone_bytes, _) = measure_alloc(|| {
        for _ in 0..CLONES {
            handles.push(weighted.clone());
        }
    });
    let clone_total_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(handles);

    // 2. Domain shards: what the weighted portfolio builds per solve.
    let widest = network
        .variables()
        .max_by_key(|&v| network.domain(v).len())
        .expect("non-empty network");
    let width = network.domain(widest).len();
    let shard_count = threads.clamp(2, width);
    let indices: Vec<usize> = (0..width).collect();
    let start = Instant::now();
    let (shards, shard_alloc_bytes, shard_peak_alloc_bytes) = measure_alloc(|| {
        let mut shards = Vec::new();
        for block in 0..shard_count {
            let lo = block * width / shard_count;
            let hi = ((block + 1) * width / shard_count).min(width);
            if lo < hi {
                shards.push(
                    weighted
                        .restricted(widest, &indices[lo..hi])
                        .expect("shard indices are in range"),
                );
            }
        }
        shards
    });
    let shard_build_ms = start.elapsed().as_secs_f64() * 1e3;

    // 3. Structural-sharing audit: a mask-based shard must share *every*
    //    constraint and weight table (and the compiled kernel) with the
    //    parent — the restriction lives entirely in the domain mask.
    let mut shared_constraint_tables = 0usize;
    let mut rebuilt_constraint_tables = 0usize;
    let mut rebuilt_pair_entries = 0usize;
    let mut sharing_ok = true;
    for shard in &shards {
        for ci in 0..constraints {
            let shared = Arc::ptr_eq(
                network.constraint_handle(ci),
                shard.network().constraint_handle(ci),
            ) && weighted.shares_weight_table(shard, ci);
            if shared {
                shared_constraint_tables += 1;
            } else {
                rebuilt_constraint_tables += 1;
                rebuilt_pair_entries += shard.network().constraint(ci).pair_count();
                sharing_ok = false;
            }
        }
        if !shard.network().shares_storage(network)
            || !Arc::ptr_eq(network.kernel(), shard.network().kernel())
        {
            sharing_ok = false;
        }
    }

    LargeInstance {
        variables: spec.variables,
        constraints,
        allowed_pairs: total_pair_entries,
        build_ms,
        clones: CLONES,
        clone_total_ms,
        clone_bytes_per_clone: clone_bytes / CLONES,
        shards_built: shards.len(),
        shard_build_ms,
        shard_alloc_bytes,
        shard_peak_alloc_bytes,
        shared_constraint_tables,
        rebuilt_constraint_tables,
        rebuilt_pair_entries,
        total_pair_entries: total_pair_entries * shards.len(),
        sharing_ok,
    }
}

/// Metrics of the `propagation` bitset-kernel microbench.
struct Propagation {
    variables: usize,
    constraints: usize,
    allowed_pairs: usize,
    /// Cold kernel-compilation time (bit-matrices + support counts).
    kernel_build_ms: f64,
    /// Full AC-3 passes measured at the arc-consistency fixpoint.
    ac3_runs: usize,
    /// Arc revisions performed (exactly `2 × constraints` per run at the
    /// fixpoint — nothing is removed, so nothing is re-queued).
    revisions: u64,
    ac3_total_ms: f64,
    revisions_per_sec: f64,
    checks_per_sec: f64,
    /// Fixpoint passes per timed batch (the runs are batched so the gate
    /// can report per-batch variance, not just the aggregate).
    batch_runs: usize,
    /// Wall-clock milliseconds of each batch.
    batch_ms: Vec<f64>,
    /// Relative standard deviation of the per-batch walls (std / mean).
    batch_rel_std: f64,
    /// Bytes the kernel touched across all timed revisions (live spans +
    /// probed rows, as accounted by `SearchStats::bytes_touched`).
    bytes_touched: u64,
    /// `bytes_touched / revisions`.
    bytes_per_revision: f64,
    /// The ceiling the padded lane layout implies for one revision of this
    /// network (worst directed arc, every live row probed).
    bytes_budget_per_revision: u64,
    /// Whether the measured bytes per revision stayed within the budget —
    /// the cache-blocking regression gate.
    bytes_ok: bool,
    /// Mask-based shard splits measured under the counting allocator.
    shard_splits: usize,
    shard_alloc_bytes: usize,
    shard_bytes_per_split: usize,
    /// Pair entries copied across all splits — the headline number, which
    /// must be exactly zero for mask-based views.
    shard_pair_entries_allocated: usize,
    /// Every split shares all tables + kernel and carries a mask.
    masks_ok: bool,
}

/// The propagation-throughput scenario: steady-state AC-3 revisions per
/// second on the compiled kernel, plus the allocation bill of mask-based
/// domain shard splits (which must copy zero pair entries).
fn propagation_group(threads: usize) -> Propagation {
    let spec = RandomNetworkSpec {
        variables: 100,
        domain_size: 6,
        density: 0.4,
        tightness: 0.25,
        seed: 6_2025,
    };
    let (weighted, _) = planted_weighted_network(&spec, 80.0, 8);
    let network = weighted.network();
    let constraints = network.constraint_count();
    let allowed_pairs: usize = network.constraints().iter().map(|c| c.pair_count()).sum();

    // Cold kernel compile (the once-per-storage cost every solve amortizes).
    let start = Instant::now();
    let kernel = Arc::clone(network.kernel());
    let kernel_build_ms = start.elapsed().as_secs_f64() * 1e3;

    // Drive AC-3 to its fixpoint once; at the fixpoint each subsequent run
    // performs exactly 2 revisions per constraint (no removals, no
    // re-queues), so revisions/sec is an exact steady-state measure.
    let mut warm = kernel.full_domains();
    let mut warm_stats = SearchStats::default();
    let outcome = ac3_kernel(&kernel, &mut warm, &mut warm_stats);
    assert!(
        matches!(outcome, Ac3Outcome::Consistent),
        "the propagation instance must be satisfiable at the fixpoint"
    );
    const RUNS: usize = 400;
    const BATCHES: usize = 8;
    const BATCH_RUNS: usize = RUNS / BATCHES;
    let mut total_checks = 0u64;
    let mut bytes_touched = 0u64;
    let mut batch_ms = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..BATCH_RUNS {
            let mut live = warm.clone();
            let mut stats = SearchStats::default();
            let outcome = ac3_kernel(&kernel, &mut live, &mut stats);
            assert!(matches!(outcome, Ac3Outcome::Consistent));
            total_checks += stats.consistency_checks;
            bytes_touched += stats.bytes_touched;
        }
        batch_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let ac3_total_ms: f64 = batch_ms.iter().sum();
    let batch_mean = ac3_total_ms / BATCHES as f64;
    let batch_var = batch_ms
        .iter()
        .map(|&ms| (ms - batch_mean) * (ms - batch_mean))
        .sum::<f64>()
        / BATCHES as f64;
    let batch_rel_std = batch_var.sqrt() / batch_mean.max(1e-9);
    let revisions = (2 * constraints * RUNS) as u64;
    let seconds = (ac3_total_ms / 1e3).max(1e-9);

    // The padded lane layout bounds what one revision may touch: the
    // worst directed arc (x revised against y) reads both live spans and,
    // on the block-major path, at most one lane-padded row per live value
    // of x.  Staying under this ceiling is the cache-blocking contract —
    // a layout regression (unpadded strides, scattered rows, re-scanned
    // partners) blows it even when wall clock hides the miss cost.
    let padded_words = |size: usize| size.div_ceil(64).next_multiple_of(4).max(4) as u64;
    let bytes_budget_per_revision = (0..constraints)
        .map(|ci| {
            let c = kernel.constraint(ci);
            let (first, second) = (
                kernel.domain_size(c.first()) as u64,
                kernel.domain_size(c.second()) as u64,
            );
            let (pf, ps) = (padded_words(first as usize), padded_words(second as usize));
            // Both arc directions: revise first-against-second and back.
            8 * (pf + ps + first * ps).max(ps + pf + second * pf)
        })
        .max()
        .unwrap_or(0);
    let bytes_per_revision = bytes_touched as f64 / revisions.max(1) as f64;
    let bytes_ok = bytes_touched > 0 && bytes_per_revision <= bytes_budget_per_revision as f64;

    // Mask-based shard splits under the counting allocator: the weighted
    // portfolio's per-solve partitioning step.
    let widest = network
        .variables()
        .max_by_key(|&v| network.domain(v).len())
        .expect("non-empty network");
    let width = network.domain(widest).len();
    let shard_count = threads.clamp(2, width);
    let indices: Vec<usize> = (0..width).collect();
    let (shards, shard_alloc_bytes, _) = measure_alloc(|| {
        let mut shards = Vec::new();
        for block in 0..shard_count {
            let lo = block * width / shard_count;
            let hi = ((block + 1) * width / shard_count).min(width);
            if lo < hi {
                shards.push(
                    weighted
                        .restricted(widest, &indices[lo..hi])
                        .expect("shard indices are in range"),
                );
            }
        }
        shards
    });
    let mut shard_pair_entries_allocated = 0usize;
    let mut masks_ok = true;
    for shard in &shards {
        for ci in 0..constraints {
            let shared = Arc::ptr_eq(
                network.constraint_handle(ci),
                shard.network().constraint_handle(ci),
            ) && weighted.shares_weight_table(shard, ci);
            if !shared {
                shard_pair_entries_allocated += shard.network().constraint(ci).pair_count();
                masks_ok = false;
            }
        }
        masks_ok &= shard.network().mask().is_some();
        masks_ok &= Arc::ptr_eq(network.kernel(), shard.network().kernel());
    }

    Propagation {
        variables: spec.variables,
        constraints,
        allowed_pairs,
        kernel_build_ms,
        ac3_runs: RUNS,
        revisions,
        ac3_total_ms,
        revisions_per_sec: revisions as f64 / seconds,
        checks_per_sec: total_checks as f64 / seconds,
        batch_runs: BATCH_RUNS,
        batch_ms,
        batch_rel_std,
        bytes_touched,
        bytes_per_revision,
        bytes_budget_per_revision,
        bytes_ok,
        shard_splits: shards.len(),
        shard_alloc_bytes,
        shard_bytes_per_split: shard_alloc_bytes / shards.len().max(1),
        shard_pair_entries_allocated,
        masks_ok,
    }
}

/// One weighted branch-and-bound instance measured at 1 and N workers,
/// with bound-prune counts (the weighted kernel's effectiveness metric).
struct WeightedEntry {
    name: String,
    wall_ms_1t: f64,
    wall_ms_nt: f64,
    nodes_1t: u64,
    nodes_nt: u64,
    prunings_1t: u64,
    prunings_nt: u64,
    bound_deletions_1t: u64,
    bound_deletions_nt: u64,
    /// Hard ceiling on the instance's node counts: 25% of the node count
    /// the same seed produced in `BENCH_9`, before the weighted
    /// bound-consistency propagator existed.
    node_budget: u64,
    cost_1t: f64,
    cost_nt: f64,
}

impl WeightedEntry {
    fn speedup(&self) -> f64 {
        if self.wall_ms_nt > 0.0 {
            self.wall_ms_1t / self.wall_ms_nt
        } else {
            1.0
        }
    }

    fn cost_match(&self) -> bool {
        self.cost_1t == self.cost_nt
    }

    /// The node-budget gate: both the single-thread and the N-worker run
    /// must stay within the propagation budget.
    fn nodes_ok(&self) -> bool {
        self.nodes_1t <= self.node_budget && self.nodes_nt <= self.node_budget
    }
}

/// The incremental-recompilation audit of the weighted kernel: exact
/// per-constraint compile counts around a `set_weight` patch and a
/// hard-constraint merge (measured single-threaded via the process-wide
/// compile counters), pointer-reuse checks for every untouched compiled
/// matrix, and the dense-entry bill of a weighted shard split (which must
/// be zero).
struct WeightedAudit {
    /// Weight matrices recompiled by one `set_weight` (must be exactly 1).
    weight_recompiles_on_set_weight: u64,
    /// Bit matrices recompiled by that same `set_weight` (must be 0).
    bit_recompiles_on_set_weight: u64,
    /// Bit matrices recompiled by one hard-constraint merge (must be 1).
    bit_recompiles_on_merge: u64,
    /// Every untouched compiled matrix (bit and weight) reused by pointer.
    untouched_matrices_reused: bool,
    /// Dense weight entries copied by a weighted domain-shard split (0).
    shard_dense_entries_copied: usize,
    /// The shard shares the whole weight spine + compiled kernels.
    shard_shares_weight_kernel: bool,
    ok: bool,
}

/// weighted: *noise-dominant* planted branch-and-bound instances (random
/// noise above the planted bonus, so the weight-ordered value loop cannot
/// shortcut the search and the bound has to work) through the
/// work-stealing scheduler's sharded branch and bound at fixed seeds.
/// Integer weights keep every weight sum exact, so cost parity is
/// bit-exact, and the strict-< incumbent contract makes the reported
/// optimum thread-count-independent.
///
/// Historical note: through `BENCH_5` this group ran *planted-dominant*
/// instances through the cooperative portfolio, which the dense weight
/// kernel's value ordering had already collapsed to microsecond node
/// counts; the noise-dominant rebuild restores a workload with real
/// search in it.
fn weighted_group(
    threads: usize,
    pool: &Arc<WorkerPool>,
    totals: &mut StealTotals,
) -> Vec<WeightedEntry> {
    // Budgets are 25% of each instance's BENCH_9 single-thread node count
    // (391_608 / 1_324_312 / 36_965_312) — the hard ceiling the weighted
    // bound-consistency propagator must hold the tree under.
    let specs = [
        (
            "noise-18",
            97_902u64,
            RandomNetworkSpec {
                variables: 18,
                domain_size: 4,
                density: 0.5,
                tightness: 0.15,
                seed: 17_2026,
            },
        ),
        (
            "noise-20",
            331_078,
            RandomNetworkSpec {
                variables: 20,
                domain_size: 4,
                density: 0.45,
                tightness: 0.15,
                seed: 18_2026,
            },
        ),
        (
            "noise-22",
            9_241_328,
            RandomNetworkSpec {
                variables: 22,
                domain_size: 4,
                density: 0.45,
                tightness: 0.12,
                seed: 19_2026,
            },
        ),
    ];
    specs
        .into_iter()
        .map(|(name, node_budget, spec)| {
            // Bonus far below the noise ceiling: the planted assignment is
            // *not* the optimum and the bound must close the whole tree.
            let (weighted, _) = planted_weighted_network(&spec, 4.0, 12);
            let limits = SearchLimits::none();

            let start = Instant::now();
            let baseline = StealScheduler::new().optimize_detailed(&weighted, &limits, None);
            let wall_ms_1t = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let parallel = StealScheduler::new()
                .with_pool(Arc::clone(pool))
                .parallelism(threads)
                .optimize_detailed(&weighted, &limits, None);
            let wall_ms_nt = start.elapsed().as_secs_f64() * 1e3;

            assert!(
                baseline.optimal && parallel.optimal,
                "weighted runs must complete"
            );
            totals.absorb_1t(&baseline.telemetry);
            totals.absorb_nt(&parallel.telemetry);
            WeightedEntry {
                name: name.to_string(),
                wall_ms_1t,
                wall_ms_nt,
                nodes_1t: baseline.result.stats.nodes_visited,
                nodes_nt: parallel.result.stats.nodes_visited,
                prunings_1t: baseline.result.stats.prunings,
                prunings_nt: parallel.result.stats.prunings,
                bound_deletions_1t: baseline.result.stats.bound_deletions,
                bound_deletions_nt: parallel.result.stats.bound_deletions,
                node_budget,
                cost_1t: baseline.canonical_weight.expect("satisfiable"),
                cost_nt: parallel.canonical_weight.expect("satisfiable"),
            }
        })
        .collect()
}

/// Runs the incremental-recompilation audit (see [`WeightedAudit`]).  Must
/// run while no other thread is compiling kernels: the compile counters are
/// process-wide.
/// Results of the `service` group: queued throughput, coalescing,
/// admission shedding and the served-vs-direct determinism audit.
struct ServiceGroup {
    /// Requests pushed through the unbounded throughput burst.
    requests: u64,
    /// Wall clock of the whole burst (submit + drain).
    wall_ms: f64,
    /// Completed requests per second over the burst.
    throughput_rps: f64,
    /// Submissions the burst service accepted (coalesced hits included).
    submitted: u64,
    /// Burst submissions that coalesced onto an in-flight solve.
    coalesced: u64,
    /// `coalesced / submitted` over the burst.
    coalesce_hit_rate: f64,
    /// Submissions shed by the tightly bounded intake run.
    shed: u64,
    /// Whether every served report matched its direct session call.
    determinism_ok: bool,
}

/// One fixed-seed duplicate-heavy burst: every paper benchmark × 8 seeds,
/// each `(program, request)` pair submitted twice back-to-back.
fn service_burst(service: &MloService) -> (u64, f64) {
    let programs: Vec<_> = Benchmark::all().iter().map(|b| b.program()).collect();
    let mut handles = Vec::new();
    let started = Instant::now();
    for seed in 0..8u64 {
        for program in &programs {
            let request = OptimizeRequest::strategy("enhanced").seed(SEED ^ seed);
            for _ in 0..2 {
                // A bounded intake may shed the submission; that's counted
                // by the service stats rather than treated as a failure.
                if let Ok(handle) = service.submit(program, &request) {
                    handles.push(handle);
                }
            }
        }
    }
    let accepted = handles.len() as u64;
    for handle in &handles {
        assert!(
            handle.wait().is_ok(),
            "a burst request failed to solve (service group)"
        );
    }
    (accepted, started.elapsed().as_secs_f64() * 1e3)
}

fn service_group(threads: usize) -> ServiceGroup {
    // Determinism audit: the queued path must reproduce the direct
    // session's reports bit-for-bit at this worker count.
    let engine = Engine::builder().parallelism(threads).build();
    let session = engine.session();
    let service = MloService::new(engine.session(), ServiceConfig::new().queue_limit(0));
    let mut determinism_ok = true;
    for benchmark in Benchmark::all() {
        let program = benchmark.program();
        for strategy in ["enhanced", "weighted", "portfolio-steal"] {
            let request = OptimizeRequest::strategy(strategy).seed(SEED);
            let direct = session
                .optimize(&program, &request)
                .expect("direct solve succeeds");
            let served = service
                .submit(&program, &request)
                .expect("unbounded admission")
                .wait();
            let served = match served.as_ref() {
                Ok(report) => report,
                Err(error) => panic!("served solve failed: {error}"),
            };
            determinism_ok &= direct.assignment == served.assignment
                && direct.search_stats == served.search_stats
                && direct.satisfiable == served.satisfiable
                && direct.fallback == served.fallback;
        }
    }

    // Queued throughput with duplicate bursts through an unbounded intake:
    // duplicates of an in-flight request coalesce instead of re-solving.
    let burst_engine = Engine::builder().parallelism(threads).build();
    let burst = MloService::new(burst_engine.session(), ServiceConfig::new().queue_limit(0));
    let (requests, wall_ms) = service_burst(&burst);
    let stats = burst.stats();
    let throughput_rps = if wall_ms > 0.0 {
        requests as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    let coalesce_hit_rate = if stats.submitted > 0 {
        stats.coalesced as f64 / stats.submitted as f64
    } else {
        0.0
    };

    // The same burst against a tightly bounded intake: admission control
    // must shed instead of queueing without bound.
    let bounded_engine = Engine::builder().parallelism(threads).build();
    let bounded = MloService::new(
        bounded_engine.session(),
        ServiceConfig::new().queue_limit(4),
    );
    let _ = service_burst(&bounded);
    let shed = bounded.stats().shed;

    ServiceGroup {
        requests,
        wall_ms,
        throughput_rps,
        submitted: stats.submitted,
        coalesced: stats.coalesced,
        coalesce_hit_rate,
        shed,
        determinism_ok,
    }
}

fn print_service(service: &Option<ServiceGroup>) {
    let Some(s) = service else { return };
    println!("\nservice — queued front-end over the session pool");
    println!(
        "  burst: {} accepted requests in {:.2}ms -> {:.0} req/s",
        s.requests, s.wall_ms, s.throughput_rps
    );
    println!(
        "  coalescing: {} of {} submissions hit an in-flight solve ({:.0}%)",
        s.coalesced,
        s.submitted,
        s.coalesce_hit_rate * 100.0
    );
    println!(
        "  admission: {} submissions shed under a 4-deep intake bound",
        s.shed
    );
    println!(
        "  served reports identical to direct session calls: {}",
        if s.determinism_ok {
            "yes"
        } else {
            "NO (VIOLATED)"
        }
    );
}

/// Results of the `faults` group: the resilience layer exercised under
/// scoped fault-injection plans (see `mlo_csp::fault`).
struct FaultsGroup {
    /// Disarmed `fail_point!` cost on the hot path, in nanoseconds per
    /// hit — the zero-cost-when-disabled contract, trend-tracked.
    disarmed_ns_per_hit: f64,
    /// Wall clock of the single-fault ladder recovery below.
    ladder_recovery_ms: f64,
    /// The strategy that served the recovered request.
    ladder_strategy: String,
    /// One injected `engine.solve` panic: the ladder must recover with a
    /// degraded report from a healthy fallback rung.
    ladder_ok: bool,
    /// Requests submitted into the unbounded-panic storm.
    storm_requests: u64,
    /// Strategy panics the resilience layer contained during the storm.
    storm_panics: u64,
    /// Every storm waiter completed with a typed outcome — no `wait()`
    /// ever hung on a panicked solve.
    no_hung_waiters: bool,
}

/// The resilience scenario: deterministic fault plans through the queued
/// service.  One bounded `engine.solve` panic must recover through the
/// retry/fallback ladder; an unbounded panic plan (every rung of every
/// request dies) must still complete every waiter with a typed error.
fn faults_group(threads: usize) -> FaultsGroup {
    use mlo_csp::fault::{self, FaultPlan, FaultTrigger};

    // Disarmed failpoint overhead: the macro must stay a single relaxed
    // atomic load when no plan is armed (the propagation group's wall and
    // bytes gates already prove the hot loop didn't regress; this number
    // tracks the raw per-hit cost).
    let _clean = fault::scoped(FaultPlan::new());
    drop(_clean);
    const HITS: u32 = 1_000_000;
    let start = Instant::now();
    for _ in 0..HITS {
        std::hint::black_box(fault::hit(std::hint::black_box("perf.probe")));
    }
    let disarmed_ns_per_hit = start.elapsed().as_secs_f64() * 1e9 / f64::from(HITS);

    // Ladder recovery: exactly one injected panic, then a healthy rung.
    let program = Benchmark::MxM.program();
    let (ladder_ok, ladder_strategy, ladder_recovery_ms) = {
        let _plan =
            fault::scoped(FaultPlan::new().with("engine.solve", FaultTrigger::panic().times(1)));
        let engine = Engine::builder().parallelism(threads).build();
        let service = MloService::new(engine.session(), ServiceConfig::new());
        let start = Instant::now();
        let outcome = service
            .submit(&program, &OptimizeRequest::strategy("enhanced").seed(SEED))
            .expect("unbounded admission")
            .wait_timeout(std::time::Duration::from_secs(60));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        match outcome.as_deref() {
            Some(Ok(report)) => (
                report.degraded && service.stats().panicked == 1,
                report.strategy.clone(),
                wall_ms,
            ),
            _ => (false, String::new(), wall_ms),
        }
    };

    // Panic storm: every rung of every request panics; each waiter must
    // still observe a typed error within the timeout.
    const STORM: u64 = 8;
    let (storm_panics, no_hung_waiters) = {
        let _plan = fault::scoped(FaultPlan::new().with("engine.solve", FaultTrigger::panic()));
        let engine = Engine::builder().parallelism(threads).build();
        let service = MloService::new(engine.session(), ServiceConfig::new());
        let handles: Vec<_> = (0..STORM)
            .map(|seed| {
                service
                    .submit(
                        &program,
                        &OptimizeRequest::strategy("enhanced").seed(SEED ^ seed),
                    )
                    .expect("unbounded admission")
            })
            .collect();
        let all_typed = handles.iter().all(|handle| {
            matches!(
                handle
                    .wait_timeout(std::time::Duration::from_secs(60))
                    .as_deref(),
                Some(Err(_))
            )
        });
        (service.stats().panicked, all_typed)
    };

    FaultsGroup {
        disarmed_ns_per_hit,
        ladder_recovery_ms,
        ladder_strategy,
        ladder_ok,
        storm_requests: STORM,
        storm_panics,
        no_hung_waiters,
    }
}

fn print_faults(faults: &Option<FaultsGroup>) {
    let Some(f) = faults else { return };
    println!("\nfaults — deterministic fault injection through the resilience layer");
    println!(
        "  disarmed failpoint: {:.1}ns/hit on the hot path",
        f.disarmed_ns_per_hit
    );
    println!(
        "  ladder: one injected engine.solve panic recovered by `{}` in {:.2}ms -> {}",
        f.ladder_strategy,
        f.ladder_recovery_ms,
        if f.ladder_ok { "ok" } else { "VIOLATED" }
    );
    println!(
        "  storm: {} requests under an unbounded panic plan, {} contained panics, \
         hung waiters: {}",
        f.storm_requests,
        f.storm_panics,
        if f.no_hung_waiters {
            "none (ok)"
        } else {
            "SOME (VIOLATED)"
        }
    );
}

fn weighted_audit() -> WeightedAudit {
    let spec = RandomNetworkSpec {
        variables: 40,
        domain_size: 5,
        density: 0.4,
        tightness: 0.25,
        seed: 14_2025,
    };
    let (weighted, _) = planted_weighted_network(&spec, 60.0, 8);
    let network = weighted.network().clone();
    let constraints = network.constraint_count();
    assert!(constraints > 1, "the audit needs untouched constraints");
    // Force both compiled kernels before measuring.
    let bit_kernel = Arc::clone(network.kernel());
    let weight_kernel = Arc::clone(weighted.weight_kernel());
    let mut untouched_matrices_reused = true;

    // 1. A set_weight patch: exactly one weight matrix recompiled, zero
    //    bit matrices, every other compiled weight matrix reused.
    let c0 = network.constraint(0);
    let pair = c0
        .allowed_pairs()
        .iter()
        .copied()
        .min()
        .expect("constraints of planted networks allow pairs");
    let (va, vb) = (
        *network.domain(c0.first()).value(pair.0),
        *network.domain(c0.second()).value(pair.1),
    );
    let mut patched = weighted.clone();
    let bits_before = bit_constraint_compiles();
    let weights_before = weight_constraint_compiles();
    patched
        .set_weight(c0.first(), c0.second(), &va, &vb, 999.0)
        .expect("pair comes from the network itself");
    let weight_recompiles_on_set_weight = weight_constraint_compiles() - weights_before;
    let bit_recompiles_on_set_weight = bit_constraint_compiles() - bits_before;
    let patched_kernel = patched.weight_kernel();
    untouched_matrices_reused &= !Arc::ptr_eq(
        weight_kernel.constraint_handle(0),
        patched_kernel.constraint_handle(0),
    );
    for ci in 1..constraints {
        untouched_matrices_reused &= Arc::ptr_eq(
            weight_kernel.constraint_handle(ci),
            patched_kernel.constraint_handle(ci),
        );
    }

    // 2. A hard-constraint merge: exactly one bit matrix recompiled, every
    //    other compiled bit matrix reused.
    let mut fork = network.clone();
    let bits_before = bit_constraint_compiles();
    let mut extra = HashSet::new();
    extra.insert(pair);
    fork.add_constraint_by_index(c0.first(), c0.second(), extra)
        .expect("merging into an existing constraint");
    let bit_recompiles_on_merge = bit_constraint_compiles() - bits_before;
    let fork_kernel = fork.kernel();
    untouched_matrices_reused &= !Arc::ptr_eq(
        bit_kernel.constraint_handle(0),
        fork_kernel.constraint_handle(0),
    );
    for ci in 1..constraints {
        untouched_matrices_reused &= Arc::ptr_eq(
            bit_kernel.constraint_handle(ci),
            fork_kernel.constraint_handle(ci),
        );
    }

    // 3. A weighted shard split: the whole weight spine (dense tables and
    //    compiled kernel) is shared by pointer — zero dense entries copied.
    let widest = network
        .variables()
        .max_by_key(|&v| network.domain(v).len())
        .expect("non-empty network");
    let width = network.domain(widest).len();
    let keep: Vec<usize> = (0..width / 2).collect();
    let shard = weighted
        .restricted(widest, &keep)
        .expect("shard indices are in range");
    // A spine-sharing shard holds the parent's tables by pointer: zero
    // dense entries of its own.  If sharing ever broke, the shard's whole
    // table volume is what a split would have copied.
    let shard_dense_entries_copied = if weighted.shares_weight_spine(&shard) {
        0
    } else {
        shard.dense_entries()
    };
    let shard_shares_weight_kernel = weighted.shares_weight_spine(&shard)
        && Arc::ptr_eq(&weight_kernel, shard.weight_kernel())
        && Arc::ptr_eq(&bit_kernel, shard.network().kernel());

    let ok = weight_recompiles_on_set_weight == 1
        && bit_recompiles_on_set_weight == 0
        && bit_recompiles_on_merge == 1
        && untouched_matrices_reused
        && shard_dense_entries_copied == 0
        && shard_shares_weight_kernel;
    WeightedAudit {
        weight_recompiles_on_set_weight,
        bit_recompiles_on_set_weight,
        bit_recompiles_on_merge,
        untouched_matrices_reused,
        shard_dense_entries_copied,
        shard_shares_weight_kernel,
        ok,
    }
}

fn print_weighted(entries: &[WeightedEntry], audit: &Option<WeightedAudit>) {
    if !entries.is_empty() {
        println!("\nweighted — dense weight-kernel branch and bound (cost = solution weight)");
        let mut table = TextTable::new(vec![
            "Instance",
            "Wall 1t",
            "Wall Nt",
            "Nodes 1t",
            "Nodes Nt",
            "Node budget",
            "Deletions 1t",
            "Deletions Nt",
            "Speedup",
            "Cost parity",
        ]);
        for e in entries {
            table.row(vec![
                e.name.clone(),
                format!("{:.2}ms", e.wall_ms_1t),
                format!("{:.2}ms", e.wall_ms_nt),
                e.nodes_1t.to_string(),
                e.nodes_nt.to_string(),
                format!(
                    "{} ({})",
                    e.node_budget,
                    if e.nodes_ok() { "ok" } else { "OVER" }
                ),
                e.bound_deletions_1t.to_string(),
                e.bound_deletions_nt.to_string(),
                format!("{:.2}x", e.speedup()),
                if e.cost_match() { "ok" } else { "MISMATCH" }.to_string(),
            ]);
        }
        println!("{table}");
    }
    if let Some(a) = audit {
        println!("  incremental-recompile audit:");
        println!(
            "    set_weight: {} weight matrix recompiled (want 1), {} bit matrices (want 0)",
            a.weight_recompiles_on_set_weight, a.bit_recompiles_on_set_weight
        );
        println!(
            "    constraint merge: {} bit matrix recompiled (want 1)",
            a.bit_recompiles_on_merge
        );
        println!(
            "    untouched matrices reused: {}; shard dense entries copied: {}; \
             shard shares kernels: {}",
            a.untouched_matrices_reused, a.shard_dense_entries_copied, a.shard_shares_weight_kernel
        );
        println!("    audit: {}", if a.ok { "ok" } else { "VIOLATED" });
    }
}

fn print_propagation(propagation: &Option<Propagation>) {
    let Some(p) = propagation else { return };
    println!("\npropagation — bitset kernel microbench");
    println!(
        "  instance: {} vars, {} constraints, {} allowed pairs (kernel compiled in {:.2}ms)",
        p.variables, p.constraints, p.allowed_pairs, p.kernel_build_ms
    );
    println!(
        "  ac3: {} fixpoint passes, {} revisions in {:.1}ms -> {:.2}M revisions/s \
         ({:.1}M checks/s)",
        p.ac3_runs,
        p.revisions,
        p.ac3_total_ms,
        p.revisions_per_sec / 1e6,
        p.checks_per_sec / 1e6,
    );
    println!(
        "  batches: {} x {} passes, walls {:?} ms, rel std {:.1}%",
        p.batch_ms.len(),
        p.batch_runs,
        p.batch_ms
            .iter()
            .map(|ms| (ms * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        p.batch_rel_std * 100.0,
    );
    println!(
        "  bytes touched: {} total, {:.1}/revision (lane-layout budget {}) -> {}",
        p.bytes_touched,
        p.bytes_per_revision,
        p.bytes_budget_per_revision,
        if p.bytes_ok { "ok" } else { "VIOLATED" }
    );
    println!(
        "  mask shards: {} splits, {} bytes total ({} bytes/split), {} pair entries copied",
        p.shard_splits,
        p.shard_alloc_bytes,
        p.shard_bytes_per_split,
        p.shard_pair_entries_allocated
    );
    println!(
        "  mask audit: {}",
        if p.masks_ok { "ok" } else { "VIOLATED" }
    );
}

fn print_large(large: &Option<LargeInstance>) {
    let Some(l) = large else { return };
    println!("\nlarge — zero-copy shared data model (counting allocator)");
    println!(
        "  instance: {} vars, {} constraints, {} allowed pairs (built in {:.1}ms)",
        l.variables, l.constraints, l.allowed_pairs, l.build_ms
    );
    println!(
        "  clones: {} handles in {:.2}ms, {} bytes/clone (a deep copy would move \
         >= {} pair entries each)",
        l.clones, l.clone_total_ms, l.clone_bytes_per_clone, l.allowed_pairs
    );
    println!(
        "  shards: {} views in {:.2}ms, {} bytes allocated (peak +{}), \
         {} tables shared / {} rebuilt ({} of {} pair entries copied)",
        l.shards_built,
        l.shard_build_ms,
        l.shard_alloc_bytes,
        l.shard_peak_alloc_bytes,
        l.shared_constraint_tables,
        l.rebuilt_constraint_tables,
        l.rebuilt_pair_entries,
        l.total_pair_entries,
    );
    println!(
        "  sharing audit: {}",
        if l.sharing_ok { "ok" } else { "VIOLATED" }
    );
}

fn json_entries(buffer: &mut String, entries: &[Entry]) {
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            buffer,
            "      {{\"name\": \"{}\", \"wall_ms_1t\": {:.3}, \"wall_ms_nt\": {:.3}, \
             \"nodes_1t\": {}, \"nodes_nt\": {}, \"cost_1t\": {}, \"cost_nt\": {}, \
             \"speedup\": {:.3}, \"cost_match\": {}}}{comma}",
            e.name,
            e.wall_ms_1t,
            e.wall_ms_nt,
            e.nodes_1t,
            e.nodes_nt,
            e.cost_1t,
            e.cost_nt,
            e.speedup(),
            e.cost_match(),
        )
        .expect("writing to a String");
    }
}

fn print_group(title: &str, entries: &[Entry]) {
    println!("\n{title}");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Wall 1t",
        "Wall Nt",
        "Nodes 1t",
        "Nodes Nt",
        "Cost 1t",
        "Cost Nt",
        "Speedup",
        "Cost parity",
    ]);
    for e in entries {
        table.row(vec![
            e.name.clone(),
            format!("{:.2}ms", e.wall_ms_1t),
            format!("{:.2}ms", e.wall_ms_nt),
            e.nodes_1t.to_string(),
            e.nodes_nt.to_string(),
            format!("{}", e.cost_1t),
            format!("{}", e.cost_nt),
            format!("{:.2}x", e.speedup()),
            if e.cost_match() { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    println!("{table}");
}

fn main() -> ExitCode {
    let config = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "perf_gate: portfolio vs single-thread baseline at {} workers \
         ({cores} core(s) available, seed {SEED:#x})",
        config.threads
    );
    if cores < config.threads {
        println!(
            "note: only {cores} core(s) for {} workers — N-worker wall times measure \
             scheduling overhead, not parallel speedup; the --min-speedup gate is \
             suspended on this runner",
            config.threads
        );
    }

    let pool = Arc::new(WorkerPool::new(config.threads));
    let wanted = |name: &str| config.only.as_deref().is_none_or(|only| only == name);
    let mut steal_totals = StealTotals::default();
    let table2 = if wanted("table2") {
        engine_group(config.threads, "portfolio", false)
    } else {
        Vec::new()
    };
    let table3 = if wanted("table3") {
        engine_group(config.threads, "weighted", true)
    } else {
        Vec::new()
    };
    let unsat = if wanted("unsat") {
        unsat_group(config.threads, &pool, &mut steal_totals)
    } else {
        Vec::new()
    };
    let enumerate = if wanted("enumerate") {
        enumerate_group(config.threads, &pool, &mut steal_totals)
    } else {
        Vec::new()
    };
    let large = wanted("large").then(|| large_instance_group(config.threads));
    let propagation = wanted("propagation").then(|| propagation_group(config.threads));
    let weighted = if wanted("weighted") {
        weighted_group(config.threads, &pool, &mut steal_totals)
    } else {
        Vec::new()
    };
    // The audit reads process-wide compile counters, so it runs after every
    // concurrent group has finished its solves.
    let audit = wanted("weighted").then(weighted_audit);
    let service = wanted("service").then(|| service_group(config.threads));
    // Runs last: its scoped plans serialize on the fault registry's test
    // lock and must not overlap the determinism-sensitive groups.
    let faults = wanted("faults").then(|| faults_group(config.threads));

    print_group(
        "table2 — portfolio strategy (cost = layout quality score)",
        &table2,
    );
    print_group(
        "table3 — weighted strategy (cost = simulated cycles)",
        &table3,
    );
    print_group(
        "unsat — work-stealing UNSAT proofs (cost = nodes visited, partition-exact)",
        &unsat,
    );
    print_group(
        "enumerate — work-stealing full enumeration (cost = exact solution count)",
        &enumerate,
    );
    print_large(&large);
    print_propagation(&propagation);
    print_weighted(&weighted, &audit);
    print_service(&service);
    print_faults(&faults);

    // The headline scaling metric: aggregate wall-clock speedup of the
    // work-stealing groups (UNSAT proofs + enumerations), the workloads a
    // redundant race cannot accelerate.
    let scaling_1t: f64 = unsat.iter().chain(&enumerate).map(|e| e.wall_ms_1t).sum();
    let scaling_nt: f64 = unsat.iter().chain(&enumerate).map(|e| e.wall_ms_nt).sum();
    let scaling_speedup = if scaling_nt > 0.0 {
        scaling_1t / scaling_nt
    } else {
        1.0
    };
    // Telemetry audit: sharding must be off single-threaded and actually
    // engaged at N workers on the proof/enumeration trees.
    let steal_group_ran = !unsat.is_empty() || !enumerate.is_empty();
    let steals_ok = steal_totals.steals_1t == 0
        && steal_totals.splits_1t == 0
        && (!steal_group_ran || steal_totals.steals_nt > 0);
    if steal_group_ran || !weighted.is_empty() {
        println!(
            "\nsteal telemetry: 1t {} steals / {} splits, {}t {} steals / {} splits ({})",
            steal_totals.steals_1t,
            steal_totals.splits_1t,
            config.threads,
            steal_totals.steals_nt,
            steal_totals.splits_nt,
            if steals_ok { "ok" } else { "VIOLATED" }
        );
    }
    let cost_parity = table2
        .iter()
        .chain(&table3)
        .chain(&unsat)
        .chain(&enumerate)
        .all(Entry::cost_match)
        && weighted.iter().all(WeightedEntry::cost_match);
    let sharing_ok = large.as_ref().is_none_or(|l| l.sharing_ok);
    let masks_ok = propagation
        .as_ref()
        .is_none_or(|p| p.masks_ok && p.shard_pair_entries_allocated == 0);
    let bytes_ok = propagation.as_ref().is_none_or(|p| p.bytes_ok);
    let weighted_ok = audit.as_ref().is_none_or(|a| a.ok);
    let weighted_nodes_ok = weighted.iter().all(WeightedEntry::nodes_ok);

    // The kernel refactor's headline metric: single-thread table2+table3
    // wall clock, compared against the previous PR's artifact.
    let single_thread_ms: f64 = table2
        .iter()
        .chain(&table3)
        .map(|e| e.wall_ms_1t)
        .sum::<f64>();

    // Perf trajectory: read the previous PR's artifact (when present) and
    // record its aggregate speedup — and its single-thread wall clock —
    // next to this run's.
    let baseline_stats = config.baseline.as_ref().and_then(|path| {
        let previous = std::fs::read_to_string(path).ok()?;
        let speedup = extract_json_number(&previous, "scaling_speedup")?;
        println!(
            "trajectory: {path} scaling speedup {speedup:.2}x -> this run {scaling_speedup:.2}x"
        );
        let single_thread = match (
            extract_group_wall_1t_sum(&previous, "table2"),
            extract_group_wall_1t_sum(&previous, "table3"),
        ) {
            (Some(t2), Some(t3)) => {
                let total = t2 + t3;
                if single_thread_ms > 0.0 {
                    println!(
                        "trajectory: {path} table2+table3 single-thread {total:.2}ms -> \
                         this run {single_thread_ms:.2}ms ({:.2}x)",
                        total / single_thread_ms
                    );
                }
                Some(total)
            }
            _ => None,
        };
        Some((path.clone(), speedup, single_thread))
    });

    // Propagation trajectory: this run's steady-state revision throughput
    // against the baseline artifact's (the SIMD/cache-blocking headline).
    let propagation_improvement = match (&propagation, &config.baseline) {
        (Some(p), Some(path)) => std::fs::read_to_string(path)
            .ok()
            .and_then(|previous| extract_json_number(&previous, "revisions_per_sec"))
            .filter(|&previous_rps| previous_rps > 0.0)
            .map(|previous_rps| {
                let ratio = p.revisions_per_sec / previous_rps;
                println!(
                    "trajectory: {path} propagation {:.2}M revisions/s -> this run \
                     {:.2}M revisions/s ({ratio:.2}x)",
                    previous_rps / 1e6,
                    p.revisions_per_sec / 1e6
                );
                ratio
            }),
        _ => None,
    };

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"BENCH_10\",").unwrap();
    writeln!(json, "  \"harness\": \"perf_gate\",").unwrap();
    writeln!(json, "  \"threads\": {},", config.threads).unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"seed\": {SEED},").unwrap();
    writeln!(json, "  \"groups\": {{").unwrap();
    for (name, entries) in [
        ("table2", &table2),
        ("table3", &table3),
        ("unsat", &unsat),
        ("enumerate", &enumerate),
    ] {
        writeln!(json, "    \"{name}\": [").unwrap();
        json_entries(&mut json, entries);
        writeln!(json, "    ],").unwrap();
    }
    writeln!(json, "    \"weighted\": [").unwrap();
    for (i, e) in weighted.iter().enumerate() {
        let comma = if i + 1 < weighted.len() { "," } else { "" };
        writeln!(
            json,
            "      {{\"name\": \"{}\", \"wall_ms_1t\": {:.3}, \"wall_ms_nt\": {:.3}, \
             \"nodes_1t\": {}, \"nodes_nt\": {}, \"prunings_1t\": {}, \"prunings_nt\": {}, \
             \"bound_deletions_1t\": {}, \"bound_deletions_nt\": {}, \"node_budget\": {}, \
             \"nodes_ok\": {}, \"cost_1t\": {}, \"cost_nt\": {}, \"speedup\": {:.3}, \
             \"cost_match\": {}}}{comma}",
            e.name,
            e.wall_ms_1t,
            e.wall_ms_nt,
            e.nodes_1t,
            e.nodes_nt,
            e.prunings_1t,
            e.prunings_nt,
            e.bound_deletions_1t,
            e.bound_deletions_nt,
            e.node_budget,
            e.nodes_ok(),
            e.cost_1t,
            e.cost_nt,
            e.speedup(),
            e.cost_match(),
        )
        .unwrap();
    }
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }},").unwrap();
    if steal_group_ran || !weighted.is_empty() {
        writeln!(json, "  \"steal_telemetry\": {{").unwrap();
        writeln!(json, "    \"steals_1t\": {},", steal_totals.steals_1t).unwrap();
        writeln!(json, "    \"splits_1t\": {},", steal_totals.splits_1t).unwrap();
        writeln!(json, "    \"steals_nt\": {},", steal_totals.steals_nt).unwrap();
        writeln!(json, "    \"splits_nt\": {},", steal_totals.splits_nt).unwrap();
        writeln!(json, "    \"ok\": {steals_ok}").unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some(a) = &audit {
        writeln!(json, "  \"weighted_audit\": {{").unwrap();
        writeln!(
            json,
            "    \"weight_recompiles_on_set_weight\": {},",
            a.weight_recompiles_on_set_weight
        )
        .unwrap();
        writeln!(
            json,
            "    \"bit_recompiles_on_set_weight\": {},",
            a.bit_recompiles_on_set_weight
        )
        .unwrap();
        writeln!(
            json,
            "    \"bit_recompiles_on_merge\": {},",
            a.bit_recompiles_on_merge
        )
        .unwrap();
        writeln!(
            json,
            "    \"untouched_matrices_reused\": {},",
            a.untouched_matrices_reused
        )
        .unwrap();
        writeln!(
            json,
            "    \"shard_dense_entries_copied\": {},",
            a.shard_dense_entries_copied
        )
        .unwrap();
        writeln!(
            json,
            "    \"shard_shares_weight_kernel\": {},",
            a.shard_shares_weight_kernel
        )
        .unwrap();
        writeln!(json, "    \"ok\": {}", a.ok).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some(l) = &large {
        writeln!(json, "  \"large\": {{").unwrap();
        writeln!(json, "    \"variables\": {},", l.variables).unwrap();
        writeln!(json, "    \"constraints\": {},", l.constraints).unwrap();
        writeln!(json, "    \"allowed_pairs\": {},", l.allowed_pairs).unwrap();
        writeln!(json, "    \"build_ms\": {:.3},", l.build_ms).unwrap();
        writeln!(json, "    \"clones\": {},", l.clones).unwrap();
        writeln!(json, "    \"clone_total_ms\": {:.3},", l.clone_total_ms).unwrap();
        writeln!(
            json,
            "    \"clone_bytes_per_clone\": {},",
            l.clone_bytes_per_clone
        )
        .unwrap();
        writeln!(json, "    \"shards_built\": {},", l.shards_built).unwrap();
        writeln!(json, "    \"shard_build_ms\": {:.3},", l.shard_build_ms).unwrap();
        writeln!(json, "    \"shard_alloc_bytes\": {},", l.shard_alloc_bytes).unwrap();
        writeln!(
            json,
            "    \"shard_peak_alloc_bytes\": {},",
            l.shard_peak_alloc_bytes
        )
        .unwrap();
        writeln!(
            json,
            "    \"shared_constraint_tables\": {},",
            l.shared_constraint_tables
        )
        .unwrap();
        writeln!(
            json,
            "    \"rebuilt_constraint_tables\": {},",
            l.rebuilt_constraint_tables
        )
        .unwrap();
        writeln!(
            json,
            "    \"rebuilt_pair_entries\": {},",
            l.rebuilt_pair_entries
        )
        .unwrap();
        writeln!(
            json,
            "    \"total_pair_entries\": {},",
            l.total_pair_entries
        )
        .unwrap();
        writeln!(json, "    \"sharing_ok\": {}", l.sharing_ok).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some(p) = &propagation {
        writeln!(json, "  \"propagation\": {{").unwrap();
        writeln!(json, "    \"variables\": {},", p.variables).unwrap();
        writeln!(json, "    \"constraints\": {},", p.constraints).unwrap();
        writeln!(json, "    \"allowed_pairs\": {},", p.allowed_pairs).unwrap();
        writeln!(json, "    \"kernel_build_ms\": {:.3},", p.kernel_build_ms).unwrap();
        writeln!(json, "    \"ac3_runs\": {},", p.ac3_runs).unwrap();
        writeln!(json, "    \"revisions\": {},", p.revisions).unwrap();
        writeln!(json, "    \"ac3_total_ms\": {:.3},", p.ac3_total_ms).unwrap();
        writeln!(
            json,
            "    \"revisions_per_sec\": {:.0},",
            p.revisions_per_sec
        )
        .unwrap();
        writeln!(json, "    \"checks_per_sec\": {:.0},", p.checks_per_sec).unwrap();
        writeln!(json, "    \"batch_runs\": {},", p.batch_runs).unwrap();
        let walls: Vec<String> = p.batch_ms.iter().map(|ms| format!("{ms:.3}")).collect();
        writeln!(json, "    \"batch_ms\": [{}],", walls.join(", ")).unwrap();
        writeln!(json, "    \"batch_rel_std\": {:.4},", p.batch_rel_std).unwrap();
        writeln!(json, "    \"bytes_touched\": {},", p.bytes_touched).unwrap();
        writeln!(
            json,
            "    \"bytes_per_revision\": {:.2},",
            p.bytes_per_revision
        )
        .unwrap();
        writeln!(
            json,
            "    \"bytes_budget_per_revision\": {},",
            p.bytes_budget_per_revision
        )
        .unwrap();
        writeln!(json, "    \"bytes_ok\": {},", p.bytes_ok).unwrap();
        writeln!(json, "    \"shard_splits\": {},", p.shard_splits).unwrap();
        writeln!(json, "    \"shard_alloc_bytes\": {},", p.shard_alloc_bytes).unwrap();
        writeln!(
            json,
            "    \"shard_bytes_per_split\": {},",
            p.shard_bytes_per_split
        )
        .unwrap();
        writeln!(
            json,
            "    \"shard_pair_entries_allocated\": {},",
            p.shard_pair_entries_allocated
        )
        .unwrap();
        writeln!(json, "    \"masks_ok\": {}", p.masks_ok).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some(s) = &service {
        writeln!(json, "  \"service\": {{").unwrap();
        writeln!(json, "    \"requests\": {},", s.requests).unwrap();
        writeln!(json, "    \"wall_ms\": {:.3},", s.wall_ms).unwrap();
        writeln!(json, "    \"throughput_rps\": {:.1},", s.throughput_rps).unwrap();
        writeln!(json, "    \"submitted\": {},", s.submitted).unwrap();
        writeln!(json, "    \"coalesced\": {},", s.coalesced).unwrap();
        writeln!(
            json,
            "    \"coalesce_hit_rate\": {:.3},",
            s.coalesce_hit_rate
        )
        .unwrap();
        writeln!(json, "    \"shed\": {},", s.shed).unwrap();
        writeln!(json, "    \"determinism_ok\": {}", s.determinism_ok).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some(f) = &faults {
        writeln!(json, "  \"faults\": {{").unwrap();
        writeln!(
            json,
            "    \"disarmed_ns_per_hit\": {:.2},",
            f.disarmed_ns_per_hit
        )
        .unwrap();
        writeln!(
            json,
            "    \"ladder_recovery_ms\": {:.3},",
            f.ladder_recovery_ms
        )
        .unwrap();
        writeln!(json, "    \"ladder_strategy\": \"{}\",", f.ladder_strategy).unwrap();
        writeln!(json, "    \"ladder_ok\": {},", f.ladder_ok).unwrap();
        writeln!(json, "    \"storm_requests\": {},", f.storm_requests).unwrap();
        writeln!(json, "    \"storm_panics\": {},", f.storm_panics).unwrap();
        writeln!(json, "    \"no_hung_waiters\": {}", f.no_hung_waiters).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    if let Some((path, speedup, single_thread)) = &baseline_stats {
        match single_thread {
            Some(previous_ms) => writeln!(
                json,
                "  \"baseline\": {{\"file\": \"{path}\", \"scaling_speedup\": {speedup:.3}, \
                 \"single_thread_wall_ms\": {previous_ms:.3}}},"
            )
            .unwrap(),
            None => writeln!(
                json,
                "  \"baseline\": {{\"file\": \"{path}\", \"scaling_speedup\": {speedup:.3}}},"
            )
            .unwrap(),
        }
        if let Some(previous_ms) = single_thread {
            if single_thread_ms > 0.0 {
                writeln!(
                    json,
                    "  \"single_thread_improvement\": {:.3},",
                    previous_ms / single_thread_ms
                )
                .unwrap();
            }
        }
    }
    // The deferred wall-clock regression gate (ROADMAP open item, now on):
    // this run's single-thread table2+table3 wall clock must stay within
    // the noise margin of the baseline artifact's.
    let wall_gate = if config.no_wall_gate || single_thread_ms <= 0.0 {
        None
    } else {
        baseline_stats
            .as_ref()
            .and_then(|(_, _, single_thread)| *single_thread)
            .map(|baseline_ms| {
                let limit_ms = baseline_ms * (1.0 + config.wall_margin);
                (baseline_ms, limit_ms, single_thread_ms <= limit_ms)
            })
    };
    if let Some((baseline_ms, limit_ms, ok)) = wall_gate {
        writeln!(
            json,
            "  \"wall_gate\": {{\"baseline_ms\": {baseline_ms:.3}, \"margin\": {:.3}, \
             \"limit_ms\": {limit_ms:.3}, \"current_ms\": {single_thread_ms:.3}, \"ok\": {ok}}},",
            config.wall_margin
        )
        .unwrap();
    }
    if !table2.is_empty() || !table3.is_empty() {
        writeln!(json, "  \"single_thread_wall_ms\": {single_thread_ms:.3},").unwrap();
    }
    writeln!(json, "  \"scaling_speedup\": {scaling_speedup:.3},").unwrap();
    if large.is_some() {
        // Only claim an audit verdict when the audit actually ran (--only
        // can skip the large group; skipped must not read as passed).
        writeln!(json, "  \"sharing_ok\": {sharing_ok},").unwrap();
    }
    if propagation.is_some() {
        writeln!(json, "  \"masks_ok\": {masks_ok},").unwrap();
        writeln!(json, "  \"propagation_bytes_ok\": {bytes_ok},").unwrap();
    }
    if let Some(ratio) = propagation_improvement {
        writeln!(json, "  \"propagation_improvement\": {ratio:.3},").unwrap();
    }
    if audit.is_some() {
        writeln!(json, "  \"weighted_ok\": {weighted_ok},").unwrap();
    }
    if !weighted.is_empty() {
        writeln!(json, "  \"weighted_nodes_ok\": {weighted_nodes_ok},").unwrap();
    }
    if let Some(s) = &service {
        writeln!(json, "  \"service_ok\": {},", s.determinism_ok).unwrap();
    }
    if let Some(f) = &faults {
        writeln!(
            json,
            "  \"faults_ok\": {},",
            f.ladder_ok && f.no_hung_waiters
        )
        .unwrap();
    }
    writeln!(json, "  \"cost_parity\": {cost_parity}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&config.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", config.out));
    println!(
        "\nwrote {} (aggregate scaling speedup {scaling_speedup:.2}x at {} workers)",
        config.out, config.threads
    );

    if !cost_parity {
        eprintln!(
            "perf_gate FAILED: a parallel run's solution cost diverged from its \
             single-thread baseline (see the MISMATCH rows above)"
        );
        return ExitCode::FAILURE;
    }
    if !sharing_ok {
        eprintln!(
            "perf_gate FAILED: a restricted view stopped sharing its tables \
             (see the large-instance sharing audit above)"
        );
        return ExitCode::FAILURE;
    }
    if !masks_ok {
        eprintln!(
            "perf_gate FAILED: a mask-based shard split copied pair entries or \
             dropped table/kernel sharing (see the propagation audit above)"
        );
        return ExitCode::FAILURE;
    }
    if !bytes_ok {
        eprintln!(
            "perf_gate FAILED: the propagation kernel touched more bytes per \
             revision than the padded lane layout allows — a cache-blocking \
             regression (see the bytes audit above)"
        );
        return ExitCode::FAILURE;
    }
    if !weighted_ok {
        eprintln!(
            "perf_gate FAILED: the incremental-recompilation audit was violated \
             (a mutation recompiled more than the touched constraint, or a \
             weighted shard split copied dense entries — see the weighted audit above)"
        );
        return ExitCode::FAILURE;
    }
    if !weighted_nodes_ok {
        eprintln!(
            "perf_gate FAILED: a weighted instance's node count blew its \
             propagation budget (25% of the pre-SoftAc3 BENCH_9 baseline — \
             see the node-budget column above)"
        );
        return ExitCode::FAILURE;
    }
    if !steals_ok {
        eprintln!(
            "perf_gate FAILED: steal telemetry violated its contract (a \
             single-thread run stole/split, or an N-worker proof run never \
             stole — see the steal telemetry line above)"
        );
        return ExitCode::FAILURE;
    }
    if service.as_ref().is_some_and(|s| !s.determinism_ok) {
        eprintln!(
            "perf_gate FAILED: a report served through the mlo-service queue \
             differed from the direct session call (see the service group above)"
        );
        return ExitCode::FAILURE;
    }
    if faults.as_ref().is_some_and(|f| !f.ladder_ok) {
        eprintln!(
            "perf_gate FAILED: the retry/fallback ladder did not recover from a \
             single injected engine.solve panic (see the faults group above)"
        );
        return ExitCode::FAILURE;
    }
    if faults.as_ref().is_some_and(|f| !f.no_hung_waiters) {
        eprintln!(
            "perf_gate FAILED: a waiter hung (or saw a non-error) under the \
             unbounded panic storm (see the faults group above)"
        );
        return ExitCode::FAILURE;
    }
    if let Some((baseline_ms, limit_ms, false)) = wall_gate {
        eprintln!(
            "perf_gate FAILED: single-thread table2+table3 wall clock \
             {single_thread_ms:.2}ms regressed beyond the baseline {baseline_ms:.2}ms \
             + {:.0}% margin (limit {limit_ms:.2}ms)",
            config.wall_margin * 100.0
        );
        return ExitCode::FAILURE;
    }
    if config.min_speedup > 0.0 && cores >= config.threads && scaling_speedup < config.min_speedup {
        eprintln!(
            "perf_gate FAILED: aggregate scaling speedup {scaling_speedup:.2}x is below \
             the required {:.2}x",
            config.min_speedup
        );
        return ExitCode::FAILURE;
    }
    println!("perf_gate passed: cost parity holds across thread counts");
    ExitCode::SUCCESS
}
