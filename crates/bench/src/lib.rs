//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Two kinds of targets live here:
//!
//! * **binaries** (`cargo run -p mlo-bench --release --bin <name>`) that run
//!   an experiment once and print a paper-style table next to the published
//!   values:
//!   * `table1` — benchmark characteristics (Table 1),
//!   * `table2` — layout solution times (Table 2),
//!   * `table3` — simulated execution times (Table 3),
//!   * `figure3` — backtracking vs. backjumping trace comparison (Figure 3),
//!   * `figure4` — breakdown of the enhanced scheme's savings (Figure 4),
//!   * `weighted_ext` — the weighted-constraint future-work extension,
//!   * `scaling` — solver scaling on random networks (beyond the paper);
//! * **Criterion benches** (`cargo bench -p mlo-bench`) that time the hot
//!   paths behind Tables 2/3 and Figure 4 plus solver/cache microbenchmarks.
//!
//! The shared helpers below keep the binaries small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mlo_core::experiments::{Table2Row, Table3Row};
use mlo_core::TextTable;

/// Formats a Table 2 comparison against the paper's published seconds.
///
/// Published times were measured on a 500 MHz Sun Sparc in 2005, so only the
/// *ratios* (base ≫ enhanced ≳ heuristic) are expected to transfer.
pub fn table2_with_paper(rows: &[Table2Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Heuristic (measured)",
        "Base (measured)",
        "Enhanced (measured)",
        "Heuristic (paper s)",
        "Base (paper s)",
        "Enhanced (paper s)",
        "Base/Enh (measured)",
        "Base/Enh (paper)",
    ]);
    for r in rows {
        let paper = r.benchmark.paper_row();
        let measured_ratio = if r.enhanced.as_secs_f64() > 0.0 {
            r.base.as_secs_f64() / r.enhanced.as_secs_f64()
        } else {
            0.0
        };
        t.row(vec![
            r.benchmark.name().into(),
            format!("{:.2?}", r.heuristic),
            format!("{:.2?}", r.base),
            format!("{:.2?}", r.enhanced),
            format!("{:.2}", paper.heuristic_solution_secs),
            format!("{:.2}", paper.base_solution_secs),
            format!("{:.2}", paper.enhanced_solution_secs),
            format!("{measured_ratio:.2}"),
            format!(
                "{:.2}",
                paper.base_solution_secs / paper.enhanced_solution_secs
            ),
        ]);
    }
    t
}

/// Formats a Table 3 comparison against the paper's published improvements.
pub fn table3_with_paper(rows: &[Table3Row]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Heur. impr. (measured)",
        "Base impr. (measured)",
        "Enh. impr. (measured)",
        "Heur. impr. (paper)",
        "Base impr. (paper)",
        "Enh. impr. (paper)",
    ]);
    for r in rows {
        let paper = r.benchmark.paper_row();
        let paper_impr =
            |value: f64| (paper.original_exec_secs - value) / paper.original_exec_secs * 100.0;
        t.row(vec![
            r.benchmark.name().into(),
            format!("{:.1}%", r.improvement(r.heuristic_cycles)),
            format!("{:.1}%", r.improvement(r.base_cycles)),
            format!("{:.1}%", r.improvement(r.enhanced_cycles)),
            format!("{:.1}%", paper_impr(paper.heuristic_exec_secs)),
            format!("{:.1}%", paper_impr(paper.base_exec_secs)),
            format!("{:.1}%", paper_impr(paper.enhanced_exec_secs)),
        ]);
    }
    t
}

/// Computes the average improvement (percent) across rows for one extractor,
/// mirroring the averages quoted in the paper's Section 5.
pub fn average_improvement(rows: &[Table3Row], cycles_of: impl Fn(&Table3Row) -> u64) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| r.improvement(cycles_of(r)))
        .sum::<f64>()
        / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlo_benchmarks::Benchmark;

    fn fake_row(benchmark: Benchmark) -> Table3Row {
        Table3Row {
            benchmark,
            original_cycles: 1000,
            heuristic_cycles: 600,
            base_cycles: 400,
            enhanced_cycles: 400,
        }
    }

    #[test]
    fn averages_and_formatting() {
        let rows = vec![fake_row(Benchmark::MxM), fake_row(Benchmark::Track)];
        assert!((average_improvement(&rows, |r| r.heuristic_cycles) - 40.0).abs() < 1e-9);
        assert!((average_improvement(&rows, |r| r.enhanced_cycles) - 60.0).abs() < 1e-9);
        assert_eq!(average_improvement(&[], |r| r.enhanced_cycles), 0.0);
        let printed = table3_with_paper(&rows).to_string();
        assert!(printed.contains("MxM"));
        assert!(printed.contains("paper"));
    }
}
