//! Property tests of the search engine beyond the unit tests: relationships
//! between schemes and robustness of the statistics.

use mlo_csp::random::{satisfiable_network, RandomNetworkSpec};
use mlo_csp::{Assignment, Scheme, SearchEngine, VarId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn every_scheme_validates_its_own_solution(
        variables in 3usize..12,
        domain in 2usize..5,
        density in 0.2f64..0.9,
        tightness in 0.1f64..0.7,
        seed in 0u64..1000,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let network = spec.generate();
        for scheme in [Scheme::Base, Scheme::Enhanced, Scheme::ForwardChecking, Scheme::FullPropagation] {
            let result = SearchEngine::with_scheme(scheme).solve(&network);
            if let Some(solution) = &result.solution {
                let mut assignment = Assignment::new(network.variable_count());
                for v in network.variables() {
                    assignment.assign(v, solution.value_index(v));
                }
                prop_assert_eq!(network.is_solution(&assignment), Ok(true));
            }
            // Sanity of statistics: max depth never exceeds the variable
            // count and hits-plus-misses style invariants hold.
            prop_assert!(result.stats.max_depth <= variables);
            prop_assert!(result.stats.nodes_visited >= result.stats.backtracks);
        }
    }

    #[test]
    fn node_limits_never_cause_false_unsatisfiability_reports(
        variables in 3usize..10,
        domain in 2usize..4,
        seed in 0u64..200,
        limit in 1u64..50,
    ) {
        // With a node limit the engine may fail to find a solution, but it
        // must then report that it hit the limit rather than claiming a full
        // exploration.
        let spec = RandomNetworkSpec {
            variables,
            domain_size: domain,
            density: 0.5,
            tightness: 0.3,
            seed,
        };
        let (network, planted) = satisfiable_network(&spec);
        let result = SearchEngine::with_scheme(Scheme::Enhanced)
            .node_limit(limit)
            .solve(&network);
        if result.solution.is_none() {
            prop_assert!(result.hit_node_limit,
                "no solution reported without hitting the node limit on a satisfiable network");
        }
        // The planted witness stays valid regardless.
        let mut witness = Assignment::new(network.variable_count());
        for (i, &v) in planted.iter().enumerate() {
            witness.assign(VarId::new(i), v);
        }
        prop_assert_eq!(network.is_solution(&witness), Ok(true));
    }

    #[test]
    fn forward_checking_agrees_with_plain_enhanced(
        variables in 4usize..14,
        domain in 2usize..5,
        density in 0.3f64..0.8,
        tightness in 0.2f64..0.6,
        seed in 0u64..300,
    ) {
        // Forward checking changes the traversal (values are pruned before
        // being tried) but never the answer.
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let (network, _) = satisfiable_network(&spec);
        let enhanced = SearchEngine::with_scheme(Scheme::Enhanced).solve(&network);
        let fc = SearchEngine::with_scheme(Scheme::ForwardChecking).solve(&network);
        prop_assert_eq!(enhanced.is_satisfiable(), fc.is_satisfiable());
    }
}
