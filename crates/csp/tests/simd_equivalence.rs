//! SIMD/scalar equivalence properties.
//!
//! The dispatch in `mlo_csp::simd` promises the lane backends are
//! *bit-identical* to the portable scalar reference — every reduction is an
//! exact integer (AND/ANDNOT/popcount), so no backend may change a domain,
//! an outcome, or a counter.  These tests pin that promise at three levels:
//! the raw word-vector ops, whole AC-3 fixpoints, and complete solver runs
//! (forward checking, full propagation, branch and bound, min-conflicts).
//!
//! The backend pin is process-global, so every test that forces one
//! serialises on [`backend_lock`] and restores auto-detection order by
//! re-forcing before each run (never relying on ambient state).

use mlo_csp::random::RandomNetworkSpec;
use mlo_csp::simd::{self, Backend};
use mlo_csp::solver::{ac3_kernel, SearchStats};
use mlo_csp::{BranchAndBound, MinConflicts, Scheme, SearchEngine, VarId};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises tests that pin the process-global backend.  A panicking
/// proptest case poisons the mutex; the backend is re-forced per run, so
/// the poison itself is harmless.
fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` once under each backend and returns both results.
fn under_both<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = backend_lock();
    simd::force_backend(Backend::Scalar);
    let scalar = f();
    simd::force_backend(Backend::Simd);
    let simd_result = f();
    simd::force_backend(Backend::Scalar);
    (scalar, simd_result)
}

/// The counters a backend could conceivably skew.
fn stat_fingerprint(stats: &SearchStats) -> (u64, u64, u64, u64, u64, usize) {
    (
        stats.nodes_visited,
        stats.consistency_checks,
        stats.prunings,
        stats.backtracks,
        stats.bytes_touched,
        stats.max_depth,
    )
}

fn spec(
    variables: usize,
    domain: usize,
    density: f64,
    tightness: f64,
    seed: u64,
) -> RandomNetworkSpec {
    RandomNetworkSpec {
        variables,
        domain_size: domain,
        density,
        tightness,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Raw op equivalence: the 4-wide lanes agree with the scalar
    /// reference on every vector length (including the empty and
    /// sub-lane tails) and every operand pattern.
    #[test]
    fn lane_ops_match_scalar_reference(
        a in proptest::collection::vec(any::<u64>(), 0..24),
        b in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        prop_assert_eq!(simd::lanes::and_any(&a, &b), simd::scalar::and_any(&a, &b));
        prop_assert_eq!(simd::lanes::any_set(&a), simd::scalar::any_set(&a));
        prop_assert_eq!(simd::lanes::popcount(&a), simd::scalar::popcount(&a));
        prop_assert_eq!(simd::lanes::and_popcount(&a, &b), simd::scalar::and_popcount(&a, &b));
        prop_assert_eq!(simd::lanes::andnot_any(&a, &b), simd::scalar::andnot_any(&a, &b));
        prop_assert_eq!(
            simd::lanes::andnot_popcount(&a, &b),
            simd::scalar::andnot_popcount(&a, &b)
        );
        let mut lane_dst = a.clone();
        let mut scalar_dst = a.clone();
        prop_assert_eq!(
            simd::lanes::and_assign_count(&mut lane_dst, &b),
            simd::scalar::and_assign_count(&mut scalar_dst, &b)
        );
        prop_assert_eq!(lane_dst, scalar_dst);
    }

    /// AC-3 fixpoints are backend-independent down to the last counter:
    /// identical `BitDomains`, identical outcome, identical check /
    /// pruning / bytes-touched totals.
    #[test]
    fn ac3_fixpoints_are_bit_identical(
        variables in 3usize..14,
        domain in 2usize..7,
        density in 0.2f64..0.9,
        tightness in 0.1f64..0.8,
        seed in 0u64..500,
    ) {
        let network = spec(variables, domain, density, tightness, seed).generate();
        let kernel = network.kernel().clone();
        let ((scalar_words, scalar_outcome, scalar_stats), (simd_words, simd_outcome, simd_stats)) =
            under_both(|| {
                let mut live = kernel.full_domains();
                let mut stats = SearchStats::default();
                let outcome = ac3_kernel(&kernel, &mut live, &mut stats);
                let words: Vec<Vec<u64>> = network
                    .variables()
                    .map(|v| live.words(v).to_vec())
                    .collect();
                (words, outcome, stats)
            });
        prop_assert_eq!(scalar_words, simd_words);
        prop_assert_eq!(scalar_outcome, simd_outcome);
        prop_assert_eq!(stat_fingerprint(&scalar_stats), stat_fingerprint(&simd_stats));
    }

    /// Whole solves (forward checking and full propagation, the two
    /// schemes whose hot loops ride the kernel ops) return the same
    /// solution, the same revise outcomes and the same statistics.
    #[test]
    fn search_engine_runs_are_bit_identical(
        variables in 3usize..10,
        domain in 2usize..5,
        density in 0.2f64..0.8,
        tightness in 0.1f64..0.6,
        seed in 0u64..300,
    ) {
        let network = spec(variables, domain, density, tightness, seed).generate();
        for scheme in [Scheme::ForwardChecking, Scheme::FullPropagation] {
            let (scalar_run, simd_run) = under_both(|| {
                let result = SearchEngine::with_scheme(scheme).solve(&network);
                let values = result.solution.as_ref().map(|s| {
                    network
                        .variables()
                        .map(|v| s.value_index(v))
                        .collect::<Vec<_>>()
                });
                (values, stat_fingerprint(&result.stats))
            });
            prop_assert_eq!(&scalar_run, &simd_run, "scheme {:?}", scheme);
        }
    }

    /// Weighted branch and bound: bit-identical best weight (float sums
    /// happen in the same order under both backends) and statistics.
    #[test]
    fn branch_and_bound_runs_are_bit_identical(
        variables in 3usize..8,
        domain in 2usize..4,
        density in 0.3f64..0.8,
        seed in 0u64..200,
    ) {
        let network = spec(variables, domain, density, 0.2, seed).generate();
        let weighted = mlo_csp::WeightedNetwork::new(network, 1.5);
        let (scalar_run, simd_run) = under_both(|| {
            let result = BranchAndBound::default().optimize(&weighted);
            (
                result.best_weight.to_bits(),
                result.solution.is_some(),
                stat_fingerprint(&result.stats),
            )
        });
        prop_assert_eq!(scalar_run, simd_run);
    }

    /// Min-conflicts local search draws from one RNG stream; identical
    /// conflict sets and support masks mean the draws — and therefore the
    /// entire trajectory — replay exactly under either backend.
    #[test]
    fn min_conflicts_trajectories_replay_exactly(
        variables in 3usize..9,
        domain in 2usize..5,
        seed in 0u64..200,
    ) {
        let network = spec(variables, domain, 0.5, 0.3, seed).generate();
        let (scalar_run, simd_run) = under_both(|| {
            let result = MinConflicts::with_seed(seed ^ 0x9e37)
                .max_steps(400)
                .max_restarts(3)
                .solve(&network);
            let values = result.solution.as_ref().map(|s| {
                network
                    .variables()
                    .map(|v| s.value_index(v))
                    .collect::<Vec<_>>()
            });
            (values, stat_fingerprint(&result.stats))
        });
        prop_assert_eq!(scalar_run, simd_run);
    }

    /// Masked row-maximum — the [`SoftAc3`] bound primitive behind
    /// `WeightKernel::live_row_max` — is bit-exact across backends: the
    /// 4-wide lanes and the dispatched entry point return the same
    /// maximum bits and the same (lowest) argmax as the scalar reference
    /// for any row contents, including NaN, infinities, negative zero
    /// and rows shorter than the mask (the truncation path).
    #[test]
    fn masked_row_max_matches_scalar_reference(
        a in proptest::collection::vec(any::<u64>(), 0..11),
        b in proptest::collection::vec(any::<u64>(), 0..11),
        row_bits in proptest::collection::vec(any::<u64>(), 0..704),
        tie_stride in 1usize..9,
    ) {
        // Half the rows reinterpret raw bits (NaN / ±inf / -0.0 soup);
        // the other half collapse onto a few repeated finite values so
        // lowest-index tie-breaking is actually exercised.
        let row: Vec<f64> = if tie_stride % 2 == 0 {
            row_bits.iter().map(|&w| f64::from_bits(w)).collect()
        } else {
            row_bits
                .iter()
                .map(|&w| f64::from((w % tie_stride as u64) as u32))
                .collect()
        };
        let (sv, sa) = simd::scalar::masked_row_max(&row, &a, &b);
        let (lv, la) = simd::lanes::masked_row_max(&row, &a, &b);
        prop_assert_eq!((sv.to_bits(), sa), (lv.to_bits(), la));
        let (scalar_run, simd_run) = under_both(|| {
            let (value, arg) = simd::masked_row_max(&row, &a, &b);
            (value.to_bits(), arg)
        });
        prop_assert_eq!(scalar_run, (sv.to_bits(), sa));
        prop_assert_eq!(scalar_run, simd_run);
    }

    /// Padding regression: the lane-padded tail words of every variable
    /// stay zero through restriction, AC-3 pruning and mask overlays —
    /// phantom live values in the padding would corrupt counts under any
    /// backend.
    #[test]
    fn padded_lane_words_never_leak_phantom_values(
        variables in 2usize..12,
        domain in 1usize..9,
        density in 0.2f64..0.9,
        tightness in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let network = spec(variables, domain, density, tightness, seed).generate();
        let kernel = network.kernel().clone();
        let mut live = kernel.full_domains();
        let mut stats = SearchStats::default();
        ac3_kernel(&kernel, &mut live, &mut stats);
        // Restrict one variable to a single value and re-propagate: the
        // restriction path (`restrict_to`) writes fresh word masks.
        let target = VarId::new(seed as usize % variables);
        live.restrict_to(target, &network.live_values(target)[..1.min(network.live_count(target))]);
        ac3_kernel(&kernel, &mut live, &mut stats);
        for v in network.variables() {
            let size = kernel.domain_size(v);
            let live_words = size.div_ceil(64); // words that may carry real bits
            let words = live.words(v);
            prop_assert!(words.len() >= live_words);
            prop_assert!(words.len() % simd::LANE_WORDS == 0, "rows are lane padded");
            for (i, &word) in words.iter().enumerate().skip(live_words) {
                prop_assert_eq!(word, 0, "phantom bits in padding word {} of {:?}", i, v);
            }
            // The last real word's bits above the domain size must be dead
            // too (the padding invariant starts at the domain boundary).
            if !size.is_multiple_of(64) && live_words > 0 {
                let dead = words[live_words - 1] >> (size % 64);
                prop_assert_eq!(dead, 0, "phantom bits above the domain boundary of {:?}", v);
            }
        }
    }
}
