//! Integration tests of the work-stealing scheduler: the determinism
//! contract across worker counts (identical solutions, costs and
//! enumeration counts at 1/2/4/8 workers), the exact node-disjoint
//! partition behind UNSAT proofs, prompt deque draining under
//! cancellation, and steal telemetry.
//!
//! The trailing proptests sweep random networks at larger case counts;
//! they are `#[ignore]`d so the tier-1 suite stays fast, and CI runs them
//! in a dedicated job via `-- --ignored`.

use mlo_csp::random::{
    pigeonhole_network, planted_weighted_network, satisfiable_network, RandomNetworkSpec,
};
use mlo_csp::{
    BranchAndBound, CancelToken, Enumerator, Scheme, SearchEngine, SearchLimits, StealScheduler,
    WorkerPool,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The worker counts every determinism assertion sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A scheduler sharded over `workers` threads (its own pool, so tests
/// cannot interfere with each other through shared queues).
fn scheduler(workers: usize) -> StealScheduler {
    let mut scheduler = StealScheduler::new().parallelism(workers);
    if workers > 1 {
        scheduler = scheduler.with_pool(Arc::new(WorkerPool::new(workers)));
    }
    scheduler
}

#[test]
fn solutions_are_identical_at_every_worker_count() {
    let spec = RandomNetworkSpec {
        variables: 16,
        domain_size: 4,
        density: 0.45,
        tightness: 0.35,
        seed: 61,
    };
    let (network, _) = satisfiable_network(&spec);
    let reference = scheduler(1).solve(&network, &SearchLimits::none());
    let baseline = reference
        .solution
        .expect("planted networks are satisfiable");
    for workers in WORKER_COUNTS {
        let result = scheduler(workers).solve(&network, &SearchLimits::none());
        let solution = result.solution.expect("satisfiable at every worker count");
        for var in network.variables() {
            assert_eq!(
                solution.value_index(var),
                baseline.value_index(var),
                "solution diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn optimization_costs_are_identical_at_every_worker_count() {
    let spec = RandomNetworkSpec {
        variables: 11,
        domain_size: 3,
        density: 0.5,
        tightness: 0.25,
        seed: 23,
    };
    let (weighted, _) = planted_weighted_network(&spec, 40.0, 8);
    let reference = scheduler(1).optimize_detailed(&weighted, &SearchLimits::none(), None);
    assert!(reference.optimal, "unbounded runs prove optimality");
    let best = reference
        .result
        .solution
        .as_ref()
        .expect("planted weighted networks are satisfiable")
        .values()
        .to_vec();
    for workers in WORKER_COUNTS {
        let report = scheduler(workers).optimize_detailed(&weighted, &SearchLimits::none(), None);
        assert!(report.optimal);
        // Integer weights: the costs must be bit-identical, and the
        // deterministic tie-break pins the winning assignment too.
        assert_eq!(
            report.result.best_weight, reference.result.best_weight,
            "cost diverged at {workers} workers"
        );
        assert_eq!(report.canonical_weight, reference.canonical_weight);
        let solution = report.result.solution.expect("satisfiable");
        assert_eq!(
            solution.values().to_vec(),
            best,
            "winning assignment diverged at {workers} workers"
        );
    }
}

#[test]
fn enumeration_counts_are_identical_at_every_worker_count() {
    let spec = RandomNetworkSpec {
        variables: 12,
        domain_size: 3,
        density: 0.35,
        tightness: 0.3,
        seed: 404,
    };
    let network = spec.generate();
    let oracle = Enumerator::default().enumerate(&network);
    assert!(!oracle.truncated, "pick a spec the oracle can exhaust");
    for workers in WORKER_COUNTS {
        let report = scheduler(workers).count(&network, &SearchLimits::none());
        assert!(report.is_exact());
        assert_eq!(
            report.solutions,
            oracle.solutions.len() as u64,
            "count diverged at {workers} workers"
        );
    }
}

#[test]
fn unsat_partition_sums_match_the_sequential_proof() {
    // The scheduler's enumeration/UNSAT DFS does per-node work that is a
    // pure function of the path, so the frames handed out to workers
    // partition the tree *exactly*: summing per-worker node counters must
    // reproduce the sequential proof's totals, not just its verdict.
    let network = pigeonhole_network(6);
    let reference = scheduler(1).solve_detailed(&network, &SearchLimits::none(), None);
    assert!(reference.result.proves_unsatisfiable());
    assert_eq!(reference.telemetry.steals, 0);
    assert_eq!(reference.telemetry.splits, 0);
    assert_eq!(reference.telemetry.frames, 1);
    for workers in WORKER_COUNTS {
        let report = scheduler(workers).solve_detailed(&network, &SearchLimits::none(), None);
        assert!(report.result.proves_unsatisfiable());
        assert_eq!(
            report.result.stats.nodes_visited, reference.result.stats.nodes_visited,
            "node partition leaked or double-counted at {workers} workers"
        );
        assert_eq!(
            report.result.stats.consistency_checks, reference.result.stats.consistency_checks,
            "consistency-check partition diverged at {workers} workers"
        );
        // Every split mints exactly one frame beyond the root.
        assert_eq!(report.telemetry.frames, report.telemetry.splits + 1);
        assert_eq!(report.telemetry.workers, workers);
    }
}

#[test]
fn steal_telemetry_reports_sharded_work() {
    // On a heavily loaded single-core machine the donor can occasionally
    // burn through the whole proof before any hungry peer is scheduled to
    // take a published frame; retry a few times — one sharded run is all
    // the assertion needs, and telemetry consistency holds on every run.
    let network = pigeonhole_network(8);
    let mut telemetry = mlo_csp::StealReport::default();
    for _ in 0..5 {
        let report = scheduler(4).solve_detailed(&network, &SearchLimits::none(), None);
        assert!(report.result.proves_unsatisfiable());
        assert_eq!(report.result.stats.steals, report.telemetry.steals);
        assert_eq!(report.result.stats.splits, report.telemetry.splits);
        telemetry = report.telemetry;
        if telemetry.steals > 0 {
            break;
        }
    }
    assert!(
        telemetry.steals > 0,
        "no 4-worker UNSAT proof sharded in five attempts: {telemetry:?}"
    );
    assert!(telemetry.frames > 1);
}

#[test]
fn cancellation_drains_all_deques_promptly() {
    // PHP(10) takes far longer than this test is allowed to run; a cancel
    // fired mid-proof must make every worker discard its queued frames
    // rather than finish them.
    let network = pigeonhole_network(10);
    let token = CancelToken::new();
    let trigger = token.clone();
    let canceller = thread::spawn(move || {
        thread::sleep(Duration::from_millis(50));
        trigger.cancel();
    });
    let report = scheduler(4).solve_detailed(&network, &SearchLimits::none(), Some(&token));
    canceller.join().expect("canceller thread panicked");
    assert!(report.result.cancelled);
    assert!(report.result.solution.is_none());
    assert!(!report.result.proves_unsatisfiable());
    assert!(
        report.result.elapsed < Duration::from_secs(10),
        "deques were not drained promptly: ran {:?} after cancel",
        report.result.elapsed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `#[ignore]`d heavy proptest: the scheduler's satisfiability verdict
    /// must agree with the sequential engine at every worker count, and
    /// returned solutions must validate. Run alongside the tier-2 jobs via
    /// `cargo test --release -p mlo-csp --test steal_scheduler -- --ignored`.
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn steal_solve_agrees_with_the_search_engine(
        variables in 4usize..12,
        domain in 2usize..4,
        density in 0.3f64..0.8,
        tightness in 0.2f64..0.6,
        seed in 0u64..500,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let network = spec.generate();
        let oracle = SearchEngine::with_scheme(Scheme::Enhanced).solve(&network);
        for workers in [1usize, 2, 4] {
            let result = scheduler(workers).solve(&network, &SearchLimits::none());
            prop_assert_eq!(result.solution.is_some(), oracle.solution.is_some());
            if let Some(solution) = &result.solution {
                for var in network.variables() {
                    prop_assert!(network.is_live(var, solution.value_index(var)));
                }
            } else {
                prop_assert!(result.proves_unsatisfiable());
            }
        }
    }

    /// `#[ignore]`d heavy proptest: exact solution counts match the
    /// sequential enumerator at every worker count.
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn steal_count_matches_the_sequential_enumerator(
        variables in 4usize..10,
        domain in 2usize..4,
        density in 0.2f64..0.6,
        tightness in 0.1f64..0.5,
        seed in 0u64..500,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let network = spec.generate();
        let oracle = Enumerator::default().enumerate(&network);
        prop_assume!(!oracle.truncated);
        for workers in [1usize, 2, 4] {
            let report = scheduler(workers).count(&network, &SearchLimits::none());
            prop_assert!(report.is_exact());
            prop_assert_eq!(report.solutions, oracle.solutions.len() as u64);
        }
    }

    /// `#[ignore]`d heavy proptest: sharded branch and bound lands on the
    /// exact sequential optimum (integer weights, so bit-equal).
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn steal_optimize_matches_sequential_branch_and_bound(
        variables in 4usize..10,
        domain in 2usize..4,
        density in 0.3f64..0.7,
        tightness in 0.1f64..0.4,
        seed in 0u64..500,
        bonus in 10u32..60,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        // Integer weights keep every weight sum exact, so the optima are
        // bit-comparable no matter the summation order.
        let (weighted, _) = planted_weighted_network(&spec, f64::from(bonus), 6);
        let oracle = BranchAndBound::new().optimize(&weighted);
        prop_assume!(oracle.is_exhaustive());
        for workers in [1usize, 2, 4] {
            let report = scheduler(workers).optimize_detailed(&weighted, &SearchLimits::none(), None);
            prop_assert!(report.optimal);
            prop_assert_eq!(report.result.best_weight, oracle.best_weight);
        }
    }
}
