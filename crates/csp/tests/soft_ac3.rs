//! Integration properties of the weighted bound-consistency propagator
//! ([`SoftAc3`]):
//!
//! * **soundness** — against a brute-force enumeration of every consistent
//!   complete assignment, the fixpoint never deletes a value that still
//!   participates in a completion at or above the incumbent (strictly
//!   better completions *and* ties must survive, which is what keeps the
//!   canonical tie-break independent of bound-arrival timing), and
//! * **transparency** — every weighted search path (sequential
//!   [`BranchAndBound`], the work-stealing scheduler at 1/2/4/8 workers,
//!   and the cooperative portfolio) reports a bit-identical
//!   `best_weight` and the identical winning assignment with propagation
//!   on and off: the propagator may only remove subtrees the bound proves
//!   dead, never change what is found.
//!
//! The trailing `#[ignore]`d variants sweep the same properties at a
//! 256-case count; CI runs them in the ignored-proptests job via
//! `cargo test --release -p mlo-csp --test soft_ac3 -- --ignored`.

use mlo_csp::random::{planted_weighted_network, RandomNetworkSpec};
use mlo_csp::solver::SearchStats;
use mlo_csp::{
    Assignment, BranchAndBound, ParallelBranchAndBound, SearchLimits, SoftAc3, StealScheduler,
    VarId, WeightedNetwork, WorkerPool,
};
use proptest::prelude::*;
use std::sync::Arc;

/// The worker counts the on/off transparency sweep covers.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A steal scheduler sharded over `workers` threads on its own pool.
fn scheduler(workers: usize) -> StealScheduler {
    let mut scheduler = StealScheduler::new().parallelism(workers);
    if workers > 1 {
        scheduler = scheduler.with_pool(Arc::new(WorkerPool::new(workers)));
    }
    scheduler
}

/// Brute-force sweep of every complete assignment: returns the global
/// optimum and, per `(variable, value)`, the best weight of any
/// *consistent* completion assigning that value (`NEG_INFINITY` when the
/// value appears in no consistent completion at all).
fn best_completions(weighted: &WeightedNetwork<usize>) -> (f64, Vec<Vec<f64>>) {
    let network = weighted.network();
    let kernel = network.kernel();
    let n = network.variable_count();
    let sizes: Vec<usize> = (0..n).map(|i| kernel.domain_size(VarId::new(i))).collect();
    let mut best = vec![Vec::new(); n];
    for (var, &size) in sizes.iter().enumerate() {
        best[var] = vec![f64::NEG_INFINITY; size];
    }
    let mut optimum = f64::NEG_INFINITY;
    let mut current = vec![0usize; n];
    let mut assignment = Assignment::new(n);
    loop {
        let consistent = (0..kernel.constraint_count()).all(|ci| {
            let c = kernel.constraint(ci);
            c.allows(current[c.first().index()], current[c.second().index()])
        });
        if consistent {
            for (var, &value) in current.iter().enumerate() {
                assignment.assign(VarId::new(var), value);
            }
            let weight = weighted.assignment_weight(&assignment);
            for (var, &value) in current.iter().enumerate() {
                if weight > best[var][value] {
                    best[var][value] = weight;
                }
                assignment.unassign(VarId::new(var));
            }
            if weight > optimum {
                optimum = weight;
            }
        }
        // Odometer step over the cross product of the domains.
        let mut depth = 0;
        loop {
            if depth == n {
                return (optimum, best);
            }
            current[depth] += 1;
            if current[depth] < sizes[depth] {
                break;
            }
            current[depth] = 0;
            depth += 1;
        }
    }
}

/// The soundness property: after one root fixpoint against `incumbent`,
/// every value whose best consistent completion is at or above the
/// incumbent must still be live.
fn assert_no_good_deleted(
    weighted: &WeightedNetwork<usize>,
    optimum: f64,
    best: &[Vec<f64>],
    incumbent: f64,
) {
    let network = weighted.network();
    let kernel = network.kernel();
    let mut soft = SoftAc3::new(network.kernel(), weighted.weight_kernel(), None);
    let mut stats = SearchStats::default();
    prop_assert!(
        soft.root_propagate(&mut stats).is_ok(),
        "satisfiable instances never wipe out at the root"
    );
    prop_assert!(
        soft.propagate(0.0, f64::NEG_INFINITY, incumbent, &mut stats)
            .is_ok(),
        "an incumbent at or below the optimum ({optimum}) cannot wipe a domain"
    );
    for (var, per_value) in best.iter().enumerate() {
        let var = VarId::new(var);
        for (value, &completion) in per_value.iter().enumerate() {
            // `NEG_INFINITY` marks a value with no consistent completion at
            // all: root hard-AC is free to delete it regardless of the
            // incumbent, so only finite completions are protected.
            if completion.is_finite() && completion >= incumbent {
                prop_assert!(
                    soft.is_live(var, value),
                    "deleted {var:?}={value} with completion {completion} >= \
                     incumbent {incumbent} (optimum {optimum})"
                );
            }
        }
        prop_assert!(kernel.domain_size(var) > 0);
    }
}

/// The transparency property: on every weighted search path the optimum
/// weight is bit-identical with propagation on and off, and within each
/// engine family (sequential branch and bound, the steal scheduler at
/// every worker count, the cooperative portfolio) the winning assignment
/// is identical too.  Winners are only compared within a family: each
/// engine visits leaves in its own deterministic order, so two engines
/// may canonically break a weight tie differently — but flipping
/// propagation (or the steal worker count) must never change a given
/// engine's pick.
fn assert_on_off_identical(weighted: &WeightedNetwork<usize>) {
    fn values(solution: &Option<mlo_csp::Solution<usize>>) -> Option<Vec<usize>> {
        solution.as_ref().map(|s| s.values().to_vec())
    }
    let off = BranchAndBound::new().propagation(false).optimize(weighted);
    let on = BranchAndBound::new().optimize(weighted);
    prop_assert!(off.is_exhaustive() && on.is_exhaustive());
    let optimum_bits = off.best_weight.to_bits();
    prop_assert_eq!(
        on.best_weight.to_bits(),
        optimum_bits,
        "sequential branch and bound: propagation changed the optimum"
    );
    prop_assert_eq!(
        values(&on.solution),
        values(&off.solution),
        "sequential branch and bound: propagation changed the winner"
    );
    let steal_reference = values(
        &scheduler(1)
            .propagation(false)
            .optimize_detailed(weighted, &SearchLimits::none(), None)
            .result
            .solution,
    );
    for workers in WORKER_COUNTS {
        for propagation in [false, true] {
            let report = scheduler(workers)
                .propagation(propagation)
                .optimize_detailed(weighted, &SearchLimits::none(), None);
            prop_assert!(report.optimal);
            prop_assert_eq!(
                report.result.best_weight.to_bits(),
                optimum_bits,
                "steal scheduler diverged at {} workers (propagation: {})",
                workers,
                propagation
            );
            prop_assert_eq!(
                &values(&report.result.solution),
                &steal_reference,
                "steal winner diverged at {} workers (propagation: {})",
                workers,
                propagation
            );
        }
    }
    let mut portfolio_reference = None;
    for propagation in [false, true] {
        let report = ParallelBranchAndBound::default()
            .propagation(propagation)
            .with_pool(Arc::new(WorkerPool::new(4)))
            .parallelism(4)
            .optimize_detailed(weighted, &SearchLimits::none());
        prop_assert!(report.optimal);
        prop_assert_eq!(
            report.result.best_weight.to_bits(),
            optimum_bits,
            "portfolio diverged (propagation: {})",
            propagation
        );
        let winner = values(&report.result.solution);
        if let Some(reference) = &portfolio_reference {
            prop_assert_eq!(
                reference,
                &winner,
                "portfolio: propagation changed the winner"
            );
        } else {
            portfolio_reference = Some(winner);
        }
    }
}

/// A noise-dominant planted instance small enough to brute-force.
fn instance(variables: usize, seed: u64, bonus: f64) -> WeightedNetwork<usize> {
    let spec = RandomNetworkSpec {
        variables,
        domain_size: 3,
        density: 0.5,
        tightness: 0.2,
        seed,
    };
    planted_weighted_network(&spec, bonus, 8).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness vs brute force at several incumbent tightnesses: the
    /// fixpoint never deletes a value that still participates in a
    /// completion at or above the incumbent.
    #[test]
    fn propagation_never_deletes_a_value_on_a_winning_completion(
        variables in 4usize..10,
        seed in 0u64..400,
        bonus in 4u32..40,
        slack in 0u32..20,
    ) {
        let weighted = instance(variables, seed, f64::from(bonus));
        let (optimum, best) = best_completions(&weighted);
        prop_assume!(optimum.is_finite());
        for incumbent in [f64::NEG_INFINITY, optimum - f64::from(slack), optimum] {
            assert_no_good_deleted(&weighted, optimum, &best, incumbent);
        }
    }

    /// Transparency: propagation on/off is invisible in the reported
    /// optimum and winner on every weighted search path, at 1/2/4/8
    /// workers (integer weights, so `to_bits` equality is exact).
    #[test]
    fn propagation_on_off_results_are_bit_identical(
        variables in 4usize..11,
        seed in 0u64..400,
        bonus in 4u32..40,
    ) {
        let weighted = instance(variables, seed, f64::from(bonus));
        assert_on_off_identical(&weighted);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `#[ignore]`d heavy variant of the brute-force soundness sweep.
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn propagation_soundness_sweep(
        variables in 4usize..11,
        seed in 0u64..2_000,
        bonus in 4u32..60,
        slack in 0u32..30,
    ) {
        let weighted = instance(variables, seed, f64::from(bonus));
        let (optimum, best) = best_completions(&weighted);
        prop_assume!(optimum.is_finite());
        for incumbent in [f64::NEG_INFINITY, optimum - f64::from(slack), optimum] {
            assert_no_good_deleted(&weighted, optimum, &best, incumbent);
        }
    }

    /// `#[ignore]`d heavy variant of the on/off transparency sweep.
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn propagation_transparency_sweep(
        variables in 4usize..12,
        seed in 0u64..2_000,
        bonus in 4u32..60,
    ) {
        let weighted = instance(variables, seed, f64::from(bonus));
        assert_on_off_identical(&weighted);
    }
}
