//! Agreement tests between the bitset execution kernel and the `HashSet`
//! reference representation.
//!
//! The kernel is a *compiled* form of the constraint tables; these
//! property tests pin down that compilation is faithful on random
//! networks:
//!
//! * `allows` / conflict sets computed through the kernel equal the
//!   [`BinaryConstraint`] hash-probe answers,
//! * the kernel's precomputed per-value support counts equal reference
//!   counts,
//! * bitset AC-3 prunes exactly the values an independently written
//!   `HashSet`-based revise loop prunes,
//! * solving through mask-based restricted views equals solving
//!   from-scratch materialized restrictions (see also
//!   `structural_sharing.rs`, which additionally compares node counts).

use mlo_csp::random::RandomNetworkSpec;
use mlo_csp::solver::ac3;
use mlo_csp::solver::SearchStats;
use mlo_csp::{Assignment, ConstraintNetwork, VarId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_net(
    variables: usize,
    domain: usize,
    density: f64,
    tightness: f64,
    seed: u64,
) -> ConstraintNetwork<usize> {
    RandomNetworkSpec {
        variables,
        domain_size: domain,
        density,
        tightness,
        seed,
    }
    .generate()
}

/// Reference AC-3 written directly against the `HashSet` pair tables —
/// deliberately *not* sharing any code with the kernel implementation.
fn reference_ac3(net: &ConstraintNetwork<usize>, live: &mut [Vec<usize>]) -> Option<VarId> {
    use std::collections::VecDeque;
    let mut queue: VecDeque<(VarId, VarId)> = VecDeque::new();
    for c in net.constraints() {
        queue.push_back((c.first(), c.second()));
        queue.push_back((c.second(), c.first()));
    }
    while let Some((x, y)) = queue.pop_front() {
        let constraint = net.constraint_between(x, y).expect("queued arc");
        let y_values = live[y.index()].clone();
        let before = live[x.index()].len();
        live[x.index()].retain(|&xv| constraint.has_support(x, xv, &y_values));
        if live[x.index()].is_empty() {
            return Some(x);
        }
        if live[x.index()].len() != before {
            for &ci in net.constraints_of(x) {
                let z = net.constraint(ci).other(x).expect("adjacency");
                if z != y {
                    queue.push_back((z, x));
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every kernel bit answers exactly like the `HashSet` probe, in both
    /// orientations, and the precomputed support counts match reference
    /// counts.
    #[test]
    fn kernel_allows_and_support_counts_match_the_reference(
        variables in 2usize..9,
        domain in 1usize..6,
        density in 0.2f64..1.0,
        tightness in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let kernel = net.kernel();
        prop_assert_eq!(kernel.variable_count(), net.variable_count());
        prop_assert_eq!(kernel.constraint_count(), net.constraint_count());
        for (ci, c) in net.constraints().iter().enumerate() {
            let (first, second) = c.scope();
            let full: Vec<usize> = (0..net.domain(second).len()).collect();
            let full_first: Vec<usize> = (0..net.domain(first).len()).collect();
            for a in 0..net.domain(first).len() {
                for b in 0..net.domain(second).len() {
                    prop_assert_eq!(
                        c.allows(first, a, second, b),
                        kernel.allows(ci, first, a, b),
                        "constraint {} pair ({}, {})", ci, a, b
                    );
                    prop_assert_eq!(
                        c.allows(second, b, first, a),
                        kernel.allows(ci, second, b, a)
                    );
                }
                prop_assert_eq!(
                    c.support_count(first, a, &full) as u32,
                    kernel.constraint(ci).full_support(true, a),
                    "support of first={}", a
                );
            }
            for b in 0..net.domain(second).len() {
                prop_assert_eq!(
                    c.support_count(second, b, &full_first) as u32,
                    kernel.constraint(ci).full_support(false, b)
                );
            }
        }
    }

    /// Kernel conflict sets equal the network's `HashSet`-probing
    /// `conflicts_with` on random partial assignments.
    #[test]
    fn kernel_conflict_sets_match_conflicts_with(
        variables in 2usize..10,
        domain in 1usize..5,
        density in 0.2f64..1.0,
        tightness in 0.1f64..0.8,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let kernel = net.kernel();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // A random partial assignment (~half the variables).
        let mut assignment = Assignment::new(net.variable_count());
        for v in net.variables() {
            if rng.gen_range(0..2) == 0 {
                assignment.assign(v, rng.gen_range(0..net.domain(v).len()));
            }
        }
        for var in net.variables() {
            if assignment.is_assigned(var) {
                continue;
            }
            for value in 0..net.domain(var).len() {
                let mut reference_checks = 0u64;
                let mut reference =
                    net.conflicts_with(&assignment, var, value, &mut reference_checks);
                let mut kernel_checks = 0u64;
                let mut from_kernel = Vec::new();
                kernel.collect_conflicts(
                    &assignment,
                    var,
                    value,
                    &mut kernel_checks,
                    &mut from_kernel,
                );
                reference.sort();
                from_kernel.sort();
                let conflicted = !from_kernel.is_empty();
                prop_assert_eq!(reference, from_kernel, "var {} value {}", var, value);
                prop_assert_eq!(reference_checks, kernel_checks);
                // The early-exit form agrees on the boolean answer.
                let mut any_checks = 0u64;
                let any = kernel.conflicts_any(&assignment, var, value, &mut any_checks);
                prop_assert_eq!(any, conflicted);
            }
        }
    }

    /// Bitset AC-3 prunes exactly what the reference `HashSet` revise loop
    /// prunes (same surviving values, same wipeout verdict).
    #[test]
    fn bitset_ac3_matches_reference_revise(
        variables in 2usize..10,
        domain in 1usize..6,
        density in 0.3f64..1.0,
        tightness in 0.2f64..0.9,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let full: Vec<Vec<usize>> = net
            .variables()
            .map(|v| (0..net.domain(v).len()).collect())
            .collect();
        let mut reference_live = full.clone();
        let reference_wipeout = reference_ac3(&net, &mut reference_live).is_some();
        let mut kernel_live = full;
        let mut stats = SearchStats::default();
        let kernel_wipeout = matches!(
            ac3(&net, &mut kernel_live, &mut stats),
            mlo_csp::solver::Ac3Outcome::Wipeout(_)
        );
        prop_assert_eq!(reference_wipeout, kernel_wipeout);
        if !kernel_wipeout {
            // Without a wipeout, AC-3 has a unique fixpoint: the surviving
            // values must be identical (both representations report them in
            // ascending order).
            prop_assert_eq!(reference_live, kernel_live);
            prop_assert!(stats.consistency_checks > 0 || net.constraint_count() == 0);
        }
    }
}
