//! Agreement tests between the bitset execution kernel and the `HashSet`
//! reference representation.
//!
//! The kernel is a *compiled* form of the constraint tables; these
//! property tests pin down that compilation is faithful on random
//! networks:
//!
//! * `allows` / conflict sets computed through the kernel equal the
//!   [`BinaryConstraint`] hash-probe answers,
//! * the kernel's precomputed per-value support counts equal reference
//!   counts,
//! * bitset AC-3 prunes exactly the values an independently written
//!   `HashSet`-based revise loop prunes,
//! * solving through mask-based restricted views equals solving
//!   from-scratch materialized restrictions (see also
//!   `structural_sharing.rs`, which additionally compares node counts),
//! * **incremental recompilation** is faithful: a mutated-then-patched
//!   kernel is bit-identical to a from-scratch compile, and untouched
//!   constraints' compiled matrices are reused by pointer (the compiled
//!   [`WeightKernel`] gets the same treatment for `set_weight` patches).
//!
//! The heavier `_heavy` variants re-run the incremental proptests at much
//! larger case counts; they are `#[ignore]`d so the tier-1 suite stays
//! fast, and CI runs them in a dedicated job via `-- --ignored`.

use mlo_csp::random::{planted_weighted_network, RandomNetworkSpec};
use mlo_csp::solver::ac3;
use mlo_csp::solver::SearchStats;
use mlo_csp::{Assignment, BitKernel, ConstraintNetwork, VarId, WeightedNetwork};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

fn random_net(
    variables: usize,
    domain: usize,
    density: f64,
    tightness: f64,
    seed: u64,
) -> ConstraintNetwork<usize> {
    RandomNetworkSpec {
        variables,
        domain_size: domain,
        density,
        tightness,
        seed,
    }
    .generate()
}

/// Reference AC-3 written directly against the `HashSet` pair tables —
/// deliberately *not* sharing any code with the kernel implementation.
fn reference_ac3(net: &ConstraintNetwork<usize>, live: &mut [Vec<usize>]) -> Option<VarId> {
    use std::collections::VecDeque;
    let mut queue: VecDeque<(VarId, VarId)> = VecDeque::new();
    for c in net.constraints() {
        queue.push_back((c.first(), c.second()));
        queue.push_back((c.second(), c.first()));
    }
    while let Some((x, y)) = queue.pop_front() {
        let constraint = net.constraint_between(x, y).expect("queued arc");
        let y_values = live[y.index()].clone();
        let before = live[x.index()].len();
        live[x.index()].retain(|&xv| constraint.has_support(x, xv, &y_values));
        if live[x.index()].is_empty() {
            return Some(x);
        }
        if live[x.index()].len() != before {
            for &ci in net.constraints_of(x) {
                let z = net.constraint(ci).other(x).expect("adjacency");
                if z != y {
                    queue.push_back((z, x));
                }
            }
        }
    }
    None
}

/// Asserts two kernels are bit-identical as far as the public API can
/// observe: shapes, adjacency, every bit-matrix row in both orientations
/// and every support count.
fn assert_kernels_equivalent(a: &BitKernel, b: &BitKernel) {
    assert_eq!(a.variable_count(), b.variable_count());
    for v in (0..a.variable_count()).map(VarId::new) {
        assert_eq!(a.domain_size(v), b.domain_size(v), "domain of {v}");
        assert_eq!(a.edges(v), b.edges(v), "adjacency of {v}");
    }
    assert_eq!(a.constraint_count(), b.constraint_count());
    for ci in 0..a.constraint_count() {
        let (ca, cb) = (a.constraint(ci), b.constraint(ci));
        assert_eq!(ca.first(), cb.first(), "constraint {ci}");
        assert_eq!(ca.second(), cb.second(), "constraint {ci}");
        for value in 0..a.domain_size(ca.first()) {
            assert_eq!(ca.row(true, value), cb.row(true, value), "fwd row {value}");
            assert_eq!(ca.full_support(true, value), cb.full_support(true, value));
        }
        for value in 0..a.domain_size(ca.second()) {
            assert_eq!(
                ca.row(false, value),
                cb.row(false, value),
                "rev row {value}"
            );
            assert_eq!(ca.full_support(false, value), cb.full_support(false, value));
        }
    }
}

/// Rebuilds `net` from scratch through the public builder API (fresh
/// storage, no pre-compiled kernel) so its kernel is a from-scratch compile.
fn rebuild(net: &ConstraintNetwork<usize>) -> ConstraintNetwork<usize> {
    let mut out = ConstraintNetwork::new();
    for v in net.variables() {
        out.add_variable(net.name(v).to_string(), net.domain(v).values().to_vec());
    }
    for c in net.constraints() {
        out.add_constraint_by_index(c.first(), c.second(), c.allowed_pairs().clone())
            .expect("rebuilt pairs are in range");
    }
    out
}

/// The incremental-recompilation property, shared by the fast and the
/// `#[ignore]`d heavy proptest: compile, mutate, and require (a) the
/// patched kernel to be bit-identical to a from-scratch compile and (b)
/// every untouched constraint's compiled matrix to be reused by pointer.
#[allow(clippy::too_many_arguments)]
fn check_incremental_recompile(
    variables: usize,
    domain: usize,
    density: f64,
    tightness: f64,
    seed: u64,
    kind: usize,
    pick_a: usize,
    pick_b: usize,
) {
    let parent = random_net(variables, domain, density, tightness, seed);
    let mut net = parent.clone();
    let before = Arc::clone(net.kernel()); // force the compile being patched
    let a = VarId::new(pick_a % variables);
    let b = VarId::new(pick_b % variables);
    // `touched` is the index of the one pre-existing constraint whose
    // matrix the mutation is allowed to rebuild (None = none of them).
    let touched = match kind % 3 {
        0 => {
            net.add_variable("extra", (0..domain.max(1)).collect());
            None
        }
        _ if a == b => return, // a self-constraint is rejected; nothing to test
        _ => {
            let existing = net.constraint_index_between(a, b);
            let mut pairs = HashSet::new();
            pairs.insert((pick_a % net.domain(a).len(), pick_b % net.domain(b).len()));
            pairs.insert((pick_b % net.domain(a).len(), pick_a % net.domain(b).len()));
            net.add_constraint_by_index(a, b, pairs)
                .expect("indices are in range");
            existing
        }
    };
    let patched = Arc::clone(net.kernel());
    // (a) Bit-identical to a from-scratch compile of the mutated network.
    let fresh = rebuild(&net);
    assert_kernels_equivalent(&patched, fresh.kernel());
    // (b) Untouched constraints' matrices are reused by pointer; the
    // touched one (if any) was recompiled.  The parent's kernel is
    // untouched either way.
    for ci in 0..before.constraint_count() {
        if touched == Some(ci) {
            assert!(
                !Arc::ptr_eq(before.constraint_handle(ci), patched.constraint_handle(ci)),
                "merged constraint {ci} must be recompiled"
            );
        } else {
            assert!(
                Arc::ptr_eq(before.constraint_handle(ci), patched.constraint_handle(ci)),
                "untouched constraint {ci} must reuse the compiled matrix"
            );
        }
    }
    assert!(Arc::ptr_eq(&before, parent.kernel()), "parent unaffected");
}

/// Reference aggregates computed straight from the `HashSet` pair tables —
/// deliberately sharing no code with the [`WeightKernel`] compiler.
fn reference_row_max(
    weighted: &WeightedNetwork<usize>,
    ci: usize,
    var_is_first: bool,
    value: usize,
) -> f64 {
    let c = &weighted.network().constraints()[ci];
    c.allowed_pairs()
        .iter()
        .filter(|&&(a, b)| if var_is_first { a == value } else { b == value })
        .map(|&pair| weighted.weight_of(ci, pair))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The weight-kernel agreement property shared by the fast and heavy
/// variants: every dense read equals the builder-side `weight_of`, and the
/// per-value aggregates equal reference maxima over the allowed pairs.
fn check_weight_kernel_agreement(variables: usize, domain: usize, seed: u64) {
    let spec = RandomNetworkSpec {
        variables,
        domain_size: domain,
        density: 0.6,
        tightness: 0.3,
        seed,
    };
    let (weighted, _) = planted_weighted_network(&spec, 40.0, 7);
    let kernel = weighted.weight_kernel();
    assert_eq!(
        kernel.constraint_count(),
        weighted.network().constraint_count()
    );
    assert_eq!(kernel.default_weight(), 0.0);
    for (ci, c) in weighted.network().constraints().iter().enumerate() {
        let first_size = weighted.network().domain(c.first()).len();
        let second_size = weighted.network().domain(c.second()).len();
        let mut max_allowed = f64::NEG_INFINITY;
        for a in 0..first_size {
            for b in 0..second_size {
                assert_eq!(
                    kernel.weight(ci, a, b),
                    weighted.weight_of(ci, (a, b)),
                    "constraint {ci} pair ({a}, {b})"
                );
                // Oriented reads agree in both directions.
                let wc = kernel.constraint(ci);
                assert_eq!(wc.oriented(true, a, b), wc.get(a, b));
                assert_eq!(wc.oriented(false, b, a), wc.get(a, b));
                if c.allowed_pairs().contains(&(a, b)) {
                    max_allowed = max_allowed.max(weighted.weight_of(ci, (a, b)));
                }
            }
        }
        for a in 0..first_size {
            assert_eq!(
                kernel.constraint(ci).row_max(true, a),
                reference_row_max(&weighted, ci, true, a),
                "row max of first = {a}"
            );
        }
        for b in 0..second_size {
            assert_eq!(
                kernel.constraint(ci).row_max(false, b),
                reference_row_max(&weighted, ci, false, b),
                "row max of second = {b}"
            );
        }
        assert_eq!(kernel.constraint(ci).max_allowed(), max_allowed);
    }
}

/// The weighted incremental-recompilation property: a `set_weight` patch
/// must produce a kernel identical to a from-scratch compile of the same
/// weights, reusing every untouched constraint's matrix by pointer.
fn check_weight_incremental_recompile(variables: usize, domain: usize, seed: u64, pick: usize) {
    let spec = RandomNetworkSpec {
        variables,
        domain_size: domain,
        density: 0.6,
        tightness: 0.3,
        seed,
    };
    let (parent, _) = planted_weighted_network(&spec, 40.0, 7);
    if parent.network().constraint_count() == 0 {
        return;
    }
    let mut weighted = parent.clone();
    let before = Arc::clone(weighted.weight_kernel());
    // Patch one arbitrary allowed pair of one arbitrary constraint.
    let ci = pick % weighted.network().constraint_count();
    let c = weighted.network().constraint(ci);
    let (first, second) = c.scope();
    let pair = {
        let mut pairs: Vec<_> = c.allowed_pairs().iter().copied().collect();
        pairs.sort_unstable();
        pairs[pick % pairs.len().max(1)]
    };
    let (va, vb) = (
        *weighted.network().domain(first).value(pair.0),
        *weighted.network().domain(second).value(pair.1),
    );
    weighted
        .set_weight(first, second, &va, &vb, 123.5)
        .expect("allowed pairs are in both domains");
    let patched = Arc::clone(weighted.weight_kernel());
    // From-scratch compile: replay every weight into a fresh spine.
    let mut fresh = WeightedNetwork::new(weighted.network().clone(), 0.0);
    for (cj, c) in weighted.network().constraints().iter().enumerate() {
        for &(a, b) in c.allowed_pairs() {
            let (va, vb) = (
                *weighted.network().domain(c.first()).value(a),
                *weighted.network().domain(c.second()).value(b),
            );
            fresh
                .set_weight(
                    c.first(),
                    c.second(),
                    &va,
                    &vb,
                    weighted.weight_of(cj, (a, b)),
                )
                .expect("replayed pairs are valid");
        }
    }
    let scratch = fresh.weight_kernel();
    for cj in 0..patched.constraint_count() {
        let c = weighted.network().constraint(cj);
        let first_size = weighted.network().domain(c.first()).len();
        let second_size = weighted.network().domain(c.second()).len();
        for a in 0..first_size {
            for b in 0..second_size {
                // Unset (disallowed) pairs may differ only when the scratch
                // replay never materialized them — both read the default.
                assert_eq!(
                    patched.weight(cj, a, b),
                    scratch.weight(cj, a, b),
                    "constraint {cj} pair ({a}, {b})"
                );
            }
            assert_eq!(
                patched.constraint(cj).row_max(true, a),
                scratch.constraint(cj).row_max(true, a)
            );
        }
        for b in 0..second_size {
            assert_eq!(
                patched.constraint(cj).row_max(false, b),
                scratch.constraint(cj).row_max(false, b)
            );
        }
        assert_eq!(
            patched.constraint(cj).max_allowed(),
            scratch.constraint(cj).max_allowed()
        );
        // Pointer reuse: only the touched constraint was recompiled.
        if cj == ci {
            assert!(
                !Arc::ptr_eq(before.constraint_handle(cj), patched.constraint_handle(cj)),
                "patched constraint {cj} must be recompiled"
            );
        } else {
            assert!(
                Arc::ptr_eq(before.constraint_handle(cj), patched.constraint_handle(cj)),
                "untouched constraint {cj} must reuse the compiled matrix"
            );
        }
    }
    assert!(
        Arc::ptr_eq(&before, parent.weight_kernel()),
        "parent spine unaffected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A copy-on-write mutation patches the compiled kernel incrementally:
    /// bit-identical to a from-scratch compile, untouched matrices reused
    /// by pointer.
    #[test]
    fn incremental_recompile_matches_from_scratch(
        variables in 2usize..9,
        domain in 1usize..6,
        density in 0.2f64..1.0,
        tightness in 0.0f64..0.9,
        seed in 0u64..1000,
        kind in 0usize..3,
        pick_a in 0usize..64,
        pick_b in 0usize..64,
    ) {
        check_incremental_recompile(
            variables, domain, density, tightness, seed, kind, pick_a, pick_b,
        );
    }

    /// Dense weight-kernel reads and aggregates equal the builder-side
    /// `weight_of` and reference maxima over the allowed pairs.
    #[test]
    fn weight_kernel_matches_the_reference(
        variables in 2usize..8,
        domain in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_weight_kernel_agreement(variables, domain, seed);
    }

    /// A `set_weight` patch equals a from-scratch weight-kernel compile and
    /// reuses every untouched constraint's matrix by pointer.
    #[test]
    fn weight_kernel_patch_matches_from_scratch(
        variables in 2usize..8,
        domain in 2usize..5,
        seed in 0u64..1000,
        pick in 0usize..1024,
    ) {
        check_weight_incremental_recompile(variables, domain, seed, pick);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heavy (nightly-style) variant of
    /// [`incremental_recompile_matches_from_scratch`]: larger networks,
    /// many more cases.  Run with `cargo test -p mlo-csp --test bitkernel
    /// -- --ignored`.
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn incremental_recompile_matches_from_scratch_heavy(
        variables in 2usize..14,
        domain in 1usize..8,
        density in 0.1f64..1.0,
        tightness in 0.0f64..0.95,
        seed in 0u64..100_000,
        kind in 0usize..3,
        pick_a in 0usize..256,
        pick_b in 0usize..256,
    ) {
        check_incremental_recompile(
            variables, domain, density, tightness, seed, kind, pick_a, pick_b,
        );
    }

    /// Heavy variant of [`weight_kernel_matches_the_reference`].
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn weight_kernel_matches_the_reference_heavy(
        variables in 2usize..11,
        domain in 2usize..7,
        seed in 0u64..100_000,
    ) {
        check_weight_kernel_agreement(variables, domain, seed);
    }

    /// Heavy variant of [`weight_kernel_patch_matches_from_scratch`].
    #[test]
    #[ignore = "heavy case count; CI runs it in the ignored-proptests job"]
    fn weight_kernel_patch_matches_from_scratch_heavy(
        variables in 2usize..11,
        domain in 2usize..7,
        seed in 0u64..100_000,
        pick in 0usize..65_536,
    ) {
        check_weight_incremental_recompile(variables, domain, seed, pick);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every kernel bit answers exactly like the `HashSet` probe, in both
    /// orientations, and the precomputed support counts match reference
    /// counts.
    #[test]
    fn kernel_allows_and_support_counts_match_the_reference(
        variables in 2usize..9,
        domain in 1usize..6,
        density in 0.2f64..1.0,
        tightness in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let kernel = net.kernel();
        prop_assert_eq!(kernel.variable_count(), net.variable_count());
        prop_assert_eq!(kernel.constraint_count(), net.constraint_count());
        for (ci, c) in net.constraints().iter().enumerate() {
            let (first, second) = c.scope();
            let full: Vec<usize> = (0..net.domain(second).len()).collect();
            let full_first: Vec<usize> = (0..net.domain(first).len()).collect();
            for a in 0..net.domain(first).len() {
                for b in 0..net.domain(second).len() {
                    prop_assert_eq!(
                        c.allows(first, a, second, b),
                        kernel.allows(ci, first, a, b),
                        "constraint {} pair ({}, {})", ci, a, b
                    );
                    prop_assert_eq!(
                        c.allows(second, b, first, a),
                        kernel.allows(ci, second, b, a)
                    );
                }
                prop_assert_eq!(
                    c.support_count(first, a, &full) as u32,
                    kernel.constraint(ci).full_support(true, a),
                    "support of first={}", a
                );
            }
            for b in 0..net.domain(second).len() {
                prop_assert_eq!(
                    c.support_count(second, b, &full_first) as u32,
                    kernel.constraint(ci).full_support(false, b)
                );
            }
        }
    }

    /// Kernel conflict sets equal the network's `HashSet`-probing
    /// `conflicts_with` on random partial assignments.
    #[test]
    fn kernel_conflict_sets_match_conflicts_with(
        variables in 2usize..10,
        domain in 1usize..5,
        density in 0.2f64..1.0,
        tightness in 0.1f64..0.8,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let kernel = net.kernel();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // A random partial assignment (~half the variables).
        let mut assignment = Assignment::new(net.variable_count());
        for v in net.variables() {
            if rng.gen_range(0..2) == 0 {
                assignment.assign(v, rng.gen_range(0..net.domain(v).len()));
            }
        }
        for var in net.variables() {
            if assignment.is_assigned(var) {
                continue;
            }
            for value in 0..net.domain(var).len() {
                let mut reference_checks = 0u64;
                let mut reference =
                    net.conflicts_with(&assignment, var, value, &mut reference_checks);
                let mut kernel_checks = 0u64;
                let mut from_kernel = Vec::new();
                kernel.collect_conflicts(
                    &assignment,
                    var,
                    value,
                    &mut kernel_checks,
                    &mut from_kernel,
                );
                reference.sort();
                from_kernel.sort();
                let conflicted = !from_kernel.is_empty();
                prop_assert_eq!(reference, from_kernel, "var {} value {}", var, value);
                prop_assert_eq!(reference_checks, kernel_checks);
                // The early-exit form agrees on the boolean answer.
                let mut any_checks = 0u64;
                let any = kernel.conflicts_any(&assignment, var, value, &mut any_checks);
                prop_assert_eq!(any, conflicted);
            }
        }
    }

    /// Bitset AC-3 prunes exactly what the reference `HashSet` revise loop
    /// prunes (same surviving values, same wipeout verdict).
    #[test]
    fn bitset_ac3_matches_reference_revise(
        variables in 2usize..10,
        domain in 1usize..6,
        density in 0.3f64..1.0,
        tightness in 0.2f64..0.9,
        seed in 0u64..1000,
    ) {
        let net = random_net(variables, domain, density, tightness, seed);
        let full: Vec<Vec<usize>> = net
            .variables()
            .map(|v| (0..net.domain(v).len()).collect())
            .collect();
        let mut reference_live = full.clone();
        let reference_wipeout = reference_ac3(&net, &mut reference_live).is_some();
        let mut kernel_live = full;
        let mut stats = SearchStats::default();
        let kernel_wipeout = matches!(
            ac3(&net, &mut kernel_live, &mut stats),
            mlo_csp::solver::Ac3Outcome::Wipeout(_)
        );
        prop_assert_eq!(reference_wipeout, kernel_wipeout);
        if !kernel_wipeout {
            // Without a wipeout, AC-3 has a unique fixpoint: the surviving
            // values must be identical (both representations report them in
            // ascending order).
            prop_assert_eq!(reference_live, kernel_live);
            prop_assert!(stats.consistency_checks > 0 || net.constraint_count() == 0);
        }
    }
}
