//! Structural-sharing and view-correctness tests for the Arc-backed
//! network representation and its mask-based restricted views.
//!
//! Three properties are pinned down here:
//!
//! 1. clones and restricted views *share* storage (`Arc::ptr_eq`) instead
//!    of copying tables — a mask-based view shares **every** table and the
//!    compiled kernel, carrying only a domain-mask overlay,
//! 2. a restricted **view** solves exactly like a from-scratch
//!    **materialized** restriction (property-tested over random networks,
//!    node counts included),
//! 3. the portfolio determinism contract survives the refactor: identical
//!    solutions at 1/2/4/8 threads.

use mlo_csp::random::{planted_weighted_network, satisfiable_network, RandomNetworkSpec};
use mlo_csp::{
    BranchAndBound, ConstraintNetwork, ParallelBranchAndBound, ParallelPortfolioSearch, Scheme,
    SearchEngine, SearchLimits, VarId, WeightedNetwork, WorkerPool,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Rebuilds the restriction of `net` from scratch — fresh variables, fresh
/// constraints, no shared storage — replicating the semantics the deep-copy
/// implementation used to have.  The view produced by
/// [`ConstraintNetwork::restricted`] must be indistinguishable from this.
fn materialized_restriction(
    net: &ConstraintNetwork<usize>,
    var: VarId,
    keep: &[usize],
) -> ConstraintNetwork<usize> {
    let mut out = ConstraintNetwork::new();
    for v in net.variables() {
        let values: Vec<usize> = if v == var {
            keep.iter().map(|&i| *net.domain(v).value(i)).collect()
        } else {
            net.domain(v).values().to_vec()
        };
        out.add_variable(net.name(v).to_string(), values);
    }
    let remap: HashMap<usize, usize> = keep
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    for c in net.constraints() {
        let pairs: HashSet<(usize, usize)> = c
            .allowed_pairs()
            .iter()
            .filter_map(|&(a, b)| {
                let a = if c.first() == var { *remap.get(&a)? } else { a };
                let b = if c.second() == var {
                    *remap.get(&b)?
                } else {
                    b
                };
                Some((a, b))
            })
            .collect();
        out.add_constraint_by_index(c.first(), c.second(), pairs)
            .expect("remapped pairs are in range");
    }
    out
}

/// Copies the weights of `weighted` onto the materialized restriction,
/// remapping the restricted variable's indices independently of the view
/// code path under test.
fn materialized_weighted_restriction(
    weighted: &WeightedNetwork<usize>,
    var: VarId,
    keep: &[usize],
) -> WeightedNetwork<usize> {
    let net = weighted.network();
    let materialized_net = materialized_restriction(net, var, keep);
    let remap: HashMap<usize, usize> = keep
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let mut out = WeightedNetwork::new(materialized_net.clone(), 0.0);
    for (ci, c) in net.constraints().iter().enumerate() {
        for &(a, b) in c.allowed_pairs() {
            let weight = weighted.weight_of(ci, (a, b));
            let na = if c.first() == var {
                match remap.get(&a) {
                    Some(&n) => n,
                    None => continue,
                }
            } else {
                a
            };
            let nb = if c.second() == var {
                match remap.get(&b) {
                    Some(&n) => n,
                    None => continue,
                }
            } else {
                b
            };
            let va = *materialized_net.domain(c.first()).value(na);
            let vb = *materialized_net.domain(c.second()).value(nb);
            out.set_weight(c.first(), c.second(), &va, &vb, weight)
                .expect("surviving pairs are in the materialized network");
        }
    }
    out
}

#[test]
fn clones_and_views_share_storage() {
    let spec = RandomNetworkSpec {
        variables: 12,
        domain_size: 4,
        density: 0.5,
        tightness: 0.3,
        seed: 7,
    };
    let (net, _) = satisfiable_network(&spec);
    // A clone is the whole storage, shared.
    let clone = net.clone();
    assert!(net.shares_storage(&clone));
    assert!(Arc::ptr_eq(net.storage(), clone.storage()));
    // A mask-based restricted view shares the whole storage too — every
    // domain table, every constraint table and the compiled kernel; only
    // the mask overlay is new.
    let var = VarId::new(0);
    let shard = net.restricted(var, &[0, 1]).unwrap();
    assert!(shard.shares_storage(&net));
    for v in net.variables() {
        assert!(Arc::ptr_eq(net.domain_handle(v), shard.domain_handle(v)));
    }
    for ci in 0..net.constraint_count() {
        assert!(
            Arc::ptr_eq(net.constraint_handle(ci), shard.constraint_handle(ci)),
            "constraint {ci}: shared"
        );
    }
    assert!(Arc::ptr_eq(net.kernel(), shard.kernel()));
    assert!(shard.mask().is_some());
    assert_eq!(shard.live_values(var), vec![0, 1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A restricted view and a from-scratch materialized restriction are
    /// the same network as far as every search scheme can tell.
    #[test]
    fn restricted_views_solve_like_materialized_restrictions(
        variables in 3usize..10,
        domain in 2usize..5,
        density in 0.2f64..0.9,
        tightness in 0.1f64..0.7,
        seed in 0u64..500,
        var_pick in 0usize..10,
        keep_mask in 1usize..31,
    ) {
        let spec = RandomNetworkSpec { variables, domain_size: domain, density, tightness, seed };
        let net = spec.generate();
        let var = VarId::new(var_pick % variables);
        // A non-empty subset of the domain, in index order.
        let keep: Vec<usize> = (0..domain).filter(|i| keep_mask >> i & 1 == 1).collect();
        prop_assume!(!keep.is_empty());
        let view = net.restricted(var, &keep).unwrap();
        let materialized = materialized_restriction(&net, var, &keep);
        for scheme in [Scheme::Base, Scheme::Enhanced, Scheme::ForwardChecking, Scheme::FullPropagation] {
            let engine = SearchEngine::with_scheme(scheme);
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            let from_view = engine.solve_with(&view, &mut rng_a, &SearchLimits::none());
            let from_scratch = engine.solve_with(&materialized, &mut rng_b, &SearchLimits::none());
            prop_assert_eq!(
                from_view.solution.as_ref().map(|s| s.values().to_vec()),
                from_scratch.solution.as_ref().map(|s| s.values().to_vec()),
                "scheme {} solution", scheme
            );
            prop_assert_eq!(from_view.stats.nodes_visited, from_scratch.stats.nodes_visited);
        }
    }

    /// The weighted form of the same property: branch and bound finds the
    /// identical optimum on the view and on the materialized restriction.
    #[test]
    fn weighted_views_optimize_like_materialized_restrictions(
        variables in 3usize..9,
        domain in 2usize..4,
        seed in 0u64..300,
        var_pick in 0usize..9,
        keep_mask in 1usize..15,
    ) {
        let spec = RandomNetworkSpec {
            variables,
            domain_size: domain,
            density: 0.6,
            tightness: 0.3,
            seed,
        };
        let (weighted, _) = planted_weighted_network(&spec, 40.0, 7);
        let var = VarId::new(var_pick % variables);
        let keep: Vec<usize> = (0..domain).filter(|i| keep_mask >> i & 1 == 1).collect();
        prop_assume!(!keep.is_empty());
        let view = weighted.restricted(var, &keep).unwrap();
        let materialized = materialized_weighted_restriction(&weighted, var, &keep);
        let from_view = BranchAndBound::new().optimize(&view);
        let from_scratch = BranchAndBound::new().optimize(&materialized);
        prop_assert_eq!(from_view.best_weight, from_scratch.best_weight);
        prop_assert_eq!(
            from_view.solution.as_ref().map(|s| s.values().to_vec()),
            from_scratch.solution.as_ref().map(|s| s.values().to_vec())
        );
    }
}

#[test]
fn satisfiability_race_is_thread_count_invariant_post_refactor() {
    let spec = RandomNetworkSpec {
        variables: 16,
        domain_size: 4,
        density: 0.4,
        tightness: 0.35,
        seed: 23,
    };
    let (net, _) = satisfiable_network(&spec);
    let limits = SearchLimits::none();
    let mut rng = StdRng::seed_from_u64(4242);
    let baseline = ParallelPortfolioSearch::diverse(3)
        .parallelism(1)
        .solve_detailed(&net, &mut rng, &limits);
    let pool = Arc::new(WorkerPool::new(4));
    for threads in [2usize, 4, 8] {
        let mut rng = StdRng::seed_from_u64(4242);
        let report = ParallelPortfolioSearch::diverse(3)
            .with_pool(Arc::clone(&pool))
            .parallelism(threads)
            .solve_detailed(&net, &mut rng, &limits);
        assert_eq!(
            report.winner, baseline.winner,
            "winner at {threads} threads"
        );
        assert_eq!(
            report.result.solution.as_ref().map(|s| s.values().to_vec()),
            baseline
                .result
                .solution
                .as_ref()
                .map(|s| s.values().to_vec()),
            "solution at {threads} threads"
        );
    }
}

#[test]
fn weighted_portfolio_is_thread_count_invariant_post_refactor() {
    // The shard helpers now run on restricted *views*; the exhaustive
    // primary's answer must still be bit-identical at every thread count.
    let spec = RandomNetworkSpec {
        variables: 12,
        domain_size: 4,
        density: 0.5,
        tightness: 0.3,
        seed: 31,
    };
    let (weighted, _) = planted_weighted_network(&spec, 50.0, 10);
    let limits = SearchLimits::none();
    let baseline = ParallelBranchAndBound::default()
        .parallelism(1)
        .optimize_detailed(&weighted, &limits);
    assert!(baseline.optimal);
    let pool = Arc::new(WorkerPool::new(4));
    for threads in [2usize, 4, 8] {
        let report = ParallelBranchAndBound::default()
            .with_pool(Arc::clone(&pool))
            .parallelism(threads)
            .optimize_detailed(&weighted, &limits);
        assert!(report.optimal);
        assert_eq!(
            report.canonical_weight, baseline.canonical_weight,
            "weight at {threads} threads"
        );
        assert_eq!(
            report.result.solution.as_ref().map(|s| s.values().to_vec()),
            baseline
                .result
                .solution
                .as_ref()
                .map(|s| s.values().to_vec()),
            "solution at {threads} threads"
        );
    }
}
