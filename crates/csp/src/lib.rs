//! Binary constraint networks and the search schemes of the DATE'05 paper.
//!
//! A constraint network `CN = <P, M, S>` (paper, Section 3) consists of a
//! set of variables `P` (the arrays of the program being optimized), a
//! domain `M_i` for every variable (the candidate memory layouts of that
//! array) and a set `S` of **binary constraints**: each `S_ij` lists the
//! allowable *(layout, layout)* pairs for arrays `Q_i` and `Q_j`, one pair
//! per candidate loop restructuring of a nest that references both arrays.
//! A solution assigns one value to every variable such that every constraint
//! that has both endpoints assigned contains the selected pair.
//!
//! This crate is a faithful, reusable implementation of that model plus the
//! search schemes the paper evaluates and the extensions it lists as future
//! work:
//!
//! * [`ConstraintNetwork`] — variables, domains, binary constraints,
//! * [`solver::SearchEngine`] — a configurable depth-first search with
//!   * the **base scheme** (random variable/value order, chronological
//!     backtracking),
//!   * the **enhanced scheme** (most-constraining variable ordering,
//!     least-constraining value ordering, conflict-directed backjumping),
//!   * optional **forward checking** and **AC-3** preprocessing,
//! * [`solver::portfolio`] — parallel portfolio search: racing diverse
//!   solver configurations and sharded branch and bound over an internally
//!   managed worker pool, with thread-count-independent results,
//! * [`weighted`] — weighted constraint networks solved with branch and
//!   bound (the paper's "give weights to constraints" future direction),
//! * [`bitset`] — the word-packed execution kernel every solver hot path
//!   runs on: per-constraint bit-matrices, per-value support counts,
//!   mask-based domain restriction (allocation-free domain shards) and the
//!   dense [`WeightKernel`] the weighted hot paths read (no hash probe on
//!   the optimizing path, incremental recompilation on mutation),
//! * [`random`] — reproducible random-network generators for tests and
//!   scaling benchmarks.
//!
//! # Example: the four-array network of Section 3
//!
//! ```
//! use mlo_csp::{ConstraintNetwork, solver::{SearchEngine, Scheme}};
//!
//! // Domains are candidate layouts, written here as (y1, y2) hyperplane
//! // coefficient pairs.
//! let mut net = ConstraintNetwork::new();
//! let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
//! let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
//! let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
//! let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
//! net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))]).unwrap();
//! net.add_constraint(q1, q3, vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))]).unwrap();
//! net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))]).unwrap();
//! net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))]).unwrap();
//! // The paper's S24 lists [(1 0), (0 1)] but (1 0) is not in M2 (a typo in
//! // the published example); we use (1 -1), which keeps the published solution.
//! net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))]).unwrap();
//! net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
//!
//! let result = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
//! let solution = result.solution.expect("the paper's example network is satisfiable");
//! // The paper's solution: Q1=(1 0), Q2=(1 1), Q3=(0 1), Q4=(1 0).
//! assert_eq!(solution.value(q1), &(1, 0));
//! assert_eq!(solution.value(q2), &(1, 1));
//! assert_eq!(solution.value(q3), &(0, 1));
//! assert_eq!(solution.value(q4), &(1, 0));
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// feature-detected SIMD dispatch in [`simd`], which must call
// `#[target_feature]` functions from an `unsafe` block (guarded by
// `is_x86_feature_detected!`).  Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod assignment;
pub mod bitset;
pub mod constraint;
pub mod domain;
pub mod fault;
pub mod network;
pub mod random;
pub mod simd;
pub mod solver;
pub mod sync;
pub mod weighted;

pub use analysis::NetworkProfile;
pub use assignment::{Assignment, Solution};
pub use bitset::{
    bit_constraint_compiles, weight_constraint_compiles, BitConstraint, BitDomains, BitKernel,
    DomainMask, KernelEdge, LiveRowMax, WeightConstraint, WeightKernel, WeightTable,
};
pub use constraint::BinaryConstraint;
pub use domain::Domain;
pub use fault::{FaultAction, FaultError, FaultPlan, FaultTrigger};
pub use network::{ConstraintNetwork, NetworkStorage, VarId};
pub use solver::portfolio::{ParallelBranchAndBound, WeightedPortfolioReport};
pub use solver::{
    CancelToken, Enumerator, IncumbentObserver, JobPanic, MinConflicts, NetworkSearch,
    ParallelPortfolioSearch, PortfolioMember, PortfolioReport, Scheme, SearchEngine, SearchLimits,
    SearchStats, SharedIncumbent, SoftAc3, SoftMark, SolveResult, StealCountReport,
    StealOptimizeReport, StealReport, StealScheduler, StealSolveReport, ValueOrdering,
    VariableOrdering, Wipeout, WorkerPool,
};
pub use sync::{lock_or_recover, read_or_recover, write_or_recover};
pub use weighted::{BnbOrder, BranchAndBound, Coop, WeightedNetwork};

use std::fmt;
use std::hash::Hash;

/// The bound required of constraint-network values.
///
/// Implemented automatically for every type satisfying the listed traits
/// (memory layouts, small tuples, strings, integers, ...).
pub trait Value: Clone + Eq + Hash + fmt::Debug {}
impl<T: Clone + Eq + Hash + fmt::Debug> Value for T {}

/// Errors produced while building or querying a constraint network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CspError {
    /// A variable id does not belong to the network.
    UnknownVariable(VarId),
    /// A constraint referenced a value that is not in the variable's domain.
    ValueNotInDomain {
        /// The variable whose domain was searched.
        variable: VarId,
        /// Debug rendering of the missing value.
        value: String,
    },
    /// A constraint was declared between a variable and itself.
    SelfConstraint(VarId),
    /// An assignment index was out of range for the variable's domain.
    ValueIndexOutOfRange {
        /// The variable.
        variable: VarId,
        /// The offending index.
        index: usize,
        /// The domain size.
        domain_size: usize,
    },
}

impl fmt::Display for CspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CspError::UnknownVariable(v) => write!(f, "unknown variable {v}"),
            CspError::ValueNotInDomain { variable, value } => {
                write!(f, "value {value} is not in the domain of {variable}")
            }
            CspError::SelfConstraint(v) => {
                write!(f, "constraint endpoints must differ (got {v} twice)")
            }
            CspError::ValueIndexOutOfRange {
                variable,
                index,
                domain_size,
            } => write!(
                f,
                "value index {index} out of range for {variable} (domain size {domain_size})"
            ),
        }
    }
}

impl std::error::Error for CspError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CspError::UnknownVariable(VarId::new(3));
        assert!(e.to_string().contains("x3"));
        let e = CspError::ValueNotInDomain {
            variable: VarId::new(0),
            value: "(1, 0)".to_string(),
        };
        assert!(e.to_string().contains("(1, 0)"));
        let e = CspError::ValueIndexOutOfRange {
            variable: VarId::new(1),
            index: 9,
            domain_size: 2,
        };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CspError>();
    }
}
