//! Poison-recovering lock helpers.
//!
//! A `Mutex`/`RwLock` is poisoned when a panic unwinds while the guard is
//! held.  Every shared structure in this workspace is either
//! immutable-after-init (dispatch tables, plans) or re-validated by its
//! consumer (queues drain defensively, best-incumbent merges re-compare),
//! so recovering the guard is always safe — whereas propagating the poison
//! with `.expect("poisoned")` escalates one contained strategy panic into
//! a whole-process abort.  All lock acquisitions in csp and service go
//! through these helpers.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_or_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `lock`, recovering the guard if a previous writer panicked.
pub fn read_or_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `lock`, recovering the guard if a previous holder panicked.
pub fn write_or_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_locks_recover_with_their_data() {
        let shared = Arc::new(Mutex::new(7));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(*lock_or_recover(&shared), 7);

        let rw = Arc::new(RwLock::new(vec![1, 2, 3]));
        let poisoner = Arc::clone(&rw);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(read_or_recover(&rw).len(), 3);
        write_or_recover(&rw).push(4);
        assert_eq!(read_or_recover(&rw).len(), 4);
    }
}
