//! Variable- and value-ordering heuristics.
//!
//! The paper's enhanced scheme replaces the base scheme's two random
//! decisions:
//!
//! * *variable selection* — "instantiate the variable that maximally
//!   constrains the rest of the search space", so dead ends are detected as
//!   early as possible, and
//! * *value selection* — "select the value that maximizes the number of
//!   options available for future assignments", so a solution is found
//!   quickly when one exists.
//!
//! Both heuristics run on the compiled [`BitKernel`]: degrees come from the
//! kernel adjacency, remaining-domain sizes are mask popcounts, and the
//! least-constraining score is a word-AND popcount per neighbour — with the
//! kernel's precomputed full-domain support counts as an O(1) fast path
//! while a neighbour's domain is unpruned.

use crate::assignment::Assignment;
use crate::bitset::{BitDomains, BitKernel, KernelEdge, WeightKernel};
use crate::network::VarId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Score assigned to a value with no live support on some open constraint
/// (a value that cannot appear in any solution sorts last); shared with
/// the portfolio's weight-guided greedy probe.
pub(crate) const UNSUPPORTED_PENALTY: f64 = -1.0e12;

/// The best dense weight `value` (of the endpoint `edge` belongs to) can
/// still realize against a **live** partner value on `edge`'s constraint —
/// `NEG_INFINITY` when no live partner supports it.
///
/// While the partner's domain is unpruned this is the kernel's precomputed
/// per-value row-maximum aggregate (one load); otherwise it is the SIMD
/// masked row-maximum over the live supports ([`WeightConstraint::
/// live_row_max`](crate::bitset::WeightConstraint::live_row_max)).  This
/// is the one copy of the "optimistic potential" both the weighted value
/// ordering and the greedy probe score with.
pub fn best_live_weight(
    kernel: &BitKernel,
    weights: &WeightKernel,
    live: &BitDomains,
    edge: &KernelEdge,
    value: usize,
) -> f64 {
    let weight = weights.constraint(edge.constraint);
    if live.count(edge.other) == kernel.domain_size(edge.other) {
        weight.row_max(edge.var_is_first, value)
    } else {
        weight
            .live_row_max(
                kernel.constraint(edge.constraint),
                edge.var_is_first,
                value,
                live.words(edge.other),
            )
            .0
    }
}

/// Orders the *live* values of `var` by descending weight potential — the
/// weighted counterpart of the least-constraining value ordering, run on
/// dense matrix reads.
///
/// A value's potential is the sum, over the variable's constraints, of the
/// best dense weight it can still realize against a live partner value.
/// While a partner's domain is unpruned this is the kernel's precomputed
/// per-value row-maximum aggregate (one load); a pruned or masked partner
/// falls back to a word-AND scan over the live supports.  Values with no
/// live support on some constraint sort last.
///
/// The sort is stable with ascending-index input, so equal-potential values
/// keep domain order — making the ordering deterministic and identical
/// between a mask-based restricted view and its materialized counterpart.
/// Branch and bound instantiates values in this order: landing near the
/// optimum early is what lets the bound prune the rest of the tree.
pub fn weighted_value_order(
    kernel: &BitKernel,
    weights: &WeightKernel,
    live: &BitDomains,
    var: VarId,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = live
        .live_values(var)
        .into_iter()
        .map(|value| {
            let mut potential = 0.0;
            for edge in kernel.edges(var) {
                let best = best_live_weight(kernel, weights, live, edge, value);
                potential += if best.is_finite() {
                    best
                } else {
                    UNSUPPORTED_PENALTY
                };
            }
            (value, potential)
        })
        .collect();
    // Stable sort: descending potential, ties keep ascending index order.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().map(|(value, _)| value).collect()
}

/// How the next variable to instantiate is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariableOrdering {
    /// Declaration order (x0, x1, ...).
    Lexicographic,
    /// Uniformly at random among the unassigned variables (base scheme).
    Random,
    /// The unassigned variable that maximally constrains the remaining
    /// search space: most constraints to *unassigned* neighbours, ties
    /// broken by smaller remaining domain, then by declaration order
    /// (enhanced scheme).
    MostConstraining,
}

/// How the candidate values of the chosen variable are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueOrdering {
    /// Domain declaration order.
    DomainOrder,
    /// A random permutation of the domain (base scheme).
    Random,
    /// Values that leave the most options open for unassigned neighbours
    /// first (enhanced scheme).
    LeastConstraining,
}

/// Selects the next variable to instantiate, honouring the configured
/// ordering.  `live` holds the current (possibly pruned) candidate masks of
/// every variable, used for domain-size tie-breaking.
pub fn select_variable(
    ordering: VariableOrdering,
    kernel: &BitKernel,
    assignment: &Assignment,
    live: &BitDomains,
    rng: &mut StdRng,
) -> Option<VarId> {
    match ordering {
        VariableOrdering::Lexicographic => (0..kernel.variable_count())
            .map(VarId::new)
            .find(|&v| !assignment.is_assigned(v)),
        VariableOrdering::Random => {
            let unassigned: Vec<VarId> = (0..kernel.variable_count())
                .map(VarId::new)
                .filter(|&v| !assignment.is_assigned(v))
                .collect();
            unassigned.choose(rng).copied()
        }
        VariableOrdering::MostConstraining => {
            let mut best: Option<(VarId, usize, usize)> = None;
            for v in (0..kernel.variable_count()).map(VarId::new) {
                if assignment.is_assigned(v) {
                    continue;
                }
                // Constraints to unassigned neighbours.
                let degree = kernel
                    .edges(v)
                    .iter()
                    .filter(|e| !assignment.is_assigned(e.other))
                    .count();
                let domain_size = live.count(v);
                let better = match best {
                    None => true,
                    Some((_, best_degree, best_domain)) => {
                        degree > best_degree || (degree == best_degree && domain_size < best_domain)
                    }
                };
                if better {
                    best = Some((v, degree, domain_size));
                }
            }
            best.map(|(v, _, _)| v)
        }
    }
}

/// Orders the candidate values of `var` according to the configured value
/// ordering.  `candidates` are indices into the variable's domain (already
/// restricted by forward checking when enabled).
pub fn order_values(
    ordering: ValueOrdering,
    kernel: &BitKernel,
    assignment: &Assignment,
    live: &BitDomains,
    var: VarId,
    candidates: &[usize],
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut values = candidates.to_vec();
    match ordering {
        ValueOrdering::DomainOrder => values,
        ValueOrdering::Random => {
            values.shuffle(rng);
            values
        }
        ValueOrdering::LeastConstraining => {
            // Score = total number of still-supported options across
            // unassigned neighbours; higher is better.  The per-neighbour
            // fullness test is hoisted out of the value loop, so the inner
            // loop walks each constraint's contiguous row block with one
            // precomputed-count load (unpruned neighbour) or one lane-wide
            // AND-popcount (pruned neighbour) per value.
            let open_edges: Vec<(&KernelEdge, bool)> = kernel
                .edges(var)
                .iter()
                .filter(|edge| !assignment.is_assigned(edge.other))
                .map(|edge| {
                    let full = live.count(edge.other) == kernel.domain_size(edge.other);
                    (edge, full)
                })
                .collect();
            let mut scored: Vec<(usize, usize)> = values
                .iter()
                .map(|&value| {
                    let mut score = 0usize;
                    for &(edge, neighbour_full) in &open_edges {
                        let constraint = kernel.constraint(edge.constraint);
                        score += if neighbour_full {
                            constraint.full_support(edge.var_is_first, value) as usize
                        } else {
                            live.intersection_count(
                                edge.other,
                                constraint.row(edge.var_is_first, value),
                            )
                        };
                    }
                    (value, score)
                })
                .collect();
            // Stable sort: descending score, ties keep domain order.
            scored.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
            scored.into_iter().map(|(v, _)| v).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ConstraintNetwork;
    use rand::SeedableRng;

    fn chain_network() -> (ConstraintNetwork<i32>, Vec<VarId>) {
        // x0 - x1 - x2 chain; x1 has the highest degree.
        let mut net = ConstraintNetwork::new();
        let a = net.add_variable("x0", vec![0, 1]);
        let b = net.add_variable("x1", vec![0, 1, 2]);
        let c = net.add_variable("x2", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 1), (1, 2)]).unwrap();
        net.add_constraint(b, c, vec![(1, 0), (2, 1)]).unwrap();
        (net, vec![a, b, c])
    }

    #[test]
    fn lexicographic_picks_first_unassigned() {
        let (net, vars) = chain_network();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let mut asg = Assignment::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            select_variable(
                VariableOrdering::Lexicographic,
                kernel,
                &asg,
                &live,
                &mut rng
            ),
            Some(vars[0])
        );
        asg.assign(vars[0], 0);
        assert_eq!(
            select_variable(
                VariableOrdering::Lexicographic,
                kernel,
                &asg,
                &live,
                &mut rng
            ),
            Some(vars[1])
        );
    }

    #[test]
    fn most_constraining_prefers_high_degree() {
        let (net, vars) = chain_network();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let asg = Assignment::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        // x1 touches two constraints, x0 and x2 only one each.
        assert_eq!(
            select_variable(
                VariableOrdering::MostConstraining,
                kernel,
                &asg,
                &live,
                &mut rng
            ),
            Some(vars[1])
        );
    }

    #[test]
    fn most_constraining_breaks_ties_by_domain_size() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1, 2]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![(0, 0)]).unwrap();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let asg = Assignment::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        // Equal degree (1 each); b has the smaller domain.
        assert_eq!(
            select_variable(
                VariableOrdering::MostConstraining,
                kernel,
                &asg,
                &live,
                &mut rng
            ),
            Some(b)
        );
    }

    #[test]
    fn random_selection_returns_unassigned_variable() {
        let (net, vars) = chain_network();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let mut asg = Assignment::new(3);
        asg.assign(vars[0], 0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let v =
                select_variable(VariableOrdering::Random, kernel, &asg, &live, &mut rng).unwrap();
            assert_ne!(v, vars[0]);
        }
        // Fully assigned -> no selection.
        asg.assign(vars[1], 0);
        asg.assign(vars[2], 0);
        assert_eq!(
            select_variable(VariableOrdering::Random, kernel, &asg, &live, &mut rng),
            None
        );
    }

    #[test]
    fn least_constraining_value_ordering() {
        // x0 in {0,1}, neighbour x1 in {0,1,2}.  Value 0 of x0 supports two
        // values of x1, value 1 supports one -> 0 must come first.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1, 2]);
        net.add_constraint(a, b, vec![(0, 0), (0, 1), (1, 2)])
            .unwrap();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let asg = Assignment::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let ordered = order_values(
            ValueOrdering::LeastConstraining,
            kernel,
            &asg,
            &live,
            a,
            &[0, 1],
            &mut rng,
        );
        assert_eq!(ordered, vec![0, 1]);
        // With value 1 supporting more options, the order flips.
        let mut net2: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a2 = net2.add_variable("a", vec![0, 1]);
        let b2 = net2.add_variable("b", vec![0, 1, 2]);
        net2.add_constraint(a2, b2, vec![(1, 0), (1, 1), (0, 2)])
            .unwrap();
        let kernel2 = net2.kernel();
        let live2 = kernel2.full_domains();
        let ordered2 = order_values(
            ValueOrdering::LeastConstraining,
            kernel2,
            &Assignment::new(2),
            &live2,
            a2,
            &[0, 1],
            &mut rng,
        );
        assert_eq!(ordered2, vec![1, 0]);
    }

    #[test]
    fn least_constraining_counts_only_live_supports() {
        // With x1's value 0 pruned, x0's value 0 loses one support and the
        // order flips — the heuristic must consult the live mask, not the
        // full-domain count.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1, 2]);
        net.add_constraint(a, b, vec![(0, 0), (0, 1), (1, 1), (1, 2)])
            .unwrap();
        let kernel = net.kernel();
        let mut live = kernel.full_domains();
        let mut rng = StdRng::seed_from_u64(1);
        live.remove(b, 0);
        let ordered = order_values(
            ValueOrdering::LeastConstraining,
            kernel,
            &Assignment::new(2),
            &live,
            a,
            &[0, 1],
            &mut rng,
        );
        assert_eq!(ordered, vec![1, 0]);
    }

    #[test]
    fn domain_order_is_preserved_and_random_is_permutation() {
        let (net, vars) = chain_network();
        let kernel = net.kernel();
        let live = kernel.full_domains();
        let asg = Assignment::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            order_values(
                ValueOrdering::DomainOrder,
                kernel,
                &asg,
                &live,
                vars[1],
                &[0, 1, 2],
                &mut rng
            ),
            vec![0, 1, 2]
        );
        let mut shuffled = order_values(
            ValueOrdering::Random,
            kernel,
            &asg,
            &live,
            vars[1],
            &[0, 1, 2],
            &mut rng,
        );
        shuffled.sort();
        assert_eq!(shuffled, vec![0, 1, 2]);
    }
}
