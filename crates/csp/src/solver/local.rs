//! Min-conflicts local search.
//!
//! The paper's schemes are systematic: they either find a solution or prove
//! that none exists.  For very large layout networks (hundreds of arrays) a
//! *local* search is a useful complement: start from a complete random
//! assignment and repeatedly reassign a conflicted variable to the value
//! that minimizes its number of violated constraints, restarting from a new
//! random assignment when progress stalls.  Min-conflicts cannot prove
//! unsatisfiability, but on satisfiable layout networks it often lands on a
//! solution after visiting far fewer states than systematic search.

use crate::assignment::{Assignment, Solution};
use crate::bitset::BitKernel;
use crate::network::{ConstraintNetwork, VarId};
use crate::simd;
use crate::solver::portfolio::CancelToken;
use crate::solver::{NetworkSearch, SearchLimits, SearchStats, SolveResult};
use crate::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// How often (in repair steps) the wall-clock deadline is polled.
const DEADLINE_POLL_MASK: u64 = 0x3F;

/// Configuration of the min-conflicts search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinConflicts {
    /// Maximum repair steps per restart.
    pub max_steps: u64,
    /// Maximum number of restarts (each from a fresh random assignment).
    pub max_restarts: u64,
    /// Probability (in percent, 0–100) of taking a random walk step instead
    /// of the greedy min-conflicts move; breaks plateaus.
    pub noise_percent: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MinConflicts {
    fn default() -> Self {
        MinConflicts {
            max_steps: 10_000,
            max_restarts: 20,
            noise_percent: 8,
            seed: 0x5EED,
        }
    }
}

impl MinConflicts {
    /// Creates a configuration with the given seed and default limits.
    pub fn with_seed(seed: u64) -> Self {
        MinConflicts {
            seed,
            ..MinConflicts::default()
        }
    }

    /// Sets the per-restart step limit.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Sets the restart limit.
    pub fn max_restarts(mut self, restarts: u64) -> Self {
        self.max_restarts = restarts;
        self
    }

    /// Sets the noise probability in percent (clamped to 100).
    pub fn noise_percent(mut self, percent: u8) -> Self {
        self.noise_percent = percent.min(100);
        self
    }

    /// Runs min-conflicts on a network.
    ///
    /// Returns a [`SolveResult`]; `solution` is `None` either when the
    /// network is unsatisfiable or when the step/restart budget ran out —
    /// local search cannot tell the two apart, which the caller must keep in
    /// mind (`hit_node_limit` is set when the budget was exhausted).
    pub fn solve<V: Value>(&self, network: &ConstraintNetwork<V>) -> SolveResult<V> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.solve_with(network, &mut rng, &SearchLimits::none())
    }

    /// Runs min-conflicts with a caller-owned RNG (identical RNG states
    /// replay identical repair walks) and per-run limits.  A node limit is
    /// a **total** cap on repair steps across all restarts — the same
    /// contract as the systematic engine's node budget; a deadline aborts
    /// the walk wherever it is.
    pub fn solve_with<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        self.solve_inner(network, rng, limits, None)
    }

    /// Like [`MinConflicts::solve_with`], but additionally polls a
    /// [`CancelToken`] so a portfolio can abort the walk when another member
    /// wins; an aborted run reports [`SolveResult::cancelled`].
    pub fn solve_cancellable<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
        cancel: &CancelToken,
    ) -> SolveResult<V> {
        self.solve_inner(network, rng, limits, Some(cancel))
    }

    fn solve_inner<V: Value>(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
        cancel: Option<&CancelToken>,
    ) -> SolveResult<V> {
        let start = Instant::now();
        let mut stats = SearchStats::default();
        let n = network.variable_count();
        // With a node budget, a restart also happens whenever the per-restart
        // step cap is hit, but the budget bounds the total work.
        let max_steps = limits
            .node_limit
            .map_or(self.max_steps, |limit| limit.min(self.max_steps));
        let mut hit_deadline = false;
        let mut was_cancelled = false;

        // The compiled kernel (bit probes for conflict counting) and the
        // live values of every variable — a restricted view's repair walk
        // never leaves the mask.
        let kernel = Arc::clone(network.kernel());
        let live: Vec<Vec<usize>> = network
            .variables()
            .map(|v| network.live_values(v))
            .collect();

        // Degenerate cases: empty networks are trivially solved; an empty
        // (live) domain can never be assigned.
        if live.iter().any(Vec::is_empty) {
            return SolveResult {
                solution: None,
                stats,
                elapsed: start.elapsed(),
                hit_node_limit: false,
                hit_deadline: false,
                cancelled: false,
            };
        }

        'restarts: for _restart in 0..self.max_restarts.max(1) {
            let mut assignment = random_complete_assignment(&live, rng);
            stats.max_depth = n;
            for _step in 0..max_steps {
                if let Some(limit) = limits.node_limit {
                    if stats.nodes_visited >= limit {
                        break 'restarts;
                    }
                }
                if stats.nodes_visited & DEADLINE_POLL_MASK == 0 {
                    if let Some(deadline) = limits.deadline {
                        if Instant::now() >= deadline {
                            hit_deadline = true;
                            break 'restarts;
                        }
                    }
                    if let Some(cancel) = cancel {
                        if cancel.is_cancelled() {
                            was_cancelled = true;
                            break 'restarts;
                        }
                    }
                }
                let conflicted = conflicted_variables(&kernel, &assignment, &mut stats);
                if conflicted.is_empty() {
                    let solution = Solution::from_assignment(network, &assignment);
                    return SolveResult {
                        solution: Some(solution),
                        stats,
                        elapsed: start.elapsed(),
                        hit_node_limit: false,
                        hit_deadline: false,
                        cancelled: false,
                    };
                }
                let var = conflicted[rng.gen_range(0..conflicted.len())];
                let choices = &live[var.index()];
                let value = if rng.gen_range(0..100u8) < self.noise_percent {
                    choices[rng.gen_range(0..choices.len())]
                } else {
                    min_conflict_value(&kernel, &assignment, var, choices, rng, &mut stats)
                };
                assignment.assign(var, value);
                stats.nodes_visited += 1;
            }
            stats.backtracks += 1; // one restart counted as a dead end
        }

        SolveResult {
            solution: None,
            stats,
            elapsed: start.elapsed(),
            hit_node_limit: !hit_deadline && !was_cancelled,
            hit_deadline,
            cancelled: was_cancelled,
        }
    }
}

impl<V: Value> NetworkSearch<V> for MinConflicts {
    fn search(
        &self,
        network: &ConstraintNetwork<V>,
        rng: &mut StdRng,
        limits: &SearchLimits,
    ) -> SolveResult<V> {
        self.solve_with(network, rng, limits)
    }
}

/// A uniformly random complete assignment over the live values.
fn random_complete_assignment(live: &[Vec<usize>], rng: &mut StdRng) -> Assignment {
    let mut assignment = Assignment::new(live.len());
    for (v, choices) in live.iter().enumerate() {
        assignment.assign(VarId::new(v), choices[rng.gen_range(0..choices.len())]);
    }
    assignment
}

/// Variables participating in at least one violated constraint.
fn conflicted_variables(
    kernel: &BitKernel,
    assignment: &Assignment,
    stats: &mut SearchStats,
) -> Vec<VarId> {
    let mut conflicted = Vec::new();
    for v in (0..kernel.variable_count()).map(VarId::new) {
        if variable_conflicts(
            kernel,
            assignment,
            v,
            assignment.get(v).expect("complete"),
            stats,
        ) > 0
        {
            conflicted.push(v);
        }
    }
    conflicted
}

/// Number of constraints violated by `var = value` against the rest of a
/// complete assignment — one bit probe per adjacent constraint.
fn variable_conflicts(
    kernel: &BitKernel,
    assignment: &Assignment,
    var: VarId,
    value: usize,
    stats: &mut SearchStats,
) -> usize {
    let mut count = 0usize;
    for edge in kernel.edges(var) {
        let other_value = assignment.get(edge.other).expect("complete assignment");
        stats.consistency_checks += 1;
        let constraint = kernel.constraint(edge.constraint);
        let allowed = if edge.var_is_first {
            constraint.allows(value, other_value)
        } else {
            constraint.allows(other_value, value)
        };
        if !allowed {
            count += 1;
        }
    }
    count
}

/// The live value of `var` with the fewest conflicts (ties broken uniformly
/// at random; the RNG sees exactly one draw either way).
///
/// Fast path: the allowed-value rows of every adjacent constraint — each a
/// contiguous lane-aligned block row — are ANDed into one conflict-free
/// mask.  A surviving bit is a zero-conflict choice, and zero is always the
/// minimum, so the per-value probe loop only runs on the steps where every
/// choice violates something.  The check accounting (one check per choice
/// per adjacent constraint) and the tie-break candidate order are identical
/// to the probing loop's, so repair walks replay bit-for-bit.
fn min_conflict_value(
    kernel: &BitKernel,
    assignment: &Assignment,
    var: VarId,
    choices: &[usize],
    rng: &mut StdRng,
    stats: &mut SearchStats,
) -> usize {
    let edges = kernel.edges(var);
    stats.consistency_checks += (choices.len() * edges.len()) as u64;
    let mut allowed: Option<Vec<u64>> = None;
    for edge in edges {
        let other_value = assignment.get(edge.other).expect("complete assignment");
        // The row oriented from the *neighbour's* endpoint: its set bits
        // are the values of `var` compatible with the neighbour's value.
        let row = kernel
            .constraint(edge.constraint)
            .row(!edge.var_is_first, other_value);
        match &mut allowed {
            None => allowed = Some(row.to_vec()),
            Some(mask) => {
                simd::and_assign_count(mask, row);
            }
        }
    }
    let Some(mask) = allowed else {
        // No adjacent constraint: every choice is conflict-free.
        return choices[rng.gen_range(0..choices.len())];
    };
    let zero_conflict: Vec<usize> = choices
        .iter()
        .copied()
        .filter(|&v| mask[v / 64] >> (v % 64) & 1 == 1)
        .collect();
    if !zero_conflict.is_empty() {
        return zero_conflict[rng.gen_range(0..zero_conflict.len())];
    }
    // Every choice violates something: probe per value (the checks were
    // already accounted above, so probe without re-counting).
    let mut best_values = Vec::new();
    let mut best_conflicts = usize::MAX;
    for &value in choices {
        let mut conflicts = 0usize;
        for edge in edges {
            let other_value = assignment.get(edge.other).expect("complete assignment");
            let constraint = kernel.constraint(edge.constraint);
            let allowed = if edge.var_is_first {
                constraint.allows(value, other_value)
            } else {
                constraint.allows(other_value, value)
            };
            if !allowed {
                conflicts += 1;
            }
        }
        match conflicts.cmp(&best_conflicts) {
            std::cmp::Ordering::Less => {
                best_conflicts = conflicts;
                best_values.clear();
                best_values.push(value);
            }
            std::cmp::Ordering::Equal => best_values.push(value),
            std::cmp::Ordering::Greater => {}
        }
    }
    best_values[rng.gen_range(0..best_values.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Scheme, SearchEngine};

    fn paper_network() -> ConstraintNetwork<(i64, i64)> {
        let mut net = ConstraintNetwork::new();
        let q1 = net.add_variable("Q1", vec![(1, 0), (0, 1), (1, 1)]);
        let q2 = net.add_variable("Q2", vec![(1, -1), (1, 1)]);
        let q3 = net.add_variable("Q3", vec![(0, 1), (1, 1), (1, 2)]);
        let q4 = net.add_variable("Q4", vec![(1, 0), (0, 1), (1, 1)]);
        net.add_constraint(q1, q2, vec![((1, 0), (1, 1)), ((0, 1), (1, -1))])
            .unwrap();
        net.add_constraint(
            q1,
            q3,
            vec![((1, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (1, 2))],
        )
        .unwrap();
        net.add_constraint(q1, q4, vec![((1, 0), (1, 0)), ((0, 1), (0, 1))])
            .unwrap();
        net.add_constraint(q2, q3, vec![((1, 1), (0, 1)), ((1, -1), (1, 1))])
            .unwrap();
        net.add_constraint(q2, q4, vec![((1, -1), (0, 1)), ((1, 1), (1, 0))])
            .unwrap();
        net.add_constraint(q3, q4, vec![((0, 1), (1, 0))]).unwrap();
        net
    }

    #[test]
    fn solves_the_paper_network() {
        let net = paper_network();
        let result = MinConflicts::with_seed(11).solve(&net);
        let solution = result.solution.expect("the paper's network is satisfiable");
        // Any returned solution must genuinely satisfy the network.
        let mut asg = Assignment::new(net.variable_count());
        for v in net.variables() {
            asg.assign(v, solution.value_index(v));
        }
        assert_eq!(net.is_solution(&asg), Ok(true));
        assert!(!result.hit_node_limit);
        assert!(result.stats.consistency_checks > 0);
    }

    #[test]
    fn agrees_with_systematic_search_on_satisfiable_instances() {
        for seed in 0..6u64 {
            let net = crate::random::RandomNetworkSpec {
                variables: 10,
                domain_size: 4,
                density: 0.4,
                tightness: 0.3,
                seed,
            }
            .generate();
            let systematic = SearchEngine::with_scheme(Scheme::Enhanced).solve(&net);
            if systematic.is_satisfiable() {
                let local = MinConflicts::with_seed(seed).solve(&net);
                assert!(
                    local.is_satisfiable(),
                    "min-conflicts missed a solution on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn gives_up_within_budget_on_unsatisfiable_networks() {
        // Two variables, one constraint that allows nothing.
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let a = net.add_variable("a", vec![0, 1]);
        let b = net.add_variable("b", vec![0, 1]);
        net.add_constraint(a, b, vec![]).unwrap();
        let config = MinConflicts::with_seed(3).max_steps(50).max_restarts(3);
        let result = config.solve(&net);
        assert!(result.solution.is_none());
        assert!(result.hit_node_limit);
        // Every restart after the first is counted as a dead end.
        assert_eq!(result.stats.backtracks, 3);
    }

    #[test]
    fn empty_domains_are_rejected_immediately() {
        let mut net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        net.add_variable("a", vec![]);
        let result = MinConflicts::default().solve(&net);
        assert!(result.solution.is_none());
        assert!(!result.hit_node_limit);
        assert_eq!(result.stats.nodes_visited, 0);
    }

    #[test]
    fn empty_network_is_trivially_satisfiable() {
        let net: ConstraintNetwork<i32> = ConstraintNetwork::new();
        let result = MinConflicts::default().solve(&net);
        let solution = result.solution.expect("empty networks are satisfiable");
        assert!(solution.is_empty());
    }

    #[test]
    fn builder_setters_clamp_and_store() {
        let c = MinConflicts::default()
            .max_steps(5)
            .max_restarts(2)
            .noise_percent(200);
        assert_eq!(c.max_steps, 5);
        assert_eq!(c.max_restarts, 2);
        assert_eq!(c.noise_percent, 100);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let net = paper_network();
        let a = MinConflicts::with_seed(77).solve(&net);
        let b = MinConflicts::with_seed(77).solve(&net);
        assert_eq!(
            a.solution.as_ref().map(|s| s.values().to_vec()),
            b.solution.as_ref().map(|s| s.values().to_vec())
        );
        assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited);
    }
}
